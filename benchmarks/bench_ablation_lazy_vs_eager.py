"""Ablation: lazy vs eager collection (Section 4.2's design claim).

The paper: "Eager garbage collection of unnecessary monitors introduces a
very large amount of runtime overhead, which almost always overwhelms any
benefits ... Therefore, we use a lazy garbage collection scheme."

Here both configurations use the *same* coenable analysis; only the
propagation differs — lazy discovers deaths while structures are touched,
eager performs a full scan of every structure whenever parameter deaths
are pending.  The benchmark shows the runtime gap; the shape test asserts
eager is strictly slower on the churny workload while flagging no more
monitors than lazy does by the end.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_cell
from repro.runtime.engine import SYSTEMS

from conftest import make_monitored_runner

# A private "system" table for the ablation: same GC, different propagation.
SYSTEMS.setdefault("rv-eager", ("coenable", "eager"))


@pytest.mark.parametrize("propagation", ("lazy", "eager"))
def test_ablation_propagation_runtime(benchmark, propagation):
    system = "rv" if propagation == "lazy" else "rv-eager"
    run, engine, teardown = make_monitored_runner("bloat", "unsafeiter", system)
    try:
        benchmark(run)
        benchmark.extra_info["flagged"] = sum(
            stats.monitors_flagged for stats in engine.stats().values()
        )
    finally:
        teardown()


def test_ablation_shape_eager_is_slower():
    scale, repeats = 0.25, 3
    lazy = run_cell("bloat", "unsafeiter", "rv", scale=scale, repeats=repeats)
    eager = run_cell(
        "bloat", "unsafeiter", "rv-eager", scale=scale, repeats=repeats,
        original_seconds=lazy.original_seconds,
    )
    assert eager.monitored_seconds > lazy.monitored_seconds


def test_ablation_shape_same_final_collection_outcome():
    """Eagerness buys promptness, not reach: by the end-of-run flush both
    configurations have flagged the same unnecessary monitors."""
    scale = 0.2
    lazy = run_cell("bloat", "unsafeiter", "rv", scale=scale).totals()
    eager = run_cell("bloat", "unsafeiter", "rv-eager", scale=scale).totals()
    assert lazy["M"] == eager["M"]
    assert lazy["FM"] == eager["FM"]


def test_ablation_shape_eager_has_lower_peak():
    """What eagerness does buy: the monitor population peaks lower."""
    scale = 0.25
    lazy = run_cell("bloat", "unsafeiter", "rv", scale=scale)
    eager = run_cell("bloat", "unsafeiter", "rv-eager", scale=scale)
    assert eager.peak_live_monitors <= lazy.peak_live_monitors
