"""Ablation: monitor-lifetime sensitivity (the h2 observation, Section 5.2).

"h2 does not exhibit large overhead because monitor instances in h2 have
shorter lifetimes."  We sweep the live-window parameter of a fixed-size
workload: with a window of 1 (h2-like) monitors die with their collection
almost immediately; with a large window (bloat-like) dead-iterator
monitors pile up on live collections.  Expected: MOP's peak population
grows with the window while RV's stays flat — and MOP's *runtime* grows
with it too, since dispatch wades through the retained monitors.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import WORKLOADS, WorkloadProfile
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine, SYSTEMS

import gc

from repro.bench.workloads import run_workload

WINDOWS = (1, 8, 64, 256)


def _profile(window: int) -> WorkloadProfile:
    """A fixed-size workload; only the collection lifetime (window) varies.

    Parameters are deliberately independent of the shipped bloat profile so
    recalibrating the Figure 9 grid cannot silently change this sweep.
    """
    return WorkloadProfile(
        name=f"sweep-w{window}",
        collections=320,
        live_window=min(window, 320),
        collection_size=6,
        iterators_per_collection=6,
        steps_per_iterator=3,
        update_probability=0.3,
    )


def _run(window: int, system: str):
    profile = _profile(window)
    prop = ALL_PROPERTIES["unsafeiter"]
    spec = prop.make().silence()
    gc_kind, propagation = SYSTEMS[system]
    engine = MonitoringEngine(spec, gc=gc_kind, propagation=propagation)
    weaver = prop.instrument(engine)
    try:
        gc.collect()
        run_workload(profile)
    finally:
        weaver.unweave()
    gc.collect()
    engine.flush_gc()
    return engine.stats_for("UnsafeIter")


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("system", ("mop", "rv"))
def test_ablation_lifetime_runtime(benchmark, window, system):
    profile = _profile(window)
    prop = ALL_PROPERTIES["unsafeiter"]
    spec = prop.make().silence()
    gc_kind, propagation = SYSTEMS[system]
    engine = MonitoringEngine(spec, gc=gc_kind, propagation=propagation)
    weaver = prop.instrument(engine)
    try:
        benchmark(lambda: (gc.collect(), run_workload(profile)))
        benchmark.extra_info["peak_live_monitors"] = engine.stats_for(
            "UnsafeIter"
        ).peak_live_monitors
    finally:
        weaver.unweave()


def test_ablation_shape_mop_peak_grows_with_window():
    peaks = [_run(window, "mop").peak_live_monitors for window in WINDOWS]
    assert peaks == sorted(peaks)
    assert peaks[-1] > 4 * peaks[0]


def test_ablation_shape_rv_peak_stays_bounded():
    """RV's peak grows with the window too (flagging is *lazy* — corpses
    linger until the next touch) but stays a small fraction of the monitors
    created, unlike MOP whose peak tracks M."""
    for window in WINDOWS[2:]:
        stats = _run(window, "rv")
        assert stats.peak_live_monitors < 0.35 * stats.monitors_created


def test_ablation_shape_rv_beats_mop_only_when_lifetimes_diverge():
    """At window 1 (h2-like) both populations are trivially small; at
    window 256 (bloat-like) RV's peak is a fraction of MOP's.  This is the
    paper's h2-vs-bloat observation as a controlled sweep."""
    short_mop = _run(1, "mop").peak_live_monitors
    short_rv = _run(1, "rv").peak_live_monitors
    long_mop = _run(256, "mop").peak_live_monitors
    long_rv = _run(256, "rv").peak_live_monitors
    # Window 1: at most one collection's worth of monitors ever coexists.
    assert short_mop <= 6 + 4 and short_rv <= 6 + 4
    assert long_rv < long_mop / 2
