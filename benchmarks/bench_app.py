"""App macro benchmark: monitored vs unmonitored throughput and latency.

The repo's DaCapo analog: the reference asyncio server
(:mod:`repro.app.server`) under the seeded load driver, measured at
rising connection counts — first **unmonitored**, then **monitored** (the
full app property set woven through ``LiveSession``/``TraceWeaver``,
single compiled engine).  Each scale reports req/s and p50/p99 latency
for both runs plus the overhead ratio; the resulting curve is the
standing macro benchmark every future perf PR must not regress.

The throughput mix is clean keep-alive traffic (no stalls or disconnects
— those measure the driver's sleeps, not the server), so req/s compares
the same byte streams.  A separate small *mixed* run (errors, pushes,
leaks) is recorded live and replayed offline, asserting the verdict
multisets agree — the equivalence contract, checked inline on every
benchmark run like ``bench_live.py`` does.

Run directly (writes ``BENCH_app.json``)::

    PYTHONPATH=src python benchmarks/bench_app.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_app.py --seed 7
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import os
import platform
import sys
from collections import Counter

from repro.app import AppServer, DriverConfig, app_specs, run_driver, weave_app
from repro.instrument.live import LiveSession
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay

#: Concurrent-connection scales of the curve (multiplied by --scale).
CONNECTION_SCALES = (4, 16, 48)
REQUESTS_PER_CONNECTION = 25


def make_engine(verdicts: Counter) -> MonitoringEngine:
    return MonitoringEngine(
        [prop.make().silence() for prop in app_specs()],
        gc="statebased",
        on_verdict=lambda prop, category, _m: verdicts.update(
            [(prop.spec_name, category)]
        ),
    )


def drive(config: DriverConfig, read_timeout: float = 5.0):
    async def run():
        async with AppServer(read_timeout=read_timeout) as server:
            return await run_driver(server.host, server.port, config)

    return asyncio.run(run())


def clean_config(connections: int, seed: int) -> DriverConfig:
    """Pure keep-alive throughput traffic: every slot a normal request."""
    return DriverConfig(
        connections=connections,
        requests_per_connection=REQUESTS_PER_CONNECTION,
        seed=seed,
    )


def bench_scale_point(connections: int, seed: int) -> dict:
    config = clean_config(connections, seed)
    baseline = drive(config)

    verdicts: Counter = Counter()
    session = LiveSession(make_engine(verdicts))
    with session:
        weave_app(session)
        monitored = drive(config)
    assert not verdicts, f"clean traffic produced verdicts: {verdicts}"
    assert monitored.responses == baseline.responses

    return {
        "connections": connections,
        "requests": baseline.responses,
        "unmonitored": {
            "rps": round(baseline.rps, 1),
            "p50_ms": round(baseline.p50_ms, 3),
            "p99_ms": round(baseline.p99_ms, 3),
        },
        "monitored": {
            "rps": round(monitored.rps, 1),
            "p50_ms": round(monitored.p50_ms, 3),
            "p99_ms": round(monitored.p99_ms, 3),
        },
        "overhead_x": round(baseline.rps / monitored.rps, 2)
        if monitored.rps else None,
    }


def assert_live_replay_equivalence(seed: int) -> dict:
    """A small mixed run, recorded live and re-monitored offline."""
    config = DriverConfig(
        connections=4,
        requests_per_connection=8,
        seed=seed,
        disconnect_fraction=0.08,
        error_fraction=0.12,
        push_fraction=0.10,
        leak_fraction=0.10,
    )
    live: Counter = Counter()
    trace = io.StringIO()
    session = LiveSession(make_engine(live), record=trace)
    with session:
        weave_app(session)
        drive(config)
    offline: Counter = Counter()
    replay(trace.getvalue().splitlines(), make_engine(offline))
    assert offline == live, (offline, live)
    assert live, "the mixed run must produce verdicts"
    return {
        "events": len(trace.getvalue().splitlines()),
        "verdicts": {f"{name}:{cat}": n for (name, cat), n in sorted(live.items())},
        "replay_verdicts_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 1.0)",
    )
    parser.add_argument("--seed", type=int, default=20110604,
                        help="driver mix seed (the repo-wide convention)")
    parser.add_argument("--out", default="BENCH_app.json")
    args = parser.parse_args()

    scales = [max(2, round(base * args.scale)) for base in CONNECTION_SCALES]
    # The curve needs >= 3 *distinct* rising scales even when --scale
    # squashes the small end together.
    for index in range(1, len(scales)):
        scales[index] = max(scales[index], scales[index - 1] + 2)

    report = {
        "benchmark": "app scenario: monitored vs unmonitored server",
        "scale": args.scale,
        "seed": args.seed,
        "python": platform.python_version(),
        "has_sys_monitoring": hasattr(sys, "monitoring"),
        "properties": list(
            prop.key for prop in app_specs()
        ),
        "requests_per_connection": REQUESTS_PER_CONNECTION,
        "curve": [bench_scale_point(conns, args.seed) for conns in scales],
        "live_vs_replay": assert_live_replay_equivalence(args.seed),
    }

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
