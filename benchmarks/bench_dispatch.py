"""Compiled-dispatch throughput: fast path vs reference, lazy and eager.

Measures single-engine ingestion throughput on the unsafe-iterator workload
(UNSAFEITER over the ``bloat`` DaCapo analog — the paper's pathological
leak case) across the dispatch matrix introduced by the compiled fast
path:

* ``reference lazy``      — the retained dict-based interpretation;
* ``compiled lazy``       — the DispatchPlan/slot-tuple/FSM-table path
  (the **headline**: must beat the recorded seed baseline, target >= 3x);
* ``compiled lazy batch`` — same, ingested through ``emit_batch``
  (deaths still land at per-event boundaries, see
  ``repro.runtime.tracelog.replay_entries``);
* ``codegen lazy``        — exec-specialized per-(property, event) kernels
  (``repro.spec.codegen``): straight-line generated source, no plan
  interpretation (the **headline of the codegen optimization**);
* ``codegen lazy batch``  — same, ingested through ``emit_batch`` so runs
  of the same event id hit the vectorized FSM batch kernels;
* ``reference eager_full``— the historical full-scan-per-boundary eager
  regime (the ablation the paper warns about);
* ``compiled eager``      — the targeted eager propagation (purge only the
  trees whose domain holds a dead parameter's position, evict flagged
  monitors directly);
* ``codegen eager``       — generated kernels under targeted eager;
* ``compiled eager x4``   — a 4-shard inline ``MonitorService`` on the
  targeted eager regime (the README table's sharded row).

Every configuration ingests the *same* recorded symbolic trace with
``retire_after_last_use=True``, so parameter deaths — the GC driver —
happen during ingestion exactly as in live traffic; the benchmark asserts
the full per-category verdict multiset and created-monitor count are
identical across all configurations (reference, compiled AND codegen) and
records that as ``verdicts_identical_across_configs``.  Each row also
carries the best-of-N repeat spread (min/max/stdev seconds) so a reader
can tell a real delta from host jitter.

Run directly (writes ``BENCH_dispatch.json`` for the perf trajectory)::

    PYTHONPATH=src python benchmarks/bench_dispatch.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_dispatch.py \
        --out BENCH_dispatch.json --check-baseline

``--check-baseline`` exits non-zero when (a) the compiled lazy
single-engine throughput falls below the lazy 1-shard number recorded in
``BENCH_service.json`` (the seed baseline), or (b) the codegen lazy
throughput falls below ``1.8 x`` the recorded pre-codegen compiled-lazy
number (:data:`RECORDED_COMPILED_LAZY_EVENTS_PER_SECOND`) — both scaled by
``REPRO_BENCH_GATE_FACTOR`` to absorb shared-runner slowness.  When the
codegen gate fails, the generated kernel module source is dumped to
``codegen_kernels_dump.py`` next to ``--out`` so CI can upload it as an
artifact for offline inspection.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from repro.bench.harness import best_of_n, timed_call
from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.service import MonitorService, ingest_symbolic

BATCH_SIZE = 256

#: The compiled-lazy throughput recorded in ``BENCH_dispatch.json`` at scale
#: 0.5 *before* the codegen layer landed — the fixed yardstick the codegen
#: perf gate measures against (the ratio on the recording host; CI scales it
#: by ``REPRO_BENCH_GATE_FACTOR`` because absolute ev/s do not transfer
#: across hosts).
RECORDED_COMPILED_LAZY_EVENTS_PER_SECOND = 77546.4

#: The codegen gate's required multiple of the recorded compiled-lazy
#: number (before the gate factor).
CODEGEN_GATE_MULTIPLE = 1.8


def build_trace(scale: float, seed: "int | None" = None) -> list[tuple[str, dict[str, str]]]:
    profile = WORKLOADS["bloat"].scaled(scale).reseeded(seed)
    return record_workload_events(profile, [UNSAFEITER])


def run_engine(
    entries, dispatch: str, propagation: str, batch_size: int | None = None,
    repeats: int = 3, telemetry=None,
) -> dict:
    """Best-of-``repeats`` timing (each repeat is a fresh engine + replay);
    verdict/monitor counts are asserted identical across repeats."""

    def repeat():
        verdicts: Counter = Counter()
        engine = MonitoringEngine(
            UNSAFEITER.make().silence(),
            gc="coenable",
            propagation=propagation,
            dispatch=dispatch,
            on_verdict=lambda prop, category, monitor: verdicts.update([category]),
        )
        # Only the replay is timed — engine construction stays outside the
        # window, preserving comparability with the recorded baselines.
        _, elapsed = timed_call(
            replay_entries,
            entries,
            engine,
            retire_after_last_use=True,
            batch_size=batch_size,
        )
        stats = engine.stats_for("UnsafeIter")
        return elapsed, (tuple(sorted(verdicts.items())), stats.monitors_created)

    cell = f"dispatch/{dispatch}-{propagation}" + ("-batch" if batch_size else "")
    run = best_of_n(repeat, repeats, cell=cell, telemetry=telemetry)
    multiset, monitors_created = run.identity
    return {
        "events": len(entries),
        "seconds": run.seconds,
        "events_per_second": len(entries) / run.seconds if run.seconds else 0.0,
        "verdicts": sum(count for _category, count in multiset),
        "verdict_multiset": dict(multiset),
        "monitors_created": monitors_created,
        "spread_seconds": run.spread(),
    }


def run_service(
    entries, propagation: str, shards: int, repeats: int = 2, telemetry=None
) -> dict:
    def repeat():
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=shards,
            gc="coenable",
            propagation=propagation,
            mode="inline",
        )
        _, elapsed = timed_call(
            ingest_symbolic, service, entries, retire_after_last_use=True
        )
        verdicts: Counter = Counter(
            record.category for record in service.verdicts()
        )
        stats = service.stats_for("UnsafeIter")
        service.close()
        return elapsed, (tuple(sorted(verdicts.items())), stats.monitors_created)

    run = best_of_n(
        repeat, repeats, cell=f"dispatch/service-x{shards}", telemetry=telemetry
    )
    multiset, monitors_created = run.identity
    return {
        "events": len(entries),
        "seconds": run.seconds,
        "events_per_second": len(entries) / run.seconds if run.seconds else 0.0,
        "verdicts": sum(count for _category, count in multiset),
        "verdict_multiset": dict(multiset),
        "monitors_created": monitors_created,
        "spread_seconds": run.spread(),
    }


def dump_kernel_source(out_path: str) -> str:
    """Write the benchmark property's generated kernel module next to the
    report (the artifact CI uploads when the codegen gate fails, so the
    regressed generated code can be inspected without reproducing the run)."""
    from repro.spec.codegen import kernel_source_for

    engine = MonitoringEngine(
        UNSAFEITER.make().silence(), gc="coenable", dispatch="codegen"
    )
    prop = next(p for p in engine.properties if p is not None)
    dump = os.path.join(
        os.path.dirname(os.path.abspath(out_path)), "codegen_kernels_dump.py"
    )
    with open(dump, "w", encoding="utf-8") as handle:
        handle.write(kernel_source_for(prop))
    return dump


def read_recorded_baseline() -> dict:
    """The seed numbers this optimization is measured against.

    Keys follow the recorded rows' propagation labels (``lazy``, and
    ``eager`` or ``eager_full`` depending on when BENCH_service.json was
    generated); the perf gate only uses the lazy number.
    """
    baseline = {"source": "BENCH_service.json", "lazy_events_per_second": None}
    try:
        with open(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json"),
            encoding="utf-8",
        ) as handle:
            recorded = json.load(handle)
        for row in recorded.get("results", ()):
            if row.get("shards") == 1:
                baseline[f"{row['propagation']}_events_per_second"] = row[
                    "events_per_second"
                ]
    except (OSError, ValueError):
        pass
    return baseline


def run_matrix(scale: float, seed: "int | None" = None) -> dict:
    entries = build_trace(scale, seed)
    print(f"trace: {len(entries)} events (scale {scale})")
    configs = [
        ("reference lazy", lambda: run_engine(entries, "reference", "lazy")),
        ("compiled lazy", lambda: run_engine(entries, "compiled", "lazy")),
        (
            "compiled lazy batch",
            lambda: run_engine(entries, "compiled", "lazy", batch_size=BATCH_SIZE),
        ),
        ("codegen lazy", lambda: run_engine(entries, "codegen", "lazy")),
        (
            "codegen lazy batch",
            lambda: run_engine(entries, "codegen", "lazy", batch_size=BATCH_SIZE),
        ),
        ("reference eager_full", lambda: run_engine(entries, "reference", "eager_full")),
        ("compiled eager", lambda: run_engine(entries, "compiled", "eager")),
        ("codegen eager", lambda: run_engine(entries, "codegen", "eager")),
        ("compiled eager x4", lambda: run_service(entries, "eager", shards=4)),
    ]
    results = []
    for label, runner in configs:
        cell = runner()
        cell["config"] = label
        results.append(cell)
        spread = cell["spread_seconds"]
        print(
            f"{label:>22}: {cell['events_per_second']:>10,.0f} ev/s  "
            f"({cell['seconds']:.2f}s min, {spread['max']:.2f}s max, "
            f"{spread['stdev']:.3f}s stdev; {cell['verdicts']} verdicts, "
            f"{cell['monitors_created']} monitors)"
        )
    identities = {
        (tuple(sorted(row["verdict_multiset"].items())), row["monitors_created"])
        for row in results
    }
    if len(identities) != 1:
        raise AssertionError(
            f"verdict multisets/monitors diverged across configurations: {identities}"
        )

    def rate(label: str) -> float:
        return next(r["events_per_second"] for r in results if r["config"] == label)

    baseline = read_recorded_baseline()
    baseline["recorded_compiled_lazy_events_per_second"] = (
        RECORDED_COMPILED_LAZY_EVENTS_PER_SECOND
    )
    recorded_lazy = baseline["lazy_events_per_second"]
    report = {
        "benchmark": "dispatch",
        "workload": "bloat (unsafe-iterator)",
        "property": "unsafeiter",
        "scale": scale,
        "trace_events": len(entries),
        "baseline": baseline,
        "results": results,
        "monitors_created": results[0]["monitors_created"],
        "verdicts_identical_across_configs": True,
        "speedup_compiled_vs_reference_lazy": rate("compiled lazy")
        / rate("reference lazy"),
        "speedup_eager_targeted_vs_full": rate("compiled eager")
        / rate("reference eager_full"),
        "headline_speedup_vs_recorded_lazy_baseline": (
            rate("compiled lazy") / recorded_lazy if recorded_lazy else None
        ),
        # Two views of the codegen win: the same-run ratio (both sides
        # measured on this host this run — host-speed independent) and the
        # ratio against the fixed recorded pre-codegen number.
        "speedup_codegen_vs_compiled_lazy_same_run": rate("codegen lazy")
        / rate("compiled lazy"),
        "speedup_codegen_vs_reference_lazy_same_run": rate("codegen lazy")
        / rate("reference lazy"),
        "codegen_speedup_vs_recorded_compiled_lazy": rate("codegen lazy")
        / RECORDED_COMPILED_LAZY_EVENTS_PER_SECOND,
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 0.5)",
    )
    parser.add_argument("--out", default="BENCH_dispatch.json", help="JSON report path")
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail when compiled lazy throughput drops below the recorded "
        "seed baseline (BENCH_service.json, lazy 1-shard)",
    )
    parser.add_argument(
        "--baseline-factor",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_GATE_FACTOR", "1.0")),
        help="fraction of the recorded baseline the gate requires "
        "(default: REPRO_BENCH_GATE_FACTOR or 1.0; CI uses < 1.0 to "
        "absorb shared-runner slowness — the compiled path's >3x headroom "
        "over the baseline is what actually catches regressions)",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default: profile's baked seed)")
    args = parser.parse_args()
    report = run_matrix(args.scale, args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    headline = report["headline_speedup_vs_recorded_lazy_baseline"]
    if headline is not None:
        print(f"\nheadline: compiled lazy {headline:.2f}x the recorded seed baseline")
    print(
        "codegen: "
        f"{report['speedup_codegen_vs_compiled_lazy_same_run']:.2f}x compiled "
        "lazy (same run), "
        f"{report['codegen_speedup_vs_recorded_compiled_lazy']:.2f}x the "
        "recorded compiled-lazy number"
    )
    print(f"report -> {args.out}")
    if args.check_baseline:
        failed = False
        recorded = report["baseline"]["lazy_events_per_second"]
        measured = next(
            r["events_per_second"]
            for r in report["results"]
            if r["config"] == "compiled lazy"
        )
        if recorded is None:
            print("no recorded baseline found; skipping the regression gate")
        else:
            gate = recorded * args.baseline_factor
            if measured < gate:
                print(
                    f"PERF REGRESSION: compiled lazy {measured:,.0f} ev/s is "
                    f"below the gate {gate:,.0f} ev/s "
                    f"({args.baseline_factor:.2f}x the recorded seed baseline "
                    f"{recorded:,.0f} ev/s)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"perf gate OK: {measured:,.0f} ev/s >= gate {gate:,.0f} ev/s "
                    f"({args.baseline_factor:.2f}x recorded baseline "
                    f"{recorded:,.0f} ev/s)"
                )
        codegen_measured = next(
            r["events_per_second"]
            for r in report["results"]
            if r["config"] == "codegen lazy"
        )
        codegen_gate = (
            RECORDED_COMPILED_LAZY_EVENTS_PER_SECOND
            * CODEGEN_GATE_MULTIPLE
            * args.baseline_factor
        )
        if codegen_measured < codegen_gate:
            dump = dump_kernel_source(args.out)
            print(
                f"CODEGEN PERF REGRESSION: codegen lazy {codegen_measured:,.0f} "
                f"ev/s is below the gate {codegen_gate:,.0f} ev/s "
                f"({CODEGEN_GATE_MULTIPLE}x the recorded compiled-lazy "
                f"{RECORDED_COMPILED_LAZY_EVENTS_PER_SECOND:,.0f} ev/s, scaled "
                f"by the {args.baseline_factor:.2f} gate factor); generated "
                f"kernel source dumped to {dump}",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"codegen gate OK: {codegen_measured:,.0f} ev/s >= gate "
                f"{codegen_gate:,.0f} ev/s ({CODEGEN_GATE_MULTIPLE}x recorded "
                f"compiled lazy, {args.baseline_factor:.2f} gate factor)"
            )
        if failed:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
