"""Chaos benchmark: supervised recovery under a seeded crash campaign.

The fault-tolerance plane's acceptance gate, run as a benchmark so CI can
hold the line: a supervised sharded service is subjected to a seeded
crash campaign (up to 3 kills) over the bloat workload (UNSAFEITER, the
paper's pathological leak case) in **thread and process mode**, and its
verdict multiset must equal an unfaulted single-engine run over the same
symbolic stream — restarts recover shard state from the last checkpoint
plus the supervision journal's suffix without creating, losing, or
duplicating a single verdict.  Zero deliveries may be quarantined or
shed along the way.

Token lifetimes are pinned for the whole run (no mid-stream
retirement, ``keep_verdict_log=False``) so the gate isolates fault
recovery: under queued dispatch a parameter death is observed at
delivery-batch granularity, not between the exact two events the
synchronous reference sees, so mid-stream retirement would make the
comparison measure the dispatch mode's death timing instead of the
supervisor's recovery fidelity (``docs/robustness.md`` has the full
story).  The supervision suite pins lifetimes the same way.

The JSON report records, per mode: restarts fired, per-restart recovery
latency (detection → healthy, including backoff and journal replay),
verdict counts, and the events-lost figure (always 0, or the run fails).

Run directly (writes ``BENCH_faults.json`` for the perf trajectory)::

    PYTHONPATH=src python benchmarks/bench_faults.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_faults.py --out BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from collections import Counter

from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.faults import FaultPlan
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.service import ingest_symbolic, supervise

SHARDS = 2
CRASHES = 3
DEFAULT_SEED = 20110604  # the paper's publication week; any fixed seed works


def build_trace(scale: float):
    return record_workload_events(WORKLOADS["bloat"].scaled(scale), [UNSAFEITER])


def engine_key(prop, category, monitor):
    pairs = [
        (name, getattr(value, "symbol", value))
        for name, value in monitor.binding().items()
    ]
    return (prop.spec_name, prop.formalism, category, tuple(sorted(pairs)))


def record_key(record):
    pairs = [(name, getattr(value, "symbol", value)) for name, value in record.binding]
    return (record.spec_name, record.formalism, record.category, tuple(sorted(pairs)))


def reference_multiset(entries) -> tuple[Counter, int]:
    """The unfaulted single-engine run: verdict multiset + events seen."""
    want: Counter = Counter()
    engine = MonitoringEngine(
        UNSAFEITER.make().silence(),
        system="rv",
        on_verdict=lambda p, c, m: want.update([engine_key(p, c, m)]),
    )
    tokens = replay_entries(entries, engine)
    events = engine.stats_for("UnsafeIter").events
    del tokens
    return want, events


def campaign(entries, seed: int) -> FaultPlan:
    """A seeded ≤3-kill campaign whose ordinals every shard can reach.

    Campaign positions land in the middle 80% of the per-shard delivery
    estimate — conservative enough that routing imbalance does not park a
    kill past the ordinals a shard actually reaches.
    """
    per_shard = max(50, len(entries) // (2 * SHARDS))
    return FaultPlan.crash_campaign(
        seed=seed, shards=SHARDS, deliveries=per_shard, crashes=CRASHES
    )


def run_mode(mode: str, entries, want: Counter, want_events: int,
             seed: int) -> dict:
    plan = campaign(entries, seed)
    armed = len(plan.armed())
    got: Counter = Counter()
    with tempfile.TemporaryDirectory(prefix=f"bench-faults-{mode}-") as scratch:
        started = time.perf_counter()
        sup = supervise(
            UNSAFEITER.make().silence(),
            os.path.join(scratch, "sup"),
            plan=plan,
            shards=SHARDS,
            system="rv",
            mode=mode,
            keep_verdict_log=False,
            on_verdict=lambda record: got.update([record_key(record)]),
        )
        with sup:
            tokens = ingest_symbolic(sup.service, entries)
            sup.drain()
            events = sup.service.stats_for("UnsafeIter").events
            restarts = sup.restarts()
            latencies = sup.restart_latencies()
            quarantined = len(sup.quarantined())
            shed = sup.shed_counts()
            del tokens
        seconds = time.perf_counter() - started

    equivalent = got == want
    events_lost = want_events - events
    report = {
        "mode": mode,
        "shards": SHARDS,
        "crashes_armed": armed,
        "restarts": restarts,
        "recovery_latency_seconds": {
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
            "all": [round(latency, 6) for latency in latencies],
        },
        "verdicts": sum(got.values()),
        "verdicts_expected": sum(want.values()),
        "equivalent": equivalent,
        "events": events,
        "events_lost": events_lost,
        "quarantined": quarantined,
        "shed": shed,
        "seconds": seconds,
    }
    if not equivalent:
        missing = want - got
        extra = got - want
        report["missing_verdicts"] = sum(missing.values())
        report["extra_verdicts"] = sum(extra.values())
    return report


def run(scale: float, seed: int = DEFAULT_SEED) -> dict:
    entries = build_trace(scale)
    print(f"trace: {len(entries)} events (scale {scale})")
    want, want_events = reference_multiset(entries)
    print(f"reference: {sum(want.values())} verdicts over {want_events} events")

    modes = []
    failures = []
    for mode in ("thread", "process"):
        row = run_mode(mode, entries, want, want_events, seed)
        modes.append(row)
        verdict_note = "exact" if row["equivalent"] else "DIVERGED"
        print(
            f"{mode:>7}: {row['restarts']} restart(s) "
            f"(mean recovery {row['recovery_latency_seconds']['mean']*1e3:.1f} ms), "
            f"{row['verdicts']} verdicts [{verdict_note}], "
            f"events lost {row['events_lost']}, "
            f"quarantined {row['quarantined']}, shed {sum(row['shed'].values())}"
        )
        if not row["equivalent"]:
            failures.append(f"{mode}: verdict multiset diverged")
        if row["events_lost"] != 0:
            failures.append(f"{mode}: {row['events_lost']} events lost")
        if row["quarantined"] != 0:
            failures.append(f"{mode}: {row['quarantined']} deliveries quarantined")
        if sum(row["shed"].values()) != 0:
            failures.append(f"{mode}: load shedding fired under a crash campaign")
        if row["restarts"] == 0:
            failures.append(f"{mode}: the campaign never fired (no recovery exercised)")

    return {
        "benchmark": "faults",
        "workload": "bloat (unsafe-iterator)",
        "scale": scale,
        "seed": seed,
        "trace_events": len(entries),
        "modes": modes,
        "chaos_equivalence": not failures,
        "failures": failures,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 0.5)",
    )
    parser.add_argument("--out", default="BENCH_faults.json", help="JSON report path")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="crash-campaign seed (the repo-wide convention)")
    args = parser.parse_args()
    report = run(args.scale, args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"-> {args.out}")
    if not report["chaos_equivalence"]:
        raise SystemExit("; ".join(report["failures"]))


if __name__ == "__main__":
    main()
