"""Figure 10: monitoring statistics — E, M, FM, CM per workload x property.

The paper's key rows: on bloat, UNSAFEITER sees 81M events and 1.9M
monitors of which 1.8M are flagged (FM) and collected (CM); HASNEXT flags
everything; the UNSAFESYNC* properties create monitors but flag almost
nothing through coenable (their monitors die with their collections
instead).  The shape tests assert those ratios; the benchmark entries time
the statistics-producing runs so ``--benchmark-only`` regenerates the whole
table's data.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_cell
from repro.properties import EVALUATED_PROPERTIES

from conftest import make_monitored_runner

PROPERTY_KEYS = tuple(prop.key for prop in EVALUATED_PROPERTIES)


@pytest.mark.parametrize("prop", PROPERTY_KEYS)
def test_fig10_rv_statistics_run(benchmark, prop):
    """One Figure 10 row group: bloat x property under RV."""
    run, engine, teardown = make_monitored_runner("bloat", prop, "rv")
    try:
        benchmark(run)
        totals = {"E": 0, "M": 0, "FM": 0, "CM": 0}
        for stats in engine.stats().values():
            row = stats.as_row()
            for key in totals:
                totals[key] += row[key]
        benchmark.extra_info.update(totals)
    finally:
        teardown()


# -- shape assertions -----------------------------------------------------------


def _totals(workload: str, prop: str, system: str = "rv", scale: float = 0.3):
    return run_cell(workload, prop, system, scale=scale).totals()


def test_fig10_shape_unsafeiter_flags_nearly_everything():
    """Paper: 1.8M of 1.9M bloat monitors flagged; we assert >= 90%."""
    totals = _totals("bloat", "unsafeiter")
    assert totals["M"] > 0
    assert totals["FM"] >= 0.9 * totals["M"]
    assert totals["CM"] >= 0.9 * totals["M"]


def test_fig10_shape_hasnext_flags_everything():
    totals = _totals("bloat", "hasnext")
    assert totals["FM"] == totals["M"] > 0


def test_fig10_shape_event_volumes_ordered_like_paper():
    """bloat generates far more events than the trade* analogs."""
    heavy = _totals("bloat", "unsafeiter")["E"]
    light = _totals("tradesoap", "unsafeiter", scale=1.0)["E"]
    assert heavy > 100 * max(1, light)


def test_fig10_shape_mop_retains_while_collections_live():
    """Under MOP, flags require the *whole* binding dead, so while the run
    is going its live population tracks M; RV prunes as iterators die.
    (Final FM counts are not comparable: monitors whose indexing subtrees
    die are reclaimed *without* ever being flagged, and the two strategies
    reclaim through different mixes of flagging and subtree death.)"""
    mop = run_cell("bloat", "unsafeiter", "mop", scale=0.3)
    rv = run_cell("bloat", "unsafeiter", "rv", scale=0.3)
    assert rv.peak_live_monitors < 0.5 * mop.peak_live_monitors


def test_fig10_shape_sync_monitor_survives_iterator_churn():
    """The mechanism behind the paper's UNSAFESYNC* FM=0 columns: a monitor
    whose last event is ``sync`` waits on the *collection* — iterator
    deaths never prune it (its ALIVENESS needs live_c, and the unbound
    iterator parameter counts as alive).  Divergence note (EXPERIMENTS.md):
    our synthetic workloads do produce sync *matches*, whose post-match
    coenable family is empty, so the workload-level FM is nonzero unlike
    the paper's."""
    import gc as _gc

    from repro.properties import UNSAFESYNCCOLL
    from repro.runtime.engine import MonitoringEngine
    from repro.instrument.collections_shim import SynchronizedCollection

    spec = UNSAFESYNCCOLL.make().silence()
    engine = MonitoringEngine(spec, system="rv")
    weaver = UNSAFESYNCCOLL.instrument(engine)
    try:
        coll = SynchronizedCollection(range(4))   # emits sync<coll>
        for _ in range(25):
            with coll:
                iterator = coll.iterator()        # synciter: no violation
                while iterator.has_next():
                    iterator.next()
            del iterator                          # iterators die young
        _gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeSyncColl")
        # The <coll> monitor (last event sync) must never be flagged by the
        # iterator churn; the <coll, iterator> synciter monitors die with
        # their iterators (they can still reach a match via access, whose
        # coenable requires the iterator — dead iterator => flagged).
        assert stats.live_monitors >= 1
        live = engine.runtimes[0].live_instances()
        assert any(m.last_event == "sync" for m in live)
    finally:
        weaver.unweave()


def test_fig10_shape_all_simultaneous_consistency():
    """The ALL cell: per-property E totals match the single-property runs
    (events are observations; hosting five specs does not change them)."""
    alone = _totals("h2", "unsafeiter", scale=0.2)
    cell = run_cell("h2", list(PROPERTY_KEYS), "rv", scale=0.2)
    combined = {
        spec: stats.as_row()["E"] for (spec, _f), stats in cell.stats.items()
    }
    assert combined["UnsafeIter"] == alone["E"]
