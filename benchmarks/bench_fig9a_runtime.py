"""Figure 9(A): runtime overhead of TM vs MOP vs RV.

The benchmark matrix measures the *monitored* runtime of representative
DaCapo analogs under the three systems plus the unwoven baseline (the ORIG
column).  ``test_fig9a_shape_*`` (plain tests, skipped under
``--benchmark-only``) assert the paper's qualitative result on a mid-size
run: RV is the fastest monitored configuration on iterator-heavy workloads
and the TM analog the slowest, while near-idle workloads show no meaningful
spread.

Expected shape (paper): RV average ~15% — half of JavaMOP's ~33%, orders of
magnitude below Tracematches (which does not even terminate on 9 cells).
Absolute percentages here are far larger — every shim call is interpreted
Python — but the ordering and the who-wins structure reproduce.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_cell

from conftest import make_baseline_runner, make_monitored_runner

WORKLOADS_UNDER_TEST = ("bloat", "h2", "sunflow", "tomcat")
PROPERTIES_UNDER_TEST = ("hasnext", "unsafeiter")
SYSTEMS_UNDER_TEST = ("tm", "mop", "rv")


@pytest.mark.parametrize("workload", WORKLOADS_UNDER_TEST)
def test_fig9a_baseline(benchmark, workload):
    """The ORIG column: the unwoven workload."""
    benchmark(make_baseline_runner(workload))


@pytest.mark.parametrize("workload", WORKLOADS_UNDER_TEST)
@pytest.mark.parametrize("prop", PROPERTIES_UNDER_TEST)
@pytest.mark.parametrize("system", SYSTEMS_UNDER_TEST)
def test_fig9a_monitored(benchmark, workload, prop, system):
    run, engine, teardown = make_monitored_runner(workload, prop, system)
    try:
        benchmark(run)
        benchmark.extra_info["events"] = sum(
            stats.events for stats in engine.stats().values()
        )
    finally:
        teardown()


def test_fig9a_all_column(benchmark):
    """The ALL column: the five evaluated properties simultaneously (RV)."""
    run, engine, teardown = make_monitored_runner(
        "bloat",
        ["hasnext", "unsafeiter", "unsafemapiter", "unsafesynccoll", "unsafesyncmap"],
        "rv",
    )
    try:
        benchmark(run)
    finally:
        teardown()


# -- shape assertions (plain tests; run without --benchmark-only) -------------


def test_fig9a_shape_rv_beats_mop_on_bloat():
    """The headline: RV's monitored runtime beats JavaMOP's on the leaky
    workload (paper: 2x on average; we assert a strict win with margin for
    timer noise)."""
    scale, repeats = 0.4, 3
    rv = run_cell("bloat", "unsafeiter", "rv", scale=scale, repeats=repeats)
    mop = run_cell(
        "bloat", "unsafeiter", "mop", scale=scale, repeats=repeats,
        original_seconds=rv.original_seconds,
    )
    assert rv.monitored_seconds < mop.monitored_seconds * 1.02


def test_fig9a_shape_tm_slowest_on_bloat():
    scale, repeats = 0.3, 3
    rv = run_cell("bloat", "unsafeiter", "rv", scale=scale, repeats=repeats)
    tm = run_cell(
        "bloat", "unsafeiter", "tm", scale=scale, repeats=repeats,
        original_seconds=rv.original_seconds,
    )
    assert tm.monitored_seconds > rv.monitored_seconds


def test_fig9a_shape_idle_workloads_cheap():
    """tomcat/tradebeans-class workloads: monitoring costs next to nothing
    in absolute terms (the paper's ~0-5% rows)."""
    cell = run_cell("tradebeans", "unsafeiter", "rv", repeats=3)
    assert cell.monitored_seconds - cell.original_seconds < 0.05  # seconds


def test_fig9a_shape_h2_cheaper_than_bloat_under_mop():
    """h2's short-lived monitors keep even MOP lean (Section 5.2)."""
    scale = 0.3
    bloat = run_cell("bloat", "unsafeiter", "mop", scale=scale)
    h2 = run_cell("h2", "unsafeiter", "mop", scale=scale)
    assert h2.peak_live_monitors < bloat.peak_live_monitors
