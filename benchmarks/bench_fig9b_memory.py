"""Figure 9(B): peak memory of TM vs MOP vs RV.

The paper reports process peak MB; the Python-faithful metric is the peak
number of simultaneously live monitor instances (exactly the quantity the
monitor-GC technique controls) plus ``tracemalloc`` peak bytes.

Expected shape (paper, bloat/UNSAFEITER row): MOP 146.8MB vs RV 79.0MB vs
TM 7.7MB — i.e. MOP retains the most, RV collects most of it, and the
more-precise state-indexed TM analog retains the least.  The benchmarks
below reproduce that ordering on monitor populations.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_cell

from conftest import BENCH_SCALE, make_monitored_runner

MEMORY_WORKLOADS = ("bloat", "h2", "sunflow")


@pytest.mark.parametrize("workload", MEMORY_WORKLOADS)
@pytest.mark.parametrize("system", ("tm", "mop", "rv"))
def test_fig9b_monitored_run_with_peak(benchmark, workload, system):
    """Times the monitored run and records the peak monitor population."""
    run, engine, teardown = make_monitored_runner(workload, "unsafeiter", system)
    try:
        benchmark(run)
        benchmark.extra_info["peak_live_monitors"] = sum(
            stats.peak_live_monitors for stats in engine.stats().values()
        )
    finally:
        teardown()


# -- shape assertions -----------------------------------------------------------


def _peaks(workload: str, scale: float) -> dict[str, int]:
    return {
        system: run_cell(workload, "unsafeiter", system, scale=scale).peak_live_monitors
        for system in ("tm", "mop", "rv")
    }


def test_fig9b_shape_ordering_on_bloat():
    """TM <= RV << MOP on the leak-heavy workload."""
    peaks = _peaks("bloat", scale=0.4)
    assert peaks["rv"] < peaks["mop"] / 2
    assert peaks["tm"] <= peaks["rv"]


def test_fig9b_shape_h2_is_flat_everywhere():
    """Short-lived monitors: no strategy accumulates garbage on h2."""
    peaks = _peaks("h2", scale=0.4)
    assert max(peaks.values()) <= 16


def test_fig9b_shape_sunflow_mop_retains():
    """sunflow: few distinct iterators but one immortal collection — MOP
    can never free its monitors; RV frees nearly all."""
    peaks = _peaks("sunflow", scale=0.4)
    assert peaks["rv"] < peaks["mop"] / 4


def test_fig9b_tracemalloc_confirms_monitor_counts():
    """tracemalloc peak for RV must not exceed MOP's (same workload)."""
    rv = run_cell("bloat", "unsafeiter", "rv", scale=BENCH_SCALE, measure_tracemalloc=True)
    mop = run_cell("bloat", "unsafeiter", "mop", scale=BENCH_SCALE, measure_tracemalloc=True)
    assert rv.tracemalloc_monitored <= mop.tracemalloc_monitored * 1.1
