"""Live-instrumentation benchmark: monitoring overhead on a real program.

Figure 9(A)'s methodology applied to the live layer: the same user
program runs **uninstrumented** and **monitored**, and the overhead is
the wall-clock ratio.  Three instrumentation paths are measured:

1. **wrapper** — the program's resource helpers are annotated with
   :func:`repro.instrument.live.emits` decorators (the deployment style:
   passthrough cost when no session listens, full monitoring when one
   does);
2. **woven** — the *unmodified* helpers are woven with
   :class:`~repro.instrument.live.TraceWeaver` function pointcuts
   (``sys.monitoring`` on 3.12+, ``settrace`` on 3.11 — the report
   records which);
3. **resources** — real ``ThreadPoolExecutor`` + ``TemporaryDirectory``
   churn under the EXECUTOR and TEMPDIR catalogue properties' default
   class weaving.

The wrapper path additionally records its run — death markers included —
and replays it into a fresh engine, asserting the live and offline
verdict multisets agree (the live layer's equivalence contract).

Run directly (writes ``BENCH_live.json``)::

    PYTHONPATH=src python benchmarks/bench_live.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_live.py --out BENCH_live.json
"""

from __future__ import annotations

import argparse
import io
import json
import os
import platform
import sys
import tempfile
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

from repro.bench.harness import timed_call
from repro.instrument.live import LiveSession, emits, on_call, on_return
from repro.properties import LIVE_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay
from repro.spec.compiler import compile_spec

#: The monitored discipline of the synthetic user program: a handle must
#: not be used after release (the SOCKETUSE/CURSORSAFE shape).
HANDLE_SPEC = """
HandleSafe(h) {
  event h_open(h)
  event h_use(h)
  event h_close(h)

  fsm:
    fresh  [ h_open -> live ]
    live   [ h_use -> live  h_close -> dead ]
    dead   [ h_close -> dead  h_use -> error ]
    error  [ ]
  @error "handle used after release"
}
"""

USES_PER_HANDLE = 4
#: Every Nth handle is (incorrectly) used once after release.
VIOLATION_STRIDE = 50


class Handle:
    """A stand-in resource: cheap to create, weak-referenceable."""

    __slots__ = ("serial", "closed", "__weakref__")

    def __init__(self, serial: int):
        self.serial = serial
        self.closed = False


# -- the user program, wrapper-annotated flavor ------------------------------


@emits("h_open", when="return", bind={"h": "result"})
def open_handle_w(serial: int) -> Handle:
    return Handle(serial)


@emits("h_use", bind={"h": "arg:handle"})
def use_handle_w(handle: Handle) -> int:
    return handle.serial


@emits("h_close", bind={"h": "arg:handle"})
def close_handle_w(handle: Handle) -> None:
    handle.closed = True


# -- the same program, plain flavor (woven externally) -----------------------


def open_handle_p(serial: int) -> Handle:
    return Handle(serial)


def use_handle_p(handle: Handle) -> int:
    return handle.serial


def close_handle_p(handle: Handle) -> None:
    handle.closed = True


def run_program(opener, user, closer, handles: int) -> int:
    """The user program: open/use/close churn with occasional misuse."""
    touched = 0
    for serial in range(handles):
        handle = opener(serial)
        for _ in range(USES_PER_HANDLE):
            touched += user(handle)
        closer(handle)
        if serial % VIOLATION_STRIDE == 0:
            user(handle)  # use-after-release: the monitored violation
        del handle  # handles die young: the weakref ledger's food
    return touched


def timed(fn) -> float:
    return timed_call(fn)[1]


def make_engine(verdicts: Counter) -> MonitoringEngine:
    return MonitoringEngine(
        compile_spec(HANDLE_SPEC).silence(),
        gc="coenable",
        on_verdict=lambda _p, category, _m: verdicts.update([category]),
    )


def expected_violations(handles: int) -> int:
    return len(range(0, handles, VIOLATION_STRIDE))


def bench_wrapper(handles: int) -> dict:
    events = handles * (1 + USES_PER_HANDLE + 1) + expected_violations(handles)
    baseline = timed(lambda: run_program(open_handle_w, use_handle_w,
                                         close_handle_w, handles))
    verdicts: Counter = Counter()
    with LiveSession(make_engine(verdicts)):
        monitored = timed(lambda: run_program(open_handle_w, use_handle_w,
                                              close_handle_w, handles))
    assert verdicts["error"] == expected_violations(handles)

    # A second, recorded run (death markers included) replayed offline:
    # the live layer's equivalence contract, asserted inline.
    recorded_verdicts: Counter = Counter()
    trace = io.StringIO()
    with LiveSession(make_engine(recorded_verdicts), record=trace):
        recorded = timed(lambda: run_program(open_handle_w, use_handle_w,
                                             close_handle_w, handles))
    offline: Counter = Counter()
    replay(trace.getvalue().splitlines(), make_engine(offline))
    assert offline == recorded_verdicts == verdicts, (offline, verdicts)

    return {
        "events": events,
        "uninstrumented_s": round(baseline, 4),
        "monitored_s": round(monitored, 4),
        "recorded_s": round(recorded, 4),
        "overhead_x": round(monitored / baseline, 2),
        "per_event_us": round(1e6 * (monitored - baseline) / events, 2),
        "events_per_sec": round(events / monitored),
        "verdicts": dict(verdicts),
        "replay_verdicts_identical": True,
    }


def bench_woven(handles: int, backend: str | None) -> dict:
    events = handles * (1 + USES_PER_HANDLE + 1) + expected_violations(handles)
    baseline = timed(lambda: run_program(open_handle_p, use_handle_p,
                                         close_handle_p, handles))
    verdicts: Counter = Counter()
    session = LiveSession(make_engine(verdicts), backend=backend)
    with session:
        session.weave_functions([
            on_return(open_handle_p, "h_open", {"h": "result"}),
            on_call(use_handle_p, "h_use", {"h": "arg:handle"}),
            on_call(close_handle_p, "h_close", {"h": "arg:handle"}),
        ])
        weaver_backend = session._trace_weaver.backend
        monitored = timed(lambda: run_program(open_handle_p, use_handle_p,
                                              close_handle_p, handles))
    assert verdicts["error"] == expected_violations(handles)
    return {
        "backend": weaver_backend,
        "events": events,
        "uninstrumented_s": round(baseline, 4),
        "monitored_s": round(monitored, 4),
        "overhead_x": round(monitored / baseline, 2),
        "per_event_us": round(1e6 * (monitored - baseline) / events, 2),
        "events_per_sec": round(events / monitored),
    }


def resource_churn(rounds: int) -> None:
    for _ in range(rounds):
        with tempfile.TemporaryDirectory() as scratch:
            with ThreadPoolExecutor(max_workers=2) as pool:
                results = [pool.submit(len, scratch) for _ in range(4)]
                for future in results:
                    future.result()


def bench_resources(rounds: int) -> dict:
    baseline = timed(lambda: resource_churn(rounds))
    verdicts: Counter = Counter()
    session = LiveSession(
        properties=[LIVE_PROPERTIES["executor"].make().silence(),
                    LIVE_PROPERTIES["tempdir"].make().silence()],
        gc="coenable",
        on_verdict=lambda _p, category, _m: verdicts.update([category]),
    )
    with session:
        session.weave(LIVE_PROPERTIES["executor"].pointcuts())
        session.weave(LIVE_PROPERTIES["tempdir"].pointcuts())
        monitored = timed(lambda: resource_churn(rounds))
    assert not verdicts  # clean churn: monitoring must stay silent
    return {
        "rounds": rounds,
        "uninstrumented_s": round(baseline, 4),
        "monitored_s": round(monitored, 4),
        "overhead_x": round(monitored / baseline, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 1.0)",
    )
    parser.add_argument("--out", default="BENCH_live.json")
    args = parser.parse_args()

    handles = max(100, round(6000 * args.scale))
    rounds = max(5, round(60 * args.scale))

    report = {
        "benchmark": "live-instrumentation overhead",
        "scale": args.scale,
        "python": platform.python_version(),
        "has_sys_monitoring": hasattr(sys, "monitoring"),
        "wrapper": bench_wrapper(handles),
        "woven": bench_woven(handles, backend=None),
        "resources": bench_resources(rounds),
    }
    # The settrace fallback is measured explicitly where the default
    # backend is sys.monitoring, for the cross-version comparison.
    if hasattr(sys, "monitoring"):
        report["woven_settrace"] = bench_woven(handles, backend="settrace")

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
