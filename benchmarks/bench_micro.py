"""Micro-benchmarks: the building blocks' costs.

Not a paper table — these guard the constants the macro results depend on:
per-event dispatch, weak-map operations under churn, static-analysis
(coenable/enable fixpoint) cost at spec-compile time (the paper argues this
is "a quick static operation"), and spec compilation end to end.
"""

from __future__ import annotations

import pytest

from repro.core.coenable import param_coenable_sets
from repro.formalism.ere import compile_ere
from repro.runtime.engine import MonitoringEngine
from repro.runtime.rvmap import RVMap
from repro.spec import compile_spec

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""


class Token:
    __slots__ = ("__weakref__",)


def test_micro_event_dispatch(benchmark):
    """Steady-state cost of one parametric event through the indexing trees."""
    engine = MonitoringEngine(compile_spec(UNSAFEITER), system="rv")
    collection = Token()
    iterators = [Token() for _ in range(64)]
    for iterator in iterators:
        engine.emit("create", c=collection, i=iterator)

    index = 0

    def dispatch():
        nonlocal index
        engine.emit("update", c=collection)
        engine.emit("next", i=iterators[index & 63])
        index += 1

    benchmark(dispatch)


def test_micro_monitor_creation(benchmark):
    """Cost of creating a fresh <c,i> monitor instance (defineTo path)."""
    engine = MonitoringEngine(compile_spec(UNSAFEITER), system="rv")
    collection = Token()

    def create():
        engine.emit("create", c=collection, i=Token())

    benchmark(create)


def test_micro_rvmap_churn(benchmark):
    """put/get churn with dead keys mixed in (the lazy-scan hot path)."""
    rvmap = RVMap(scan_budget=2)
    live = [Token() for _ in range(128)]
    for index, token in enumerate(live):
        rvmap.put(token, index)
    cursor = 0

    def churn():
        nonlocal cursor
        rvmap.put(Token(), cursor)  # immediately dead key
        rvmap.get(live[cursor & 127])
        cursor += 1

    benchmark(churn)


def test_micro_coenable_fixpoint(benchmark):
    """The Section 3 static analysis on the paper's UNSAFEITER pattern."""
    template = compile_ere(
        "update* create next* update+ next", {"create", "update", "next"}
    )
    goal = frozenset({"match"})

    def analyze():
        template._coenable_cache.clear()
        return template.coenable_sets(goal)

    benchmark(analyze)


def test_micro_spec_compilation(benchmark):
    """Full pipeline: parse + formalism compile + analyses + formulas."""
    benchmark(lambda: compile_spec(UNSAFEITER))


def test_micro_param_lift(benchmark):
    spec = compile_spec(UNSAFEITER)
    prop = spec.properties[0]
    benchmark(lambda: param_coenable_sets(prop.coenable, prop.definition))


@pytest.mark.parametrize("system", ("none", "mop", "rv", "tm"))
def test_micro_iterator_lifecycle(benchmark, system):
    """create + 3 events + death, per system — the per-iterator unit cost."""
    engine = MonitoringEngine(compile_spec(UNSAFEITER), system=system)
    collection = Token()

    def lifecycle():
        iterator = Token()
        engine.emit("create", c=collection, i=iterator)
        engine.emit("next", i=iterator)
        engine.emit("update", c=collection)
        del iterator

    benchmark(lifecycle)
