"""Telemetry overhead benchmark: metrics-on vs metrics-off on the hot path.

The telemetry plane's contract is "near-zero when off, cheap when on":
every hot-path instrument is an instance-attribute wrapper that simply is
not installed when ``telemetry=None``, and latency timers fire only 1-in-N
(:data:`repro.obs.telemetry.DEFAULT_SAMPLE_INTERVAL`).  This benchmark
prices that contract on the paper's pathological workload (UNSAFEITER
over the ``bloat`` analog — the same trace ``bench_dispatch.py`` uses):

* **off** — compiled-lazy engine, ``telemetry=None`` (the bench_dispatch
  configuration, i.e. the recorded-baseline code path);
* **on**  — the same engine with a live :class:`~repro.obs.telemetry.Telemetry`
  at the default sampling interval;
* **attr** — telemetry plus sampled per-property stage attribution
  (``Telemetry(attribution=True)``): the decomposed timed dispatch runs
  on sampled calls, so this prices the tracing plane's deepest hook.

Repeats of the three configurations are *interleaved* (off/on/attr alternating,
best-of-N per column via the shared ``timed_call`` helper) so machine
drift hits both equally; verdict/monitor identity is asserted across
every repeat *and* across all three configurations, and
the "on" run is checked to have actually recorded its exact counters
(``repro_engine_handled_total`` must equal the trace length — a benchmark
that silently measured disabled telemetry would gate nothing).

Run directly (writes ``BENCH_obs.json``)::

    PYTHONPATH=src python benchmarks/bench_obs.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_obs.py \
        --out BENCH_obs.json --check-gate

``--check-gate`` exits non-zero when the metrics-on overhead exceeds
``--gate-pct`` (default ``REPRO_OBS_GATE_PCT`` or 5.0 percent) or the
attribution-on overhead exceeds ``--attr-gate-pct`` (default
``REPRO_OBS_ATTR_GATE_PCT`` or 8.0 percent).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from repro.bench.harness import timed_call
from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.obs.telemetry import DEFAULT_SAMPLE_INTERVAL, Telemetry
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries


def build_trace(scale: float, seed: "int | None" = None) -> list[tuple[str, dict[str, str]]]:
    profile = WORKLOADS["bloat"].scaled(scale).reseeded(seed)
    return record_workload_events(profile, [UNSAFEITER])


def run_once(entries, label: str) -> tuple[float, tuple, dict]:
    """One compiled-lazy replay; ``(seconds, identity, telemetry snapshot)``.

    ``label`` picks the configuration: ``"off"`` (no telemetry), ``"on"``
    (default telemetry), ``"attr"`` (telemetry + stage attribution).
    """
    verdicts: Counter = Counter()
    if label == "off":
        telemetry = None
    elif label == "on":
        telemetry = Telemetry()
    else:
        telemetry = Telemetry(attribution=True)
    engine = MonitoringEngine(
        UNSAFEITER.make().silence(),
        gc="coenable",
        propagation="lazy",
        dispatch="compiled",
        telemetry=telemetry,
        on_verdict=lambda prop, category, monitor: verdicts.update([category]),
    )
    _, elapsed = timed_call(
        replay_entries, entries, engine, retire_after_last_use=True
    )
    stats = engine.stats_for("UnsafeIter")
    identity = (sum(verdicts.values()), stats.monitors_created)
    return elapsed, identity, telemetry.snapshot() if telemetry else {}


def run(scale: float, repeats: int, seed: "int | None" = None) -> dict:
    entries = build_trace(scale, seed)
    print(f"trace: {len(entries)} events (scale {scale})")
    # Interleave the configurations: alternating off/on repeats exposes
    # both to the same machine drift (shared-runner frequency scaling,
    # noisy neighbors), which back-to-back best-of-N groups would not —
    # the min of each column then compares like with like.
    times: dict[str, list[float]] = {"off": [], "on": [], "attr": []}
    identities: set[tuple] = set()
    snapshot: dict = {}
    attr_snapshot: dict = {}
    for _ in range(max(1, repeats)):
        for label in ("off", "on", "attr"):
            elapsed, identity, snap = run_once(entries, label)
            times[label].append(elapsed)
            identities.add(identity)
            if snap and label == "on":
                snapshot = snap
            elif snap and label == "attr":
                attr_snapshot = snap
    if len(identities) != 1:
        raise AssertionError(
            f"telemetry changed monitoring behavior: {identities}"
        )
    handled = sum(
        value for _key, value in snapshot["repro_engine_handled_total"]["series"]
    )
    if handled != len(entries):
        raise AssertionError(
            f"telemetry-on run recorded {handled} handled events, expected "
            f"{len(entries)} — the instrumented path did not run"
        )
    sampled = sum(
        value["count"]
        for _key, value in snapshot["repro_engine_event_seconds"]["series"]
    )
    attr_family = attr_snapshot.get("repro_prop_stage_seconds_total", {})
    attr_seconds = sum(value for _key, value in attr_family.get("series", ()))
    attr_samples = sum(
        value
        for _key, value in attr_snapshot.get(
            "repro_prop_stage_samples_total", {}
        ).get("series", ())
    )
    if not attr_samples or attr_seconds <= 0.0:
        raise AssertionError(
            "attribution-on run recorded no stage samples — the attributed "
            "dispatch path did not run"
        )
    identity = identities.pop()
    rows = {}
    for label in ("off", "on", "attr"):
        seconds = min(times[label])
        rows[label] = {
            "telemetry": label,
            "events": len(entries),
            "seconds": seconds,
            "times": times[label],
            "events_per_second": len(entries) / seconds if seconds else 0.0,
            "verdicts": identity[0],
            "monitors_created": identity[1],
        }
    rows["on"]["handled_total"] = handled
    rows["on"]["sampled_latency_observations"] = sampled
    rows["attr"]["attributed_stage_seconds"] = attr_seconds
    rows["attr"]["attributed_stage_samples"] = attr_samples
    off, on, attr = rows["off"], rows["on"], rows["attr"]
    overhead_pct = (
        100.0 * (on["seconds"] - off["seconds"]) / off["seconds"]
        if off["seconds"]
        else 0.0
    )
    attr_overhead_pct = (
        100.0 * (attr["seconds"] - off["seconds"]) / off["seconds"]
        if off["seconds"]
        else 0.0
    )
    for row in (off, on, attr):
        print(
            f"  metrics {row['telemetry']:>4}: "
            f"{row['events_per_second']:>10,.0f} ev/s  ({row['seconds']:.3f}s)"
        )
    print(
        f"overhead: {overhead_pct:+.2f}% at sampling interval "
        f"{DEFAULT_SAMPLE_INTERVAL} "
        f"({on['sampled_latency_observations']} sampled latency observations)"
    )
    print(
        f"attribution overhead: {attr_overhead_pct:+.2f}% "
        f"({attr_samples} stage samples, {attr_seconds:.4f}s attributed)"
    )
    return {
        "benchmark": "obs-overhead",
        "workload": "bloat (unsafe-iterator)",
        "scale": scale,
        "trace_events": len(entries),
        "repeats": repeats,
        "sample_interval": DEFAULT_SAMPLE_INTERVAL,
        "results": [off, on, attr],
        "overhead_pct": overhead_pct,
        "attr_overhead_pct": attr_overhead_pct,
        "verdicts_identical_across_configs": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 0.5)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="best-of-N repeats per configuration (default 5: denoising — "
        "the gate compares minima, not means)",
    )
    parser.add_argument("--out", default="BENCH_obs.json", help="JSON report path")
    parser.add_argument(
        "--check-gate",
        action="store_true",
        help="fail when metrics-on overhead exceeds --gate-pct",
    )
    parser.add_argument(
        "--gate-pct",
        type=float,
        default=float(os.environ.get("REPRO_OBS_GATE_PCT", "5.0")),
        help="maximum allowed overhead percent (default: REPRO_OBS_GATE_PCT "
        "or 5.0; CI may loosen it to absorb shared-runner noise)",
    )
    parser.add_argument(
        "--attr-gate-pct",
        type=float,
        default=float(os.environ.get("REPRO_OBS_ATTR_GATE_PCT", "8.0")),
        help="maximum allowed attribution-on overhead percent (default: "
        "REPRO_OBS_ATTR_GATE_PCT or 8.0)",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default: profile's baked seed)")
    args = parser.parse_args()
    report = run(args.scale, args.repeats, args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"report -> {args.out}")
    if args.check_gate:
        failed = False
        if report["overhead_pct"] > args.gate_pct:
            print(
                f"OBS OVERHEAD REGRESSION: {report['overhead_pct']:+.2f}% "
                f"exceeds the {args.gate_pct:.1f}% gate",
                file=sys.stderr,
            )
            failed = True
        if report["attr_overhead_pct"] > args.attr_gate_pct:
            print(
                f"OBS ATTRIBUTION OVERHEAD REGRESSION: "
                f"{report['attr_overhead_pct']:+.2f}% exceeds the "
                f"{args.attr_gate_pct:.1f}% gate",
                file=sys.stderr,
            )
            failed = True
        if failed:
            raise SystemExit(1)
        print(
            f"obs gate OK: {report['overhead_pct']:+.2f}% <= "
            f"{args.gate_pct:.1f}%, attribution "
            f"{report['attr_overhead_pct']:+.2f}% <= {args.attr_gate_pct:.1f}%"
        )


if __name__ == "__main__":
    main()
