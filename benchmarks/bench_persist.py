"""Persistence benchmarks: snapshot/restore cost and process-shard scaling.

Three measurements over the bloat workload (UNSAFEITER, the paper's
pathological leak case):

1. **Snapshot/restore round trip** — serialize a mid-run engine (monitors,
   disable knowledge, stats) to the versioned binary format and restore
   it; verifies replay equivalence on the spot (suffix replay after
   restore must reproduce the uninterrupted run's verdicts and E/M/CM)
   and reports timings plus the compressed snapshot size.
2. **Write-ahead log** — sustained append throughput at the default fsync
   interval, plus a full crash-recovery (snapshot + suffix replay) timing.
3. **Thread vs process backend** — the same CPU-bound configuration
   (eager propagation: per-event cost grows with engine state) ingested
   by ``mode="thread"`` and ``mode="process"`` services.  Thread shards
   interleave under the GIL; process shards use real cores.  The headline
   ``process_speedup_vs_thread`` exceeds 1 only when the machine has
   cores to parallelize over — the report records ``cpu_count`` and sets
   ``multicore`` accordingly (on a 1-core container the expected result
   is < 1: same total CPU plus serialization overhead).

Run directly (writes ``BENCH_persist.json`` for the perf trajectory)::

    PYTHONPATH=src python benchmarks/bench_persist.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_persist.py --out BENCH_persist.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import tempfile
from collections import Counter

from repro.bench.harness import timed_call
from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.persist import (
    DurableEngine,
    restore_engine,
    snapshot_engine,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import ReplayToken, replay_entries
from repro.service import MonitorService

SHARDS = 4
BATCH = 512


def build_trace(scale: float, seed: "int | None" = None):
    profile = WORKLOADS["bloat"].scaled(scale).reseeded(seed)
    return record_workload_events(profile, [UNSAFEITER])


# -- part 1: snapshot/restore round trip -------------------------------------


def verdict_key(prop, category, monitor):
    pairs = [
        (name, getattr(value, "symbol", value))
        for name, value in monitor.binding().items()
    ]
    return (prop.spec_name, category, tuple(sorted(pairs)))


def bench_snapshot(entries) -> dict:
    cut = len(entries) // 2

    want: Counter = Counter()
    full = MonitoringEngine(
        UNSAFEITER.make().silence(),
        gc="coenable",
        on_verdict=lambda p, c, m: want.update([verdict_key(p, c, m)]),
    )
    replay_entries(entries, full, retire_after_last_use=True)
    full.flush_gc()
    gc.collect()
    want_stats = full.stats_for("UnsafeIter")

    got: Counter = Counter()
    prefix = MonitoringEngine(
        UNSAFEITER.make().silence(),
        gc="coenable",
        on_verdict=lambda p, c, m: got.update([verdict_key(p, c, m)]),
    )
    prefix_tokens = replay_entries(
        entries, prefix, retire_after_last_use=True, stop=cut
    )
    live_monitors = prefix.total_live_monitors()

    payload, snapshot_seconds = timed_call(
        lambda: snapshot_to_bytes(snapshot_engine(prefix))
    )
    del prefix, prefix_tokens
    gc.collect()

    (restored, tokens), restore_seconds = timed_call(
        restore_engine,
        snapshot_from_bytes(payload),
        UNSAFEITER.make().silence(),
        on_verdict=lambda p, c, m: got.update([verdict_key(p, c, m)]),
    )
    replay_entries(
        entries, restored, retire_after_last_use=True, start=cut, tokens=tokens
    )
    restored.flush_gc()
    gc.collect()
    restored_stats = restored.stats_for("UnsafeIter")

    equivalent = (
        got == want
        and restored_stats.events == want_stats.events
        and restored_stats.monitors_created == want_stats.monitors_created
        and restored_stats.monitors_collected == want_stats.monitors_collected
    )
    if not equivalent:
        raise AssertionError(
            f"snapshot/restore is not replay-equivalent: "
            f"verdicts {sum(got.values())} vs {sum(want.values())}, "
            f"rows {restored_stats.as_row()} vs {want_stats.as_row()}"
        )
    return {
        "cut_event": cut,
        "live_monitors_at_cut": live_monitors,
        "snapshot_bytes": len(payload),
        "snapshot_seconds": snapshot_seconds,
        "restore_seconds": restore_seconds,
        "equivalence_verified": True,
        "verdicts": sum(want.values()),
    }


# -- part 2: write-ahead log ---------------------------------------------------


def bench_wal(entries) -> dict:
    with tempfile.TemporaryDirectory() as directory:
        durable = DurableEngine(
            UNSAFEITER.make().silence(),
            directory,
            gc="coenable",
            segment_events=50_000,
            fsync_interval=256,
        )
        tokens: dict = {}
        _, append_seconds = timed_call(
            replay_entries, entries, durable.engine, tokens=tokens
        )
        durable.checkpoint()
        del durable, tokens
        gc.collect()

        (recovered, _tokens), recover_seconds = timed_call(
            DurableEngine.recover, UNSAFEITER.make().silence(), directory
        )
        events = recovered.engine.stats_for("UnsafeIter").events
        recovered.close()
    return {
        "events": events,
        "append_events_per_second": len(entries) / append_seconds if append_seconds else 0.0,
        "fsync_interval": 256,
        "recover_seconds": recover_seconds,
    }


# -- part 3: thread vs process shard backends ---------------------------------


def ingest_batched(service, entries, chunk: int = BATCH) -> None:
    """Chunked token-materializing ingestion (retire after last use)."""
    last_use: dict[str, int] = {}
    for index, (_event, symbols) in enumerate(entries):
        for symbol in symbols.values():
            last_use[symbol] = index
    tokens: dict = {}
    batch = []
    for index, (event, symbols) in enumerate(entries):
        params = {}
        for name, symbol in symbols.items():
            token = tokens.get(symbol)
            if token is None:
                token = symbol if symbol.startswith("v:") else ReplayToken(symbol)
                tokens[symbol] = token
            params[name] = token
        batch.append((event, params))
        if len(batch) >= chunk:
            service.emit_batch(batch)
            batch.clear()
        for symbol in symbols.values():
            if last_use[symbol] == index:
                tokens.pop(symbol, None)
    if batch:
        service.emit_batch(batch)


def bench_backend(entries, mode: str) -> dict:
    service = MonitorService(
        UNSAFEITER.make().silence(),
        shards=SHARDS,
        gc="coenable",
        propagation="eager",  # CPU-bound: full scans on every parameter death
        mode=mode,
        keep_verdict_log=False,
    )
    def ingest_and_drain():
        ingest_batched(service, entries)
        service.drain()

    _, seconds = timed_call(ingest_and_drain)
    stats = service.stats_for("UnsafeIter")
    verdicts = sum(stats.verdicts.values())
    service.close()
    return {
        "mode": mode,
        "shards": SHARDS,
        "seconds": seconds,
        "events_per_second": len(entries) / seconds if seconds else 0.0,
        "verdict_events": verdicts,
        "monitors_created": stats.monitors_created,
    }


def run(scale: float, seed: "int | None" = None) -> dict:
    entries = build_trace(scale, seed)
    print(f"workload: bloat x{scale} -> {len(entries)} events")

    snapshot_report = bench_snapshot(entries)
    print(
        f"snapshot: {snapshot_report['snapshot_bytes']:,} bytes in "
        f"{snapshot_report['snapshot_seconds']*1e3:.1f} ms, restore "
        f"{snapshot_report['restore_seconds']*1e3:.1f} ms (equivalence verified)"
    )

    wal_report = bench_wal(entries)
    print(
        f"wal: {wal_report['append_events_per_second']:,.0f} appends/s, "
        f"recovery in {wal_report['recover_seconds']*1e3:.1f} ms"
    )

    backends = [bench_backend(entries, mode) for mode in ("thread", "process")]
    for row in backends:
        print(
            f"{row['mode']:>7} x{row['shards']}: {row['events_per_second']:>10,.0f} ev/s"
            f"  ({row['seconds']:.2f}s, {row['monitors_created']} monitors)"
        )
    thread_row = next(row for row in backends if row["mode"] == "thread")
    process_row = next(row for row in backends if row["mode"] == "process")
    if thread_row["monitors_created"] != process_row["monitors_created"]:
        raise AssertionError("backends diverged on monitor accounting")
    speedup = thread_row["seconds"] / process_row["seconds"]
    cpu_count = os.cpu_count() or 1
    print(
        f"headline: process backend {speedup:.2f}x vs thread backend "
        f"on {cpu_count} core(s)"
        + ("" if cpu_count > 1 else "  [single core: < 1x is expected]")
    )
    return {
        "benchmark": "persist",
        "workload": "bloat (unsafe-iterator)",
        "scale": scale,
        "trace_events": len(entries),
        "cpu_count": cpu_count,
        "multicore": cpu_count > 1,
        "snapshot": snapshot_report,
        "wal": wal_report,
        "backends": backends,
        "process_speedup_vs_thread": speedup,
        "expected_speedup_gt_1": cpu_count > 1,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 0.5)",
    )
    parser.add_argument("--out", default="BENCH_persist.json", help="JSON report path")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default: profile's baked seed)")
    args = parser.parse_args()
    report = run(args.scale, args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"-> {args.out}")


if __name__ == "__main__":
    main()
