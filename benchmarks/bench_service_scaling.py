"""Sharded-service scaling: event throughput vs shard count.

Measures ``MonitorService`` ingestion throughput on the unsafe-iterator
workload (UNSAFEITER over the ``bloat`` DaCapo analog — the paper's
pathological leak case) for 1, 2 and 4 shards, in two engine regimes:

* ``eager_full`` propagation (the Tracematches-style cost profile, kept as
  the ablation regime since PR 3's targeted eager propagation): every
  parameter death triggers full scans of the engine's structures, so
  per-event cost grows with *engine state*.  Sharding divides that state —
  anchor routing keeps each collection's slices on one shard and sticky
  routing keeps anchor-free ``next`` traffic off the other shards — so
  throughput rises superlinearly with shard count on one core.  This is
  the headline number: **>= 2x at 4 shards**.  (The default ``eager``
  regime no longer full-scans per boundary — see
  ``benchmarks/bench_dispatch.py`` — so sharding no longer buys it a
  single-core speedup; that is a feature.)
* ``lazy`` propagation (the paper's design): per-event cost is already
  O(1) in engine state, so on a single core sharding buys no speedup —
  expect ~0.8-1.0x (routing overhead).  The row is reported to keep the
  claim honest; with real parallelism the lazy regime is where worker
  threads/processes would earn their keep.

The run is deterministic end to end: the workload trace is recorded once
(symbolic identities) and ingested by every configuration via
``ingest_symbolic`` with ``retire_after_last_use=True``, so parameter
deaths — the GC driver — happen during ingestion exactly as in live
traffic.  The benchmark also asserts the verdict multiset is identical
across all shard counts (the service's determinism guarantee).

Run directly (writes ``BENCH_service.json`` for the perf trajectory)::

    PYTHONPATH=src python benchmarks/bench_service_scaling.py
    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_service_scaling.py --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
from collections import Counter

from repro.bench.harness import best_of_n, timed_call
from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.properties import UNSAFEITER
from repro.service import MonitorService, ingest_symbolic

SHARD_COUNTS = (1, 2, 4)
PROPAGATIONS = ("eager_full", "lazy")
REPEATS = 2


def build_trace(scale: float, seed: "int | None" = None) -> list[tuple[str, dict[str, str]]]:
    profile = WORKLOADS["bloat"].scaled(scale).reseeded(seed)
    return record_workload_events(profile, [UNSAFEITER])


def run_config(
    entries: list[tuple[str, dict[str, str]]], shards: int, propagation: str
) -> dict:
    """Best-of-``REPEATS`` timing (fresh service per repeat); the verdict
    multiset and created-monitor count must agree across repeats."""

    def repeat():
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=shards,
            gc="coenable",
            propagation=propagation,
            mode="inline",
        )
        _, elapsed = timed_call(
            ingest_symbolic, service, entries, retire_after_last_use=True
        )
        verdicts = Counter(
            (record.spec_name, record.category) for record in service.verdicts()
        )
        stats = service.stats_for("UnsafeIter")
        service.close()
        return elapsed, (tuple(sorted(verdicts.items())), stats.monitors_created)

    run = best_of_n(
        repeat, REPEATS, cell=f"service/{propagation}-x{shards}"
    )
    multiset, monitors_created = run.identity
    return {
        "shards": shards,
        "propagation": propagation,
        "events": len(entries),
        "seconds": run.seconds,
        "events_per_second": len(entries) / run.seconds if run.seconds else 0.0,
        "verdicts": sum(count for _key, count in multiset),
        "monitors_created": monitors_created,
        "spread_seconds": run.spread(),
    }


def run_matrix(scale: float, seed: "int | None" = None) -> dict:
    entries = build_trace(scale, seed)
    results = []
    verdict_counts: set[int] = set()
    for propagation in PROPAGATIONS:
        for shards in SHARD_COUNTS:
            cell = run_config(entries, shards, propagation)
            base = next(
                (
                    row["events_per_second"]
                    for row in results
                    if row["propagation"] == propagation and row["shards"] == 1
                ),
                cell["events_per_second"],
            )
            cell["speedup_vs_1_shard"] = cell["events_per_second"] / base if base else 0.0
            results.append(cell)
            verdict_counts.add(cell["verdicts"])
            print(
                f"{propagation:>5} shards={shards}: "
                f"{cell['events_per_second']:>10,.0f} ev/s  "
                f"({cell['seconds']:.2f}s, {cell['speedup_vs_1_shard']:.2f}x, "
                f"{cell['verdicts']} verdicts)"
            )
    if len(verdict_counts) != 1:
        raise AssertionError(
            f"verdict counts diverged across configurations: {verdict_counts}"
        )
    eager_4 = next(
        row
        for row in results
        if row["propagation"] == "eager_full" and row["shards"] == 4
    )
    return {
        "benchmark": "service_scaling",
        "workload": "bloat (unsafe-iterator)",
        "property": "unsafeiter",
        "scale": scale,
        "trace_events": len(entries),
        "interpreter": interpreter_info(),
        "results": results,
        "headline_speedup_eager_4_shards": eager_4["speedup_vs_1_shard"],
        "verdicts_identical_across_configs": True,
    }


def interpreter_info() -> dict:
    """Which Python produced the numbers — the CI matrix includes a
    free-threaded (PEP 703) leg, whose artifact is distinguishable from the
    with-GIL legs only by this stamp."""
    import platform
    import sys

    gil_probe = getattr(sys, "_is_gil_enabled", None)
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "free_threading": (not gil_probe()) if gil_probe is not None else False,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        help="workload scale factor (default: REPRO_BENCH_SCALE or 0.5)",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json", help="JSON report path"
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default: profile's baked seed)")
    parser.add_argument(
        "--note", action="append", default=[],
        help="free-text note(s) recorded in the report (the free-threaded "
        "CI leg stamps its smoke result here)",
    )
    args = parser.parse_args()
    report = run_matrix(args.scale, args.seed)
    if args.note:
        report["notes"] = args.note
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    headline = report["headline_speedup_eager_4_shards"]
    print(f"\nheadline: eager 4-shard speedup {headline:.2f}x -> {args.out}")


if __name__ == "__main__":
    main()
