"""Shared benchmark helpers.

Benchmarks mirror the paper's evaluation protocol (Section 5.1): each cell
weaves a property onto the substrate, runs a DaCapo-analog workload, and
compares against the unwoven baseline.  ``BENCH_SCALE`` keeps a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range; raise it
(environment variable ``REPRO_BENCH_SCALE``) for fuller tables.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.bench.workloads import WORKLOADS, run_workload
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import SYSTEMS, MonitoringEngine

#: Scale factor applied to every workload in the benchmark suite.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


def make_monitored_runner(workload: str, property_keys, system: str, scale: float = None):
    """Build (run_callable, engine, teardown) for one monitored cell."""
    if isinstance(property_keys, str):
        property_keys = [property_keys]
    profile = WORKLOADS[workload].scaled(scale if scale is not None else BENCH_SCALE)
    props = [ALL_PROPERTIES[key] for key in property_keys]
    specs = [prop.make().silence() for prop in props]
    gc_kind, propagation = SYSTEMS[system]
    engine = MonitoringEngine(specs, gc=gc_kind, propagation=propagation)
    from repro.instrument.aspects import Weaver

    weaver = Weaver(engine)
    for prop in props:
        prop.instrument(engine, weaver)

    def run():
        gc.collect()
        run_workload(profile)

    def teardown():
        weaver.unweave()
        gc.collect()
        engine.flush_gc()

    return run, engine, teardown


def make_baseline_runner(workload: str, scale: float = None):
    profile = WORKLOADS[workload].scaled(scale if scale is not None else BENCH_SCALE)

    def run():
        gc.collect()
        run_workload(profile)

    return run


@pytest.fixture
def bench_scale():
    return BENCH_SCALE
