"""Checkpoint & crash recovery: durable parametric monitoring.

Demonstrates the :mod:`repro.persist` subsystem end to end:

1. wrap an UNSAFEITER engine in a :class:`~repro.persist.DurableEngine` —
   every event is appended to a segmented write-ahead log *before*
   dispatch, and :meth:`checkpoint` writes a CRC-guarded snapshot of the
   full engine state (monitor FSM states, parameter bindings as symbolic
   ref IDs, disable knowledge, statistics);
2. kill the process mid-stream (here: simply abandon the engine without
   closing it — no flush, no goodbye).  The crash takes every live
   parameter object with it;
3. recover from disk: last intact snapshot + WAL suffix replay rebuilds
   the engine (pre-crash objects come back as weak-referenceable stand-in
   tokens), and the service keeps monitoring *new* traffic with full
   accounting continuity — the combined run matches an uninterrupted one.

Run:  python examples/checkpoint_restore_demo.py
"""

import gc
import tempfile

from repro import MonitoringEngine
from repro.properties import UNSAFEITER
from repro.persist import DurableEngine, checkpoint_files, wal_segments


class Token:
    """A weak-referenceable stand-in for a program object."""

    __slots__ = ("name", "__weakref__")

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


def main() -> None:
    directory = tempfile.mkdtemp(prefix="repro-persist-")

    # Pre-crash objects (these die with the crashed process) ...
    c1, i1, i2 = Token("c1"), Token("i1"), Token("i2")
    before_checkpoint = [
        ("create", {"c": c1, "i": i1}),
        ("create", {"c": c1, "i": i2}),
        ("update", {"c": c1}),
    ]
    after_checkpoint = [
        ("next", {"i": i1}),  # -> match: i1 outlived an update (Figure 3)
    ]
    # ... and the traffic a restarted service would see afterwards.
    def fresh_traffic(c, i):
        return [
            ("create", {"c": c, "i": i}),
            ("update", {"c": c}),
            ("next", {"i": i}),  # -> match: same pattern on the new pair
        ]

    print("== uninterrupted reference run ==")
    reference: list[str] = []
    engine = MonitoringEngine(
        UNSAFEITER.make().silence(),
        gc="coenable",
        on_verdict=lambda p, c, m: reference.append(f"{p.spec_name}:{c}"),
    )
    for event, params in before_checkpoint + after_checkpoint:
        engine.emit(event, **params)
    for event, params in fresh_traffic(Token("c2"), Token("i3")):
        engine.emit(event, **params)
    print(f"  verdicts: {reference}")

    print("\n== durable run, killed mid-stream ==")
    live: list[str] = []
    durable = DurableEngine(
        UNSAFEITER.make().silence(),
        directory,
        gc="coenable",
        fsync_interval=1,  # demo: make every event durable immediately
        on_verdict=lambda p, c, m: live.append(f"{p.spec_name}:{c}"),
    )
    for event, params in before_checkpoint:
        durable.emit(event, **params)
    path = durable.checkpoint()
    print(f"  checkpointed after {len(before_checkpoint)} events -> "
          f"{path.rsplit('/', 1)[1]}")
    for event, params in after_checkpoint:
        durable.emit(event, **params)
    print(f"  live verdicts so far: {live}")
    print("  ... crash (no close, no flush; every live object is lost)")
    del durable, c1, i1, i2  # the process "dies"
    gc.collect()
    print(
        f"  on disk: {len(wal_segments(directory))} WAL segment(s), "
        f"{len(checkpoint_files(directory))} checkpoint(s)"
    )

    print("\n== recovery: last snapshot + suffix replay ==")
    replayed: list[str] = []
    recovered, tokens = DurableEngine.recover(
        UNSAFEITER.make().silence(),
        directory,
        on_verdict=lambda p, c, m: replayed.append(f"{p.spec_name}:{c}"),
    )
    stats = recovered.engine.stats_for("UnsafeIter")
    print(
        f"  rebuilt: {stats.events} events accounted, "
        f"{stats.monitors_created} monitors created, "
        f"{len(tokens)} pre-crash objects as stand-in tokens, "
        f"re-fired suffix verdicts: {replayed}"
    )

    # The restarted service keeps monitoring new traffic seamlessly.
    suffix_verdicts = len(replayed)
    for event, params in fresh_traffic(Token("c2"), Token("i3")):
        recovered.emit(event, **params)
    recovered.close()
    continued = replayed[suffix_verdicts:]
    final = recovered.engine.stats_for("UnsafeIter")
    print(f"  continued with fresh traffic: E={final.events}, "
          f"M={final.monitors_created}, new verdicts: {continued}")

    reference_stats = engine.stats_for("UnsafeIter")
    assert final.events == reference_stats.events
    assert final.monitors_created == reference_stats.monitors_created
    # Verdict continuity: what the crashed process saw live, plus what the
    # recovered process produced on new traffic, equals the uninterrupted
    # run (the re-fired suffix verdicts are re-deliveries of live ones).
    assert live + continued == reference
    print("\nrecovered run matches the uninterrupted run: state survived the crash.")


if __name__ == "__main__":
    main()
