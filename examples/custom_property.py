"""Writing and weaving your own parametric property.

Two ways to define a property the library does not ship:

1. in the RV specification language — here a two-parameter resource
   protocol ("a connection must be opened on a pool before queries, and a
   closed connection must stay quiet"), monitored with the ERE plugin;
2. as raw Python — an arbitrary monitor wrapped in
   :func:`repro.formalism.raw.functional_template`, which is all the
   formalism-independent runtime needs (the paper's Definition 8).

Both are woven onto an ordinary Python class with the aspect layer.

Run:  python examples/custom_property.py
"""

from repro import MonitoringEngine, compile_spec
from repro.core.events import EventDefinition
from repro.formalism.raw import functional_template
from repro.instrument import Weaver, after_returning, before
from repro.spec.ast import HandlerDecl
from repro.spec.compiler import CompiledProperty


# --- the program under monitoring (knows nothing about any of this) --------


class ConnectionPool:
    def connect(self):
        return Connection(self)


class Connection:
    def __init__(self, pool):
        self.pool = pool
        self.closed = False

    def query(self, sql):
        return f"rows({sql})"

    def close(self):
        self.closed = True


# --- way 1: the specification language --------------------------------------

# Match the *violation* directly (use after close).  Matching violations is
# the idiomatic style: with a @fail goal on the positive pattern, partial
# slices (e.g. the <conn>-only slice, which never sees connect<p, conn>)
# fail trivially and the handler gets noisy.
SAFE_CONNECTION = """
SafeConnection(p, conn) {
  event connect(p, conn)
  event query(conn)
  event close(conn)

  ere: connect query* close (query | close)
  @match "connection used after close!"
}
"""


def pointcuts():
    return [
        after_returning(ConnectionPool, "connect", event="connect",
                        bind={"p": "target", "conn": "result"}),
        before(Connection, "query", event="query", bind={"conn": "target"}),
        before(Connection, "close", event="close", bind={"conn": "target"}),
    ]


def demo_spec_language():
    print("== specification-language property ==")
    spec = compile_spec(SAFE_CONNECTION)
    engine = MonitoringEngine(spec, system="rv")
    with Weaver(engine).weave(pointcuts()):
        pool = ConnectionPool()
        good = pool.connect()
        good.query("select 1")
        good.close()

        bad = pool.connect()
        bad.close()
        bad.query("select 2")     # query after close: the @fail handler fires
    print(f"   {engine.stats_for('SafeConnection')}")


# --- way 2: a raw Python monitor --------------------------------------------


def demo_raw_plugin():
    print("\n== raw-Python property (no formalism at all) ==")
    # "at most 3 outstanding queries per connection before a close" — the
    # kind of quantitative rule none of the shipped formalisms expresses.
    template = functional_template(
        transition=lambda n, e: 0 if e == "close" else n + (1 if e == "query" else 0),
        verdict=lambda n: "violation" if n > 3 else "?",
        initial=0,
        alphabet={"connect", "query", "close"},
        categories={"violation"},
    )
    prop = CompiledProperty(
        spec_name="QueryBudget",
        formalism="raw",
        template=template,
        definition=EventDefinition({"connect": {"p", "conn"},
                                    "query": {"conn"},
                                    "close": {"conn"}}),
        goal=frozenset({"violation"}),
        handlers=(HandlerDecl("violation", "more than 3 queries without a close!"),),
    )
    engine = MonitoringEngine(prop, gc="coenable")
    with Weaver(engine).weave(pointcuts()):
        conn = ConnectionPool().connect()
        for index in range(5):     # the 4th query fires the handler
            conn.query(f"select {index}")
    print(f"   {engine.stats_for('QueryBudget')}")


if __name__ == "__main__":
    demo_spec_language()
    demo_raw_plugin()
