"""Side-by-side GC strategy comparison on a DaCapo-analog workload.

Runs the bloat analog under all four configurations and prints a
Figure 9/10-shaped mini-table: runtime, peak live monitors, and the
E/M/FM/CM statistics.  This is the `python -m repro.bench` machinery in
about thirty lines — use it as the template for your own experiments.

Run:  python examples/gc_comparison.py  [scale]
"""

import sys

from repro.bench.harness import run_cell

SYSTEMS = (
    ("none", "no monitor GC at all"),
    ("mop", "JavaMOP: all parameters dead"),
    ("rv", "RV: coenable sets, lazy (this paper)"),
    ("tm", "Tracematches analog: state-indexed, eager"),
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    print(f"workload: bloat analog at scale {scale}; property: UNSAFEITER\n")
    header = f"{'system':8s} {'time':>8s} {'overhead':>9s} {'peak':>7s} " \
             f"{'E':>7s} {'M':>6s} {'FM':>6s} {'CM':>6s}"
    print(header)
    print("-" * len(header))
    baseline = None
    for system, _blurb in SYSTEMS:
        cell = run_cell("bloat", "unsafeiter", system, scale=scale,
                        original_seconds=baseline)
        baseline = cell.original_seconds
        totals = cell.totals()
        print(
            f"{system:8s} {cell.monitored_seconds:7.3f}s {cell.overhead_pct:8.0f}% "
            f"{cell.peak_live_monitors:7d} {totals['E']:7d} {totals['M']:6d} "
            f"{totals['FM']:6d} {totals['CM']:6d}"
        )
    print()
    for system, blurb in SYSTEMS:
        print(f"  {system:5s} — {blurb}")


if __name__ == "__main__":
    main()
