"""Dynamic properties: register → monitor → unregister on a live service.

A `MonitorService` starts with one property, ingests live traffic, gains a
second property *mid-stream* (`register_property` — every shard switches
behind a barrier, between the same two events), keeps monitoring, then
retires the first property (`unregister_property` — its runtime is
quiesced, its statistics folded into the service totals, its indexing
state dropped).  No restart, no lost events.

Run::

    PYTHONPATH=src python examples/hot_reload_demo.py [--workload bloat]

With ``--workload`` the demo doubles as the CI registry-ops smoke: the
traffic is a recorded DaCapo-analog event stream (default: the paper's
pathological ``bloat``), and the invariants are asserted, exiting
non-zero on violation.
"""

from __future__ import annotations

import argparse

from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.properties import ALL_PROPERTIES
from repro.service import MonitorService, ingest_symbolic


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="bloat",
                        choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default: profile's baked seed)")
    args = parser.parse_args()

    # Record one symbolic event stream covering both properties' events.
    profile = WORKLOADS[args.workload].scaled(args.scale).reseeded(args.seed)
    entries = record_workload_events(profile, ["unsafeiter", "hasnext"])
    third = len(entries) // 3
    print(f"{args.workload} stream: {len(entries)} events, "
          f"registry ops at {third} and {2 * third}")

    service = MonitorService(
        ALL_PROPERTIES["unsafeiter"].make().silence(),
        shards=args.shards, gc="coenable", mode="thread",
    )
    tokens: dict = {}

    # Phase 1 — only UNSAFEITER is loaded; HASNEXT events are dropped.
    ingest_symbolic(service, entries, retire_after_last_use=True,
                    stop=third, tokens=tokens)
    service.drain()
    print(f"phase 1  epoch={service.registry_epoch}  "
          f"UnsafeIter E={service.stats_for('UnsafeIter').events}")

    # Phase 2 — hot-load HASNEXT (fsm + ltl) while traffic flows.
    indexes = service.register_property(ALL_PROPERTIES["hasnext"])
    print(f"registered HasNext into slots {indexes} "
          f"(epoch {service.registry_epoch})")
    ingest_symbolic(service, entries, retire_after_last_use=True,
                    start=third, stop=2 * third, tokens=tokens)
    service.drain()
    hasnext_mid = service.stats_for("HasNext", "fsm").events
    print(f"phase 2  HasNext/fsm E={hasnext_mid}")
    assert hasnext_mid > 0, "hot-loaded property saw no events"

    # Phase 3 — retire UNSAFEITER under load; HASNEXT keeps monitoring.
    unsafe_final = service.stats_for("UnsafeIter").events
    service.unregister_property("UnsafeIter/ere")
    print(f"unregistered UnsafeIter (epoch {service.registry_epoch})")
    ingest_symbolic(service, entries, retire_after_last_use=True,
                    start=2 * third, tokens=tokens)
    service.drain()

    stats = {f"{spec}/{form}": s for (spec, form), s in service.stats().items()}
    assert stats["UnsafeIter/ere"].events == unsafe_final, \
        "a retired property kept counting events"
    assert stats["HasNext/fsm"].events > hasnext_mid, \
        "surviving property stopped monitoring"
    verdicts = service.verdict_multiset()
    service.close()

    # The retired property's monitors are all gone once their parameter
    # objects retired with the stream.
    retired = stats["UnsafeIter/ere"]
    assert retired.live_monitors == 0, \
        f"unregister leaked {retired.live_monitors} monitors"

    print("\nfinal statistics (retired properties included):")
    for name, s in sorted(stats.items()):
        print(f"  {name:>16}: E={s.events:>6} M={s.monitors_created:>5} "
              f"CM={s.monitors_collected:>5} live={s.live_monitors}")
    print(f"verdict categories: "
          f"{sorted({key[2] for key in verdicts})} "
          f"({sum(verdicts.values())} verdicts)")
    print("hot reload OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
