"""Live monitoring: TASKLOOP on real asyncio programs.

TASKLOOP catches the fire-and-forget bug: a task spawned on a loop that
never runs to completion before the loop closes.  ``asyncio.run`` hides
the failure — it cancels pending tasks during shutdown — but the monitor
distinguishes ``task_cancelled`` from ``task_done`` and still reports the
abandonment.

The property's instrumentation is a *weave hook* (not a declarative
pointcut): it patches the ``BaseEventLoop.create_task`` funnel and
attaches a done-callback per task — the seam every task construction
flows through.

Run:  PYTHONPATH=src python examples/live_asyncio_demo.py
"""

import asyncio

from repro import LiveSession


async def fetch(label: str, delay: float) -> str:
    await asyncio.sleep(delay)
    return f"{label}: done"


async def main_coro() -> None:
    awaited = asyncio.create_task(fetch("awaited", 0.01))
    print(await awaited)
    # Fire-and-forget: nobody awaits this one, the loop shutdown kills it.
    asyncio.create_task(fetch("abandoned", 10.0))


def main() -> None:
    session = LiveSession(properties=["taskloop"], gc="coenable")
    with session:
        asyncio.run(main_coro())
        stats = session.engine.stats_for("TaskLoop")
        print(f"tasks observed: {stats.monitors_created}, "
              f"abandonments reported: {stats.verdicts.get('match', 0)}")
        assert stats.verdicts.get("match") == 1


if __name__ == "__main__":
    main()
