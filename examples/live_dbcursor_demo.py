"""Live monitoring: CURSORSAFE on a real sqlite3 database.

``sqlite3``'s classes are C types, so there is nothing to monkey-patch —
instead the *data-access layer* (the realistic seam: applications route
DB traffic through helper functions) is woven with
:class:`~repro.instrument.live.TraceWeaver` function pointcuts: on 3.12
they ride :pep:`669` ``sys.monitoring``, on 3.11 ``sys.settrace``.  The
DAO code itself is completely unmodified.

Executing on a cursor after its cursor — or its connection — was closed
is reported by the CURSORSAFE monitor before sqlite3 raises.

Run:  PYTHONPATH=src python examples/live_dbcursor_demo.py
"""

import sqlite3

from repro import LiveSession
from repro.instrument.live import on_call, on_return


# -- the application's (unmodified) data-access layer ----------------------

def open_cursor(conn: sqlite3.Connection) -> sqlite3.Cursor:
    return conn.cursor()


def run_query(cur: sqlite3.Cursor, sql: str, *args: object) -> sqlite3.Cursor:
    return cur.execute(sql, args)


def close_cursor(cur: sqlite3.Cursor) -> None:
    cur.close()


def close_connection(conn: sqlite3.Connection) -> None:
    conn.close()


# -- the monitored run -----------------------------------------------------

def main() -> None:
    session = LiveSession(properties=["cursorsafe"], gc="coenable")
    with session:
        session.weave_functions([
            on_return(open_cursor, "cur_open", {"c": "arg:conn", "k": "result"}),
            on_call(run_query, "cur_exec", {"k": "arg:cur"}),
            on_call(close_cursor, "cur_close", {"k": "arg:cur"}),
            on_call(close_connection, "conn_close", {"c": "arg:conn"}),
        ])

        conn = sqlite3.connect(":memory:")
        cur = open_cursor(conn)
        run_query(cur, "create table notes (body text)")
        run_query(cur, "insert into notes values (?)", "hello")
        close_cursor(cur)
        try:
            run_query(cur, "select * from notes")  # cursor already closed
        except sqlite3.ProgrammingError as exc:
            print("sqlite error (after the monitor already reported):", exc)

        other = open_cursor(conn)
        close_connection(conn)
        try:
            run_query(other, "select * from notes")  # connection closed
        except sqlite3.ProgrammingError as exc:
            print("sqlite error (after the monitor already reported):", exc)

        stats = session.engine.stats_for("CursorSafe")
        print(f"violations reported: {stats.verdicts.get('error', 0)}")
        assert stats.verdicts.get("error") == 2


if __name__ == "__main__":
    main()
