"""Live monitoring: EXECUTOR on real thread pools.

The EXECUTOR property's default pointcuts weave
``concurrent.futures.ThreadPoolExecutor`` directly: creation, submit and
shutdown (including the implicit shutdown of a ``with`` exit) emit
parametric events, and submitting to a shut-down pool is reported by the
monitor before ``RuntimeError`` surfaces.

This demo also records the run to a tracelog *with death markers* and
replays it into a fresh engine — demonstrating that a live execution can
be re-monitored offline with identical results (the equivalence the live
layer is tested on).

Run:  PYTHONPATH=src python examples/live_executor_demo.py
"""

import io
from concurrent.futures import ThreadPoolExecutor

from repro import LiveSession, MonitoringEngine
from repro.properties import LIVE_PROPERTIES
from repro.runtime.tracelog import replay


def main() -> None:
    trace = io.StringIO()
    session = LiveSession(properties=["executor"], gc="coenable", record=trace)
    with session:
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(pow, n, 2) for n in range(4)]
            print("squares:", [f.result() for f in futures])
        try:
            pool.submit(pow, 5, 2)  # the pool is shut down
        except RuntimeError as exc:
            print("runtime error (after the monitor already reported):", exc)
        live_stats = session.engine.stats_for("ExecutorSafe")

    # Offline: re-monitor the recorded trace (death markers included).
    offline = MonitoringEngine(
        LIVE_PROPERTIES["executor"].make().silence(), gc="coenable"
    )
    replay(trace.getvalue().splitlines(), offline)
    offline_stats = offline.stats_for("ExecutorSafe")
    print(f"live verdicts:   {dict(live_stats.verdicts)}")
    print(f"replay verdicts: {dict(offline_stats.verdicts)}")
    assert live_stats.verdicts == offline_stats.verdicts


if __name__ == "__main__":
    main()
