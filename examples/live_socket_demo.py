"""Live monitoring: SOCKETUSE on real sockets.

Monitors a real ``socket.socketpair()`` conversation through the live
instrumentation layer: the SOCKETUSE property's default pointcuts are
woven into ``socket.socket`` itself, so ordinary socket calls emit the
parametric events — and sending on a closed socket is reported by the
monitor *before* the OS raises.

The demo also shows the weakref-driven side of the story: when the
sockets are dropped, the interpreter's GC reports their deaths and the
engine reclaims the monitors (the CM column of the paper's Figure 10).

Run:  PYTHONPATH=src python examples/live_socket_demo.py
"""

import gc
import socket

from repro import LiveSession


def converse() -> None:
    left, right = socket.socketpair()
    left.sendall(b"ping")
    print("received:", right.recv(16))
    left.close()
    right.close()
    try:
        left.sendall(b"pong")  # use after close: the monitor fires first
    except OSError as exc:
        print("OS error (after the monitor already reported):", exc)


def main() -> None:
    session = LiveSession(properties=["socketuse"], gc="coenable")
    with session:
        converse()
        engine = session.engine
        stats = engine.stats_for("SocketUse")
        print(f"monitors created: {stats.monitors_created}")
        gc.collect()                 # the sockets died inside converse()
        session.flush_deaths()
        engine.flush_gc()
        gc.collect()
        print(f"monitors reclaimed after socket death: {stats.monitors_collected}")
        assert stats.verdicts.get("error") == 1


if __name__ == "__main__":
    main()
