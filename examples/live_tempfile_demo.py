"""Live monitoring: TEMPDIR on real temporary directories.

Class pointcuts on ``tempfile.TemporaryDirectory`` (a pure-Python class)
observe creation and cleanup; the ``dir_use`` event comes from the
application's own path-resolution helper, annotated once with the
:func:`repro.instrument.live.emits` decorator — it only reports while a
session is active, and costs a plain wrapper call otherwise.

Resolving a path under a directory that was already cleaned up is the
classic stale-tempdir bug; the monitor reports it even though the
filesystem call itself may appear to "work" (or fail much later).

Run:  PYTHONPATH=src python examples/live_tempfile_demo.py
"""

import os
import tempfile

from repro import LiveSession, emits


@emits("dir_use", bind={"d": "arg:tmp"})
def path_in(tmp: tempfile.TemporaryDirectory, name: str) -> str:
    """The application's helper for files inside its scratch directory."""
    return os.path.join(tmp.name, name)


def main() -> None:
    session = LiveSession(properties=["tempdir"], gc="coenable")
    with session:
        scratch = tempfile.TemporaryDirectory()
        with open(path_in(scratch, "data.txt"), "w") as handle:
            handle.write("scratch data")
        scratch.cleanup()

        stale = path_in(scratch, "late.txt")  # use after cleanup!
        print("stale path handed out:", stale)
        print("exists?", os.path.exists(os.path.dirname(stale)))

        stats = session.engine.stats_for("TempDirSafe")
        print(f"violations reported: {stats.verdicts.get('error', 0)}")
        assert stats.verdicts.get("error") == 1


if __name__ == "__main__":
    main()
