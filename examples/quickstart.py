"""Quickstart: monitor the HASNEXT typestate on a real iterator.

Reproduces Figures 1 and 2 of the paper end to end:

1. write the HASNEXT property in the RV specification language, with both
   the FSM and the LTL formalisms side by side (as the paper does for
   demonstration);
2. weave its events onto the Java-style collection substrate;
3. misuse an iterator and watch both handlers fire.

Run:  python examples/quickstart.py
"""

from repro import MonitoringEngine, compile_spec
from repro.instrument import MonitoredCollection, MonitoredIterator, Weaver, after_returning, before

HASNEXT = """
HasNext(i) {
  event hasnexttrue(i)
  event hasnextfalse(i)
  event next(i)

  fsm:
    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    none    [ hasnextfalse -> none  next -> error ]
    error   [ ]
  @error "FSM: improper Iterator use found!"

  ltl: [](next => (*)hasnexttrue)
  @violation "LTL: improper Iterator use found!"
}
"""


def main() -> None:
    spec = compile_spec(HASNEXT)
    engine = MonitoringEngine(spec, system="rv")

    pointcuts = [
        after_returning(MonitoredIterator, "has_next", event="hasnexttrue",
                        bind={"i": "target"},
                        condition=lambda ctx: ctx.result is True),
        after_returning(MonitoredIterator, "has_next", event="hasnextfalse",
                        bind={"i": "target"},
                        condition=lambda ctx: ctx.result is False),
        before(MonitoredIterator, "next", event="next", bind={"i": "target"}),
    ]

    with Weaver(engine).weave(pointcuts):
        print("-- well-behaved iteration (no output expected) --")
        collection = MonitoredCollection(["a", "b", "c"])
        iterator = collection.iterator()
        while iterator.has_next():
            iterator.next()

        print("-- calling next() without checking hasNext() --")
        reckless = collection.iterator()
        reckless.next()  # both the FSM and the LTL handler fire here

    stats = engine.stats_for("HasNext", "fsm")
    print(f"\nFSM property statistics: {stats}")


if __name__ == "__main__":
    main()
