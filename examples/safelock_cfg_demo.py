"""SAFELOCK: a context-free property over (Lock, Thread) pairs (Figure 4).

Balanced ``acquire``/``release`` nesting inside method ``begin``/``end``
boundaries is not a regular language — this is the property that motivates
RV's formalism independence: the coenable technique still applies (the
grammar-level fixpoint of Section 3), while a state-indexed technique like
Tracematches' cannot, because the monitor state space is unbounded.

Run:  python examples/safelock_cfg_demo.py
"""

from repro import MonitoringEngine
from repro.core.errors import UnsupportedFormalismError
from repro.instrument import MethodBody, MonitoredLock
from repro.properties import SAFELOCK


def balanced_usage() -> None:
    lock = MonitoredLock("db")
    with MethodBody():
        lock.acquire()
        with MethodBody():        # nested method holding the lock again
            lock.acquire()
            lock.release()
        lock.release()


def leaky_usage() -> None:
    lock = MonitoredLock("db")
    body = MethodBody()
    body.enter()
    lock.acquire()
    body.exit()                   # method ends while the lock is held!
    lock.release()


def main() -> None:
    spec = SAFELOCK.make()
    engine = MonitoringEngine(spec, gc="coenable")
    weaver = SAFELOCK.instrument(engine)
    try:
        print("-- balanced nesting (no output expected) --")
        balanced_usage()
        print("-- method exits while holding the lock --")
        leaky_usage()             # the @fail handler fires
    finally:
        weaver.unweave()

    print(f"\nstatistics: {engine.stats_for('SafeLock')}")

    # The paper's Section 3 point, demonstrated: a Tracematches-style
    # state-indexed GC cannot host a context-free property.
    try:
        MonitoringEngine(SAFELOCK.make(), system="tm")
    except UnsupportedFormalismError as exc:
        print(f"\nstate-based GC refused the CFG property, as expected:\n  {exc}")


if __name__ == "__main__":
    main()
