"""Sharded monitoring service: one ingestion front, four engine shards.

Demonstrates the :mod:`repro.service` subsystem:

1. host UNSAFEITER and HASNEXT together behind a 4-shard
   ``MonitorService`` (worker threads, bounded queues, backpressure);
2. inspect the anchor-routing table the service derived statically —
   UNSAFEITER anchors on the collection ``c`` (its ``next`` events follow
   the iterator's learned association), HASNEXT anchors on ``i``;
3. stream events from interleaved producers, then drain and read the
   merged verdict stream and the exact aggregated statistics.

Run:  python examples/service_demo.py
"""

from repro import MonitorService
from repro.properties import HASNEXT, UNSAFEITER


class Token:
    """A weak-referenceable stand-in for a program object."""

    __slots__ = ("name", "__weakref__")

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


def main() -> None:
    service = MonitorService(
        [UNSAFEITER, HASNEXT],  # PaperProperty providers compile on the spot
        shards=4,
        system="rv",
        mode="thread",
        on_verdict=lambda record: print(
            f"  shard {record.shard}: {record.spec_name} -> {record.category} "
            f"{dict(record.binding)}"
        ),
    )

    print("-- routing table --")
    for row in service.describe_routing():
        print(f"  {row['property']:>16}: anchor={row['anchor']}", end="")
        if row["anchor_free_events"]:
            print(
                f", {row['anchor_free_delivery']} delivery for "
                f"{', '.join(row['anchor_free_events'])}"
            )
        else:
            print(" (every event carries the anchor)")

    print("-- streaming two collections' traffic (verdicts appear inline) --")
    with service:
        for serial in range(2):
            collection = Token(f"collection{serial}")
            iterators = [Token(f"iterator{serial}.{n}") for n in range(3)]
            for iterator in iterators:
                service.emit("create", c=collection, i=iterator)
                service.emit("hasnexttrue", i=iterator)
                service.emit("next", i=iterator)
            # Update the collection, then touch an old iterator: UNSAFEITER.
            service.emit("update", c=collection)
            service.emit("next", i=iterators[0])
            # next() without hasNext(): HASNEXT (fsm and ltl logics).
            reckless = Token(f"reckless{serial}")
            service.emit("create", c=collection, i=reckless)
            service.emit("next", i=reckless)
        service.drain()

        print("-- merged statistics (exact across shards) --")
        for (name, formalism), stats in sorted(service.stats().items()):
            print(f"  {name}/{formalism}: {stats}")
        print(f"  total verdicts: {len(service.verdicts())}")


if __name__ == "__main__":
    main()
