"""UNSAFEITER and the paper's monitor-GC headline scenario (Sections 1, 3).

Part 1 catches a real concurrent-modification bug through the woven
UNSAFEITER property (Figure 3).

Part 2 replays the paper's motivating leak: a long-lived collection spawns
thousands of short-lived iterators.  JavaMOP's rule ("collect only when all
bound parameters are dead") retains every monitor because the collection
stays alive; the RV coenable rule flags them as soon as their iterator
dies, because every coenable set of every UNSAFEITER event requires the
iterator to be alive (the worked example of Section 3).

Run:  python examples/unsafe_iterator_demo.py
"""

import gc

from repro import MonitoringEngine
from repro.instrument import MonitoredCollection
from repro.properties import UNSAFEITER


def part_one_catch_the_bug() -> None:
    print("== Part 1: catching a concurrent modification ==")
    spec = UNSAFEITER.make()
    engine = MonitoringEngine(spec, system="rv")
    weaver = UNSAFEITER.instrument(engine)
    try:
        basket = MonitoredCollection(["apple", "banana"])
        iterator = basket.iterator()
        iterator.next()
        basket.add("cherry")      # modified while iterating ...
        iterator.next()           # ... and used again: the handler fires
    finally:
        weaver.unweave()


def part_two_the_leak(system: str) -> None:
    spec = UNSAFEITER.make().silence()
    engine = MonitoringEngine(spec, system=system)
    weaver = UNSAFEITER.instrument(engine)
    try:
        cache = MonitoredCollection(range(10))   # one long-lived collection
        for _round in range(2000):
            iterator = cache.iterator()          # a short-lived iterator
            while iterator.has_next():
                iterator.next()
            del iterator                         # dies young, as in real programs
    finally:
        weaver.unweave()
    gc.collect()
    engine.flush_gc()
    stats = engine.stats_for("UnsafeIter")
    print(f"  {system:4s}: created={stats.monitors_created:5d}  "
          f"flagged={stats.monitors_flagged:5d}  "
          f"collected={stats.monitors_collected:5d}  "
          f"peak live={stats.peak_live_monitors:5d}")


def main() -> None:
    part_one_catch_the_bug()
    print("\n== Part 2: 2000 short-lived iterators on one live collection ==")
    print("  (the paper's Section 1 pathology — compare peak live monitors)")
    for system in ("mop", "rv"):
        part_two_the_leak(system)
    print("\n  mop = JavaMOP rule (all parameters dead);"
          " rv = coenable sets (this paper)")


if __name__ == "__main__":
    main()
