"""repro — a Python reproduction of *Garbage Collection for Monitoring
Parametric Properties* (Jin, Meredith, Griffith, Roșu; PLDI 2011).

The library implements the full RV-system stack from scratch:

* parametric trace slicing and the abstract monitoring algorithm
  (:mod:`repro.core`);
* four specification formalisms — FSM, extended regular expressions,
  past-time LTL, and context-free grammars (:mod:`repro.formalism`);
* the coenable/enable-set static analyses and ALIVENESS formula
  compilation (:mod:`repro.core.coenable`, :mod:`repro.core.aliveness`);
* the RV specification language (:mod:`repro.spec`);
* a monitoring runtime with weak-keyed indexing trees and lazy monitor
  garbage collection (:mod:`repro.runtime`);
* aspect-weaving instrumentation, *live-program* monitoring (weakref-
  driven monitor GC over real Python objects, ``sys.monitoring``/
  ``settrace`` weaving), and a Java-collections substrate
  (:mod:`repro.instrument`);
* the paper's ten properties (:mod:`repro.properties`) and the
  DaCapo-analog benchmark harness (:mod:`repro.bench`);
* a sharded monitoring service with thread, inline, and multiprocess
  shard backends (:mod:`repro.service`);
* checkpoint & recovery — engine snapshots, a write-ahead tracelog, and
  crash recovery by snapshot + suffix replay (:mod:`repro.persist`);
* a dynamic property registry — hot load/unload of properties across the
  engine, the service, and persistence (:mod:`repro.spec.registry`);
* a runtime telemetry plane — exact counters, sampled timers, Prometheus
  exposition, and verdict provenance with WAL-slice replay
  (:mod:`repro.obs`).

Quickstart::

    from repro import MonitoringEngine, compile_spec

    spec = compile_spec('''
        HasNext(i) {
          event hasnexttrue(i)
          event hasnextfalse(i)
          event next(i)
          ltl: [](next => (*)hasnexttrue)
          @violation "improper Iterator use found!"
        }
    ''')
    engine = MonitoringEngine(spec, system="rv")
    engine.emit("next", i=some_iterator)      # fires the violation handler

See README.md and ``examples/`` for more.
"""

from .core.events import EventDefinition, ParametricEvent
from .core.params import EMPTY_BINDING, Binding
from .core.errors import ReproError
from .core import verdicts
from .runtime.engine import SYSTEMS, MonitoringEngine
from .runtime.statistics import MonitorStats
from .spec.compiler import CompiledProperty, CompiledSpec, compile_spec, load_spec
from .spec.registry import PropertyRegistry
from .instrument.aspects import Pointcut, Weaver, after_returning, before
from .instrument.live import LiveSession, TraceWeaver, emits
from .obs.telemetry import Telemetry
from .persist import DurableEngine, restore_engine, snapshot_engine
from .properties import ALL_PROPERTIES, CATALOGUE, EVALUATED_PROPERTIES, LIVE_PROPERTIES
from .service import MonitorService, VerdictRecord

__version__ = "1.0.0"

__all__ = [
    "EventDefinition",
    "ParametricEvent",
    "EMPTY_BINDING",
    "Binding",
    "ReproError",
    "verdicts",
    "SYSTEMS",
    "MonitoringEngine",
    "MonitorStats",
    "CompiledProperty",
    "CompiledSpec",
    "PropertyRegistry",
    "compile_spec",
    "load_spec",
    "Pointcut",
    "Weaver",
    "after_returning",
    "before",
    "LiveSession",
    "TraceWeaver",
    "emits",
    "ALL_PROPERTIES",
    "LIVE_PROPERTIES",
    "CATALOGUE",
    "EVALUATED_PROPERTIES",
    "MonitorService",
    "VerdictRecord",
    "DurableEngine",
    "snapshot_engine",
    "restore_engine",
    "__version__",
]
