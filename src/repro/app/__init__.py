"""The heavy-traffic reference application: a monitored asyncio server.

This package is the repo's macro workload — the role the DaCapo suite
plays in the paper's evaluation.  It contains three pieces:

* :mod:`repro.app.server` — a small, dependency-free asyncio HTTP/1.1
  server (stdlib ``asyncio.start_server``) whose routes exercise real
  resources: sqlite cursors, a thread-pool executor, temporary
  directories, per-connection handler tasks, chunked writes.  The server
  knows nothing about monitoring; its parsing/response milestones are
  ordinary module functions that double as weaving seams.
* :mod:`repro.app.weave` — the instrumentation side: function pointcuts
  mapping those seams onto the protocol-level properties of
  :mod:`repro.properties.protocol` (plus the live-resource catalogue
  properties the routes touch), woven into the **unmodified** server
  through :class:`repro.instrument.live.LiveSession` /
  :class:`~repro.instrument.live.TraceWeaver`.
* :mod:`repro.app.driver` — a seeded load driver opening N concurrent
  keep-alive connections with a deterministic request mix, including
  mid-request disconnects, slowloris-style stalls, and handler errors.

``tests/app/`` proves live-vs-replay and sharded-vs-single equivalence
over this workload; ``benchmarks/bench_app.py`` publishes the standing
overhead/throughput curve (``BENCH_app.json``).
"""

from .driver import DriverConfig, DriverStats, run_driver
from .server import AppServer, ROUTES
from .weave import APP_PROPERTY_KEYS, app_pointcuts, app_specs, weave_app

__all__ = [
    "AppServer",
    "ROUTES",
    "DriverConfig",
    "DriverStats",
    "run_driver",
    "APP_PROPERTY_KEYS",
    "app_pointcuts",
    "app_specs",
    "weave_app",
]
