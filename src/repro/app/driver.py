"""Seeded load driver for the reference app: deterministic heavy traffic.

The driver opens ``connections`` concurrent clients against an
:class:`~repro.app.server.AppServer` and has each perform a fixed number
of request *slots*.  What a slot does — a normal keep-alive request, a
mid-request disconnect, a slowloris-style stall, a handler error
(``/boom``), a response-interleave (``/push``), a task leak (``/leak``) —
is drawn from a per-client ``random.Random`` seeded from ``(seed, client
index)``, so the complete request mix (and therefore the server's verdict
multiset) is a pure function of the configuration.  Slots that kill their
connection (disconnect, stall, push) reconnect for the remaining slots,
which is exactly the connection churn that exercises monitor GC: every
retired connection and request object is a parameter death.

The same ``--seed`` convention as the rest of the repo's benchmarks
(default ``20110604``, the paper's publication date) threads through the
CLI: ``python -m repro.app.driver --connections 50 --requests 20``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["DriverConfig", "DriverStats", "run_driver", "main"]


#: The clean keep-alive routes, cycled per client when a slot is "normal".
NORMAL_ROUTES: tuple[str, ...] = (
    "/", "/items", "/items@post", "/work", "/scratch", "/stream", "/sleep",
)


@dataclass(frozen=True)
class DriverConfig:
    """The load shape.  Every field is part of the deterministic seed.

    The fractions are slot probabilities drawn in a fixed order
    (disconnect, stall, error, push, leak); whatever is left is a normal
    request from :data:`NORMAL_ROUTES`.  ``stall_seconds`` must exceed the
    server's ``read_timeout`` for a stall to deterministically yield 408.
    """

    connections: int = 8
    requests_per_connection: int = 10
    seed: int = 20110604
    disconnect_fraction: float = 0.0
    stall_fraction: float = 0.0
    error_fraction: float = 0.0
    push_fraction: float = 0.0
    leak_fraction: float = 0.0
    stall_seconds: float = 0.3

    def slot_kind(self, rng: random.Random) -> str:
        """Draw one slot's behaviour (one rng.random() call, always)."""
        draw = rng.random()
        for kind, fraction in (
            ("disconnect", self.disconnect_fraction),
            ("stall", self.stall_fraction),
            ("boom", self.error_fraction),
            ("push", self.push_fraction),
            ("leak", self.leak_fraction),
        ):
            if draw < fraction:
                return kind
            draw -= fraction
        return "normal"

    def plan(self, index: int) -> list[str]:
        """Client ``index``'s slot sequence — the driver executes exactly
        this, so tests and benchmarks can re-derive the full request mix
        (and hence the expected verdict multiset) without running it."""
        rng = random.Random(f"{self.seed}:{index}")
        return [self.slot_kind(rng) for _ in range(self.requests_per_connection)]

    def mix(self) -> "dict[str, int]":
        """Slot-kind histogram over the whole run (a pure seed function)."""
        kinds: dict[str, int] = {}
        for index in range(self.connections):
            for kind in self.plan(index):
                kinds[kind] = kinds.get(kind, 0) + 1
        return kinds


@dataclass
class DriverStats:
    """What the load run measured, aggregated over every client."""

    requests: int = 0          # slots that sent a complete request
    responses: int = 0         # complete responses parsed
    disconnects: int = 0       # deliberate mid-request hangups
    stalls: int = 0            # slowloris slots
    duration: float = 0.0      # wall-clock seconds for the whole run
    status_counts: dict[int, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)

    def note_response(self, status: int, latency: float) -> None:
        """Count one parsed response and its wall-clock latency."""
        self.responses += 1
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        self.latencies.append(latency)

    def percentile(self, fraction: float) -> float:
        """Latency percentile in seconds (0.0 with no samples)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def p50_ms(self) -> float:
        """Median latency in milliseconds."""
        return self.percentile(0.50) * 1e3

    @property
    def p99_ms(self) -> float:
        """Tail (99th percentile) latency in milliseconds."""
        return self.percentile(0.99) * 1e3

    @property
    def rps(self) -> float:
        """Completed responses per second of wall time."""
        return self.responses / self.duration if self.duration > 0 else 0.0

    def summary(self) -> dict:
        """The JSON-friendly projection (what bench_app publishes)."""
        return {
            "requests": self.requests,
            "responses": self.responses,
            "disconnects": self.disconnects,
            "stalls": self.stalls,
            "duration_s": round(self.duration, 6),
            "rps": round(self.rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
        }


# ---------------------------------------------------------------------------
# One client.
# ---------------------------------------------------------------------------


class _Client:
    """One logical client: a sequence of slots over (re)connections."""

    def __init__(self, host: str, port: int, config: DriverConfig,
                 index: int, stats: DriverStats):
        self.host = host
        self.port = port
        self.config = config
        self.index = index
        #: Payload randomness is a separate str-seeded stream so consuming
        #: it cannot shift the slot plan (str seeding hashes the seed text —
        #: stable across runs and interpreter versions).
        self.payload_rng = random.Random(f"{config.seed}:{index}:payload")
        self.stats = stats
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.route_cycle = 0

    async def run(self) -> None:
        try:
            for kind in self.config.plan(self.index):
                await getattr(self, f"_slot_{kind}")()
        finally:
            await self._close()

    # -- transport ---------------------------------------------------------

    async def _ensure_connected(self) -> None:
        if self.writer is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def _close(self) -> None:
        if self.writer is not None:
            writer, self.writer, self.reader = self.writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_response(self) -> "tuple[int, bytes] | None":
        """Parse one HTTP/1.1 response; None on connection loss."""
        try:
            status_line = await self.reader.readline()
            if not status_line:
                return None
            status = int(status_line.split()[1])
            length = 0
            close_after = False
            while True:
                header = await self.reader.readline()
                if not header:
                    return None
                if header == b"\r\n":
                    break
                name, _, value = header.decode("latin-1").partition(":")
                name = name.strip().lower()
                if name == "content-length":
                    length = int(value)
                elif name == "connection" and value.strip() == "close":
                    close_after = True
            body = await self.reader.readexactly(length) if length else b""
            if close_after:
                await self._close()
            return status, body
        except (ConnectionError, asyncio.IncompleteReadError, ValueError,
                IndexError):
            return None

    async def _request(self, route: str, body: bytes = b"") -> "int | None":
        """Send one complete request; returns the status (None if lost)."""
        await self._ensure_connected()
        path, _, method_tag = route.partition("@")
        method = method_tag.upper() or "GET"
        head = (
            f"{method} {path} HTTP/1.1\r\nhost: app\r\n"
            f"content-length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        started = time.perf_counter()
        self.stats.requests += 1
        try:
            self.writer.write(head + body)
            await self.writer.drain()
        except (ConnectionError, OSError):
            await self._close()
            return None
        outcome = await self._read_response()
        if outcome is None:
            await self._close()
            return None
        status, _payload = outcome
        self.stats.note_response(status, time.perf_counter() - started)
        return status

    # -- slot behaviours ---------------------------------------------------

    async def _slot_normal(self) -> None:
        route = NORMAL_ROUTES[self.route_cycle % len(NORMAL_ROUTES)]
        self.route_cycle += 1
        body = b""
        if route.endswith("@post"):
            body = f"item-{self.payload_rng.randrange(1_000_000)}".encode()
        await self._request(route, body)

    async def _slot_boom(self) -> None:
        await self._request("/boom")

    async def _slot_leak(self) -> None:
        await self._request("/leak")

    async def _slot_push(self) -> None:
        """/push interleaves a second response; close before reusing."""
        status = await self._request("/push")
        if status is not None:
            await self._read_response()  # swallow the unsolicited push
        await self._close()

    async def _slot_disconnect(self) -> None:
        """Send half a request, then vanish (mid-request hangup)."""
        await self._ensure_connected()
        self.stats.disconnects += 1
        try:
            self.writer.write(b"GET /items HTTP/1.1\r\nhost: app\r\n")
            await self.writer.drain()
        except (ConnectionError, OSError):
            pass
        await self._close()

    async def _slot_stall(self) -> None:
        """Slowloris: send the request line, then hold the socket."""
        await self._ensure_connected()
        self.stats.stalls += 1
        try:
            self.writer.write(b"GET /sleep HTTP/1.1\r\nhost: app\r\n")
            await self.writer.drain()
            await asyncio.sleep(self.config.stall_seconds)
            # The server has 408'd (or soon will); drain whatever arrived.
            await self._read_response()
        except (ConnectionError, OSError):
            pass
        await self._close()


async def run_driver(host: str, port: int, config: DriverConfig) -> DriverStats:
    """Drive one full load run; returns the aggregated stats."""
    stats = DriverStats()
    clients = [
        _Client(host, port, config, index, stats)
        for index in range(config.connections)
    ]
    started = time.perf_counter()
    await asyncio.gather(*(client.run() for client in clients))
    stats.duration = time.perf_counter() - started
    return stats


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


def main(argv: "Sequence[str] | None" = None) -> int:
    """Drive an external server — or, with no ``--port``, a private one."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="target port (0: start a private AppServer)")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--requests", type=int, default=10,
                        help="request slots per connection")
    parser.add_argument("--seed", type=int, default=20110604)
    parser.add_argument("--disconnect-fraction", type=float, default=0.0)
    parser.add_argument("--stall-fraction", type=float, default=0.0)
    parser.add_argument("--error-fraction", type=float, default=0.0)
    parser.add_argument("--push-fraction", type=float, default=0.0)
    parser.add_argument("--leak-fraction", type=float, default=0.0)
    parser.add_argument("--stall-seconds", type=float, default=0.3)
    options = parser.parse_args(argv)
    config = DriverConfig(
        connections=options.connections,
        requests_per_connection=options.requests,
        seed=options.seed,
        disconnect_fraction=options.disconnect_fraction,
        stall_fraction=options.stall_fraction,
        error_fraction=options.error_fraction,
        push_fraction=options.push_fraction,
        leak_fraction=options.leak_fraction,
        stall_seconds=options.stall_seconds,
    )

    async def _run() -> DriverStats:
        if options.port:
            return await run_driver(options.host, options.port, config)
        from .server import AppServer

        async with AppServer(host=options.host) as server:
            return await run_driver(server.host, server.port, config)

    stats = asyncio.run(_run())
    print(json.dumps(stats.summary(), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
