"""A dependency-free asyncio HTTP/1.1 server: the monitored real program.

The server is deliberately ordinary application code — ``asyncio.
start_server``, a per-connection read loop, a route table — and it never
imports the monitoring stack.  What makes it *weavable* is structure, not
hooks: every protocol milestone (request begun, headers parsed, body
read, request finished, response started/ended, handler task tracked/
retired, connection ended) is an ordinary module-level function, because
parsing and bookkeeping naturally factor that way.  The instrumentation
layer (:mod:`repro.app.weave`) attaches
:class:`~repro.instrument.live.TraceWeaver` function pointcuts to exactly
those seams; run unwoven, they are plain function calls.

Routes exercise real resources so the live-resource catalogue properties
have something to watch: sqlite cursors (``/items``), a shared
``ThreadPoolExecutor`` (``/work``), per-request ``TemporaryDirectory``
scratch space (``/scratch``), multi-chunk writes (``/stream``) and an
async pause (``/sleep``).  Three routes carry **deliberate defects** the
protocol properties must catch online:

* ``/boom`` — the handler raises; the error path sends a 500 *and*
  finishes the request a second time in the ``finally`` (the classic
  double-cleanup bug): a REQLIFE ``error``.
* ``/push`` — after the real response, the handler pushes an unsolicited
  second response whose start overlaps the first exchange's finalization:
  a CONNREUSE ``error`` (drivers close the connection after this route).
* ``/leak`` — spawns a background task on behalf of the connection and
  never awaits it, so the connection can close first: a HANDLERLEAK
  ``match`` per leaked task.

Everything else is clean, so verdict multisets are a pure function of the
driver's seeded request mix.
"""

from __future__ import annotations

import asyncio
import itertools
import sqlite3
import tempfile
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable

__all__ = [
    "Request",
    "Connection",
    "AppServer",
    "RouteSpec",
    "ROUTES",
    "HandlerError",
]

#: HTTP responses are tiny and hand-rolled; the protocol subset is exactly
#: what the driver speaks (request line, headers, optional sized body).
_CRLF = b"\r\n"


class HandlerError(Exception):
    """A route handler failed; the connection loop turns this into a 500."""


class Request:
    """One HTTP exchange's identity object — the ``r`` of REQLIFE.

    Weak-referenceable on purpose: the request object dies when its
    exchange is finished and the handler frame unwinds, which is what
    retires its lifecycle monitor under the live death ledger.
    """

    __slots__ = (
        "serial", "method", "path", "query", "headers", "body",
        "keep_alive", "finished", "__weakref__",
    )

    def __init__(self, serial: int):
        self.serial = serial
        self.method = ""
        self.path = ""
        self.query = ""
        self.headers: dict[str, str] = {}
        self.body = b""
        self.keep_alive = True
        self.finished = False

    def __repr__(self) -> str:
        return f"Request(#{self.serial} {self.method} {self.path!r})"


class Connection:
    """One accepted client connection — the ``c`` of CONNREUSE/HANDLERLEAK."""

    __slots__ = (
        "serial", "reader", "writer", "tasks", "requests_served",
        "responses_open", "closed", "__weakref__",
    )

    def __init__(self, serial: int, reader: Any, writer: Any):
        self.serial = serial
        self.reader = reader
        self.writer = writer
        #: Handler tasks spawned on behalf of this connection, still live.
        self.tasks: set[asyncio.Task] = set()
        self.requests_served = 0
        #: Responses started but not yet ended (should never exceed 1).
        self.responses_open = 0
        self.closed = False

    def __repr__(self) -> str:
        return f"Connection(#{self.serial}, served={self.requests_served})"


# ---------------------------------------------------------------------------
# Protocol seams.  Ordinary bookkeeping functions — and, because they are
# plain module-level functions, exactly what TraceWeaver can instrument.
# ---------------------------------------------------------------------------

_serials = itertools.count(1)


def open_connection(reader: Any, writer: Any) -> Connection:
    """A client connected; mint its identity object."""
    return Connection(next(_serials), reader, writer)


def close_connection(conn: Connection) -> None:
    """The connection is over (clean close, error, or timeout)."""
    conn.closed = True


def begin_request(conn: Connection) -> Request:
    """A request line arrived on ``conn``; mint the exchange's identity."""
    conn.requests_served += 1
    return Request(next(_serials))


def request_headers(request: Request, method: str, target: str,
                    headers: dict[str, str]) -> None:
    """The header block is complete; fill in the parsed request."""
    request.method = method
    request.path, _, request.query = target.partition("?")
    request.headers = headers
    request.keep_alive = headers.get("connection", "keep-alive") != "close"


def request_body(request: Request, body: bytes) -> None:
    """The sized body was read in full."""
    request.body = body


def finish_request(request: Request) -> None:
    """The exchange is over (response sent, aborted, or timed out)."""
    request.finished = True


def begin_response(conn: Connection, request: "Request | None",
                   status: int) -> None:
    """The server starts writing a response head onto ``conn``."""
    conn.responses_open += 1


def end_response(conn: Connection) -> None:
    """The response's last byte was handed to the transport."""
    conn.responses_open -= 1


def spawn_task(conn: Connection, coro: Awaitable, name: str) -> asyncio.Task:
    """Spawn a handler task on behalf of ``conn`` and track it."""
    task = asyncio.get_running_loop().create_task(coro, name=name)
    conn.tasks.add(task)
    task.add_done_callback(task_finished)
    return task


def task_finished(task: asyncio.Task) -> None:
    """Done callback for every tracked handler task."""
    # The connection that owns the task removes it lazily; a done task in
    # the set is harmless (awaiting or cancelling it is a no-op).


# -- database seams (sqlite3's classes are C types: CURSORSAFE events come
#    from weaving these functions, the cursor-using data-access layer) ------


def open_cursor(db: sqlite3.Connection) -> sqlite3.Cursor:
    """Open one cursor on the app database."""
    return db.cursor()


def run_query(cursor: sqlite3.Cursor, sql: str, args: tuple = ()) -> list:
    """Execute one statement and fetch its rows."""
    cursor.execute(sql, args)
    return cursor.fetchall()


def close_cursor(cursor: sqlite3.Cursor) -> None:
    """Release one cursor."""
    cursor.close()


def close_db(db: sqlite3.Connection) -> None:
    """Close the app database connection."""
    db.close()


def resolve_scratch(scratch: tempfile.TemporaryDirectory, name: str) -> Path:
    """Resolve a path inside a scratch directory (a TEMPDIR ``dir_use``)."""
    return Path(scratch.name) / name


# ---------------------------------------------------------------------------
# The server.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RouteSpec:
    """One route of the reference app, as documented in docs/app-scenario.md."""

    path: str
    summary: str
    #: Catalogue property keys whose events this route exercises.
    properties: tuple[str, ...]


#: The route table — the single source of truth the documentation's route
#: table is asserted against (tests/docs/test_app_scenario_doc.py).
ROUTES: tuple[RouteSpec, ...] = (
    RouteSpec("/", "hello world: the minimal request/response cycle",
              ("reqlife", "connreuse")),
    RouteSpec("/items", "sqlite SELECT (GET) / INSERT (POST) through a "
                        "fresh cursor per request",
              ("reqlife", "connreuse", "cursorsafe")),
    RouteSpec("/work", "checksum computed on the shared ThreadPoolExecutor, "
                       "awaited through a tracked handler task",
              ("reqlife", "connreuse", "executor", "handlerleak")),
    RouteSpec("/scratch", "per-request TemporaryDirectory: create, write a "
                          "file inside it, clean up",
              ("reqlife", "connreuse", "tempdir")),
    RouteSpec("/stream", "response body written in several chunks with "
                         "drains in between",
              ("reqlife", "connreuse")),
    RouteSpec("/sleep", "asyncio pause before responding (latency tail)",
              ("reqlife", "connreuse")),
    RouteSpec("/boom", "DEFECT: handler raises; the 500 path finishes the "
                       "request twice (double-cleanup bug)",
              ("reqlife", "connreuse")),
    RouteSpec("/push", "DEFECT: unsolicited second response pushed before "
                       "the first exchange is finalized",
              ("reqlife", "connreuse")),
    RouteSpec("/leak", "DEFECT: background task spawned for the connection "
                       "and never awaited",
              ("reqlife", "connreuse", "handlerleak")),
)


class AppServer:
    """The reference asyncio application under monitoring.

    ``read_timeout`` bounds every read of a request's bytes — a stalled
    (slowloris) client is answered with 408 and disconnected.  All
    resources (listener, sqlite database, executor, scratch dir) are
    created in :meth:`start` and torn down in :meth:`close`, so a
    monitoring session activated *before* ``start()`` observes their full
    lifecycles.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 read_timeout: float = 5.0):
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self._server: asyncio.AbstractServer | None = None
        self._db: sqlite3.Connection | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.connections_handled = 0
        self.requests_handled = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AppServer":
        """Create the resources and start listening; resolves the port."""
        self._db = sqlite3.connect(":memory:")
        cursor = open_cursor(self._db)
        run_query(cursor, "CREATE TABLE items (id INTEGER PRIMARY KEY, val TEXT)")
        run_query(cursor, "INSERT INTO items (val) VALUES ('seed')")
        self._db.commit()
        close_cursor(cursor)
        self._executor = ThreadPoolExecutor(max_workers=2)
        self._scratch = tempfile.TemporaryDirectory(prefix="repro-app-")
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop listening and release every resource (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None
        if self._db is not None:
            close_db(self._db)
            self._db = None

    async def __aenter__(self) -> "AppServer":
        return await self.start()

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()

    # -- the connection loop ----------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn = open_connection(reader, writer)
        self.connections_handled += 1
        self._conn_tasks.add(asyncio.current_task())
        try:
            while True:
                request = await self._read_request(conn)
                if request is None:
                    break
                keep = await self._respond(conn, request)
                self.requests_handled += 1
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the peer vanished mid-exchange; nothing left to say
        except asyncio.CancelledError:
            pass  # server shutdown: treat as an orderly connection end
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            close_connection(conn)
            for task in list(conn.tasks):
                if not task.done():
                    task.cancel()
            conn.tasks.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, conn: Connection) -> "Request | None":
        """Read one full request; None ends the connection loop.

        The request identity exists from the moment its request line
        arrives; every early exit (stall timeout, mid-request disconnect,
        malformed bytes) finishes the exchange before returning, so
        aborted requests still close their lifecycle.
        """
        try:
            line = await asyncio.wait_for(
                conn.reader.readline(), timeout=self.read_timeout
            )
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: close quietly
        if not line or not line.strip():
            return None  # clean EOF (or bare CRLF before close)
        request = begin_request(conn)
        try:
            parts = line.decode("latin-1").split()
            if len(parts) < 2:
                raise ValueError(f"malformed request line: {line!r}")
            method, target = parts[0], parts[1]
            headers: dict[str, str] = {}
            while True:
                header = await asyncio.wait_for(
                    conn.reader.readline(), timeout=self.read_timeout
                )
                if not header:
                    raise asyncio.IncompleteReadError(b"", None)
                if header == _CRLF:
                    break
                name, _, value = header.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            request_headers(request, method, target, headers)
            length = int(headers.get("content-length", "0"))
            if length:
                body = await asyncio.wait_for(
                    conn.reader.readexactly(length), timeout=self.read_timeout
                )
                request_body(request, body)
            return request
        except asyncio.TimeoutError:
            # Slowloris: the client stalled mid-request.  Finish the
            # exchange, say 408, and hang up.
            finish_request(request)
            await self._write_simple(conn, request, 408, b"request timeout\n",
                                     close=True)
            return None
        except (ValueError, asyncio.IncompleteReadError):
            finish_request(request)  # mid-request disconnect / garbage
            return None

    async def _respond(self, conn: Connection, request: Request) -> bool:
        """Dispatch one parsed request; returns keep-alive."""
        try:
            try:
                handler = self._handlers().get(request.path, self._not_found)
                await handler(conn, request)
            except HandlerError as exc:
                # DELIBERATE DEFECT (REQLIFE): the error path finishes the
                # exchange before replying... and the finally below will
                # finish it again — the double-cleanup bug the lifecycle
                # property exists to catch.
                finish_request(request)
                await self._write_simple(conn, request, 500,
                                         f"handler failed: {exc}\n".encode())
            except Exception as exc:  # the *clean* 500 path: finish once
                await self._write_simple(conn, request, 500,
                                         f"internal error: {exc}\n".encode())
        finally:
            finish_request(request)
        return request.keep_alive

    # -- response plumbing -------------------------------------------------

    async def _write_simple(self, conn: Connection, request: "Request | None",
                            status: int, body: bytes,
                            close: bool = False) -> None:
        begin_response(conn, request, status)
        head = (
            f"HTTP/1.1 {status} X\r\ncontent-length: {len(body)}\r\n"
            f"connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        ).encode("latin-1")
        conn.writer.write(head + body)
        await conn.writer.drain()
        end_response(conn)

    # -- route handlers ----------------------------------------------------

    def _handlers(self) -> dict[str, Callable]:
        return {
            "/": self._hello,
            "/items": self._items,
            "/work": self._work,
            "/scratch": self._scratch_route,
            "/stream": self._stream,
            "/sleep": self._sleep,
            "/boom": self._boom,
            "/push": self._push,
            "/leak": self._leak,
        }

    async def _not_found(self, conn: Connection, request: Request) -> None:
        await self._write_simple(conn, request, 404, b"no such route\n")

    async def _hello(self, conn: Connection, request: Request) -> None:
        await self._write_simple(conn, request, 200, b"hello\n")

    async def _items(self, conn: Connection, request: Request) -> None:
        cursor = open_cursor(self._db)
        try:
            if request.method == "POST":
                value = request.body.decode("utf-8", "replace") or "empty"
                run_query(cursor, "INSERT INTO items (val) VALUES (?)", (value,))
                self._db.commit()
                body = f"stored #{cursor.lastrowid}\n".encode()
            else:
                rows = run_query(
                    cursor, "SELECT id, val FROM items ORDER BY id DESC LIMIT 5"
                )
                body = "".join(f"{i}:{v}\n" for i, v in rows).encode()
        finally:
            close_cursor(cursor)
        await self._write_simple(conn, request, 200, body)

    async def _work(self, conn: Connection, request: Request) -> None:
        payload = (request.query or "payload").encode()
        loop = asyncio.get_running_loop()
        job = loop.run_in_executor(self._executor, zlib.crc32, payload * 64)
        audit = spawn_task(conn, self._audit(request), f"audit-{request.serial}")
        checksum = await job
        await audit  # the well-behaved pattern: tracked work is awaited
        conn.tasks.discard(audit)
        await self._write_simple(conn, request, 200, f"{checksum:08x}\n".encode())

    async def _audit(self, request: Request) -> None:
        """Per-request bookkeeping task (the tracked-work shape)."""
        await asyncio.sleep(0)

    async def _scratch_route(self, conn: Connection, request: Request) -> None:
        # Held explicitly (not as a with-statement) so the directory object
        # — the identity TEMPDIR monitors — is nameable for resolve_scratch.
        scratch = tempfile.TemporaryDirectory(prefix="req-")
        try:
            path = resolve_scratch(scratch, "note.txt")
            path.write_text(request.query or "scratch")
            size = path.stat().st_size
        finally:
            scratch.cleanup()
        await self._write_simple(conn, request, 200, f"wrote {size}\n".encode())

    async def _stream(self, conn: Connection, request: Request) -> None:
        chunks = [b"chunk-%d\n" % index for index in range(4)]
        begin_response(conn, request, 200)
        head = (
            f"HTTP/1.1 200 X\r\ncontent-length: "
            f"{sum(len(chunk) for chunk in chunks)}\r\n"
            "connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        conn.writer.write(head)
        for chunk in chunks:
            conn.writer.write(chunk)
            await conn.writer.drain()
        end_response(conn)

    async def _sleep(self, conn: Connection, request: Request) -> None:
        await asyncio.sleep(min(0.05, self.read_timeout / 4))
        await self._write_simple(conn, request, 200, b"rested\n")

    async def _boom(self, conn: Connection, request: Request) -> None:
        raise HandlerError("boom route always fails")

    async def _push(self, conn: Connection, request: Request) -> None:
        # DELIBERATE DEFECT (CONNREUSE): an unsolicited push response is
        # started before the real exchange is finalized, interleaving two
        # responses on one connection.  Drivers close after this route, so
        # the stray bytes never corrupt a later exchange's parse.
        body = b"pushed-main\n"
        begin_response(conn, request, 200)
        head = (
            f"HTTP/1.1 200 X\r\ncontent-length: {len(body)}\r\n"
            "connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        conn.writer.write(head + body)
        await conn.writer.drain()
        push = b"HTTP/1.1 200 X\r\ncontent-length: 5\r\n\r\npush\n"
        begin_response(conn, None, 200)
        conn.writer.write(push)
        await conn.writer.drain()
        end_response(conn)
        end_response(conn)

    async def _leak(self, conn: Connection, request: Request) -> None:
        # DELIBERATE DEFECT (HANDLERLEAK): fire-and-forget.  Nothing awaits
        # this task; if the connection closes first, the pair matches.
        spawn_task(conn, asyncio.sleep(3600), f"leaked-{request.serial}")
        await self._write_simple(conn, request, 200, b"leaked\n")
