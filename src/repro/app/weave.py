"""Weaving the reference app — the server itself stays unmodified.

Everything the monitors see comes from pointcuts installed here onto the
server's protocol seams (the plain module-level functions of
:mod:`repro.app.server`): :class:`~repro.instrument.live.TraceWeaver`
function pointcuts for the request/response/task/cursor milestones, plus
the live-resource catalogue's own class pointcuts (executor, tempdir) for
the resources the routes touch.  The server module never imports any of
this; run without a session, the seams are ordinary function calls.

The one convention that keeps things composable: :func:`weave_app` is the
*only* weaving entry point for the app scenario.  Build the engine or
service yourself, wrap it in a bare ``LiveSession(sink)``, and call
``weave_app(session)`` — passing the app properties to the session
constructor as well would weave the class pointcuts twice.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..instrument.live import FunctionPointcut, on_call, on_return
from ..properties import CATALOGUE
from . import server

__all__ = ["APP_PROPERTY_KEYS", "app_specs", "app_pointcuts", "weave_app"]


#: The property set the app scenario monitors by default: the three
#: protocol properties plus the resource-catalogue ones its routes
#: exercise.  SOCKETUSE and TASKLOOP are deliberately absent — they would
#: observe asyncio's own internals (selector sockets, every loop task),
#: drowning the scenario in events that are not the app's.
APP_PROPERTY_KEYS: tuple[str, ...] = (
    "reqlife", "connreuse", "handlerleak", "cursorsafe", "executor", "tempdir",
)


def app_specs(keys: Iterable[str] = APP_PROPERTY_KEYS) -> list[Any]:
    """The catalogue property objects for an engine/service constructor."""
    return [CATALOGUE[key] for key in keys]


def app_pointcuts(
    keys: Iterable[str] = APP_PROPERTY_KEYS,
) -> list[FunctionPointcut]:
    """Function pointcuts mapping the server's seams onto property events.

    Only the pointcuts feeding the selected ``keys`` are produced, so a
    session monitoring a property subset pays for exactly that subset.
    """
    wanted = set(keys)
    pointcuts: list[FunctionPointcut] = []
    if "reqlife" in wanted:
        pointcuts += [
            on_return(server.begin_request, "req_start", {"r": "result"}),
            on_call(server.request_headers, "req_headers", {"r": "arg:request"}),
            on_call(server.request_body, "req_body", {"r": "arg:request"}),
            on_call(server.finish_request, "req_close", {"r": "arg:request"}),
        ]
    if "connreuse" in wanted:
        pointcuts += [
            on_call(server.begin_response, "resp_start", {"c": "arg:conn"}),
            on_call(server.end_response, "resp_end", {"c": "arg:conn"}),
        ]
    if "handlerleak" in wanted:
        pointcuts += [
            on_return(server.spawn_task, "task_track",
                      {"c": "arg:conn", "t": "result"}),
            on_call(server.task_finished, "task_retire", {"t": "arg:task"}),
            on_call(server.close_connection, "conn_end", {"c": "arg:conn"}),
        ]
    if "cursorsafe" in wanted:
        pointcuts += [
            on_return(server.open_cursor, "cur_open",
                      {"c": "arg:db", "k": "result"}),
            on_call(server.run_query, "cur_exec", {"k": "arg:cursor"}),
            on_call(server.close_cursor, "cur_close", {"k": "arg:cursor"}),
            on_call(server.close_db, "conn_close", {"c": "arg:db"}),
        ]
    if "tempdir" in wanted:
        # dir_create / dir_cleanup come from TEMPDIR's class pointcuts
        # (woven below); dir_use is the app's path-resolution seam.
        pointcuts.append(
            on_call(server.resolve_scratch, "dir_use", {"d": "arg:scratch"})
        )
    return pointcuts


def weave_app(session: Any, keys: Iterable[str] = APP_PROPERTY_KEYS) -> Any:
    """Install the app scenario's full instrumentation on ``session``.

    Weaves the selected catalogue properties' default class pointcuts
    (executor/tempdir lifecycles) and the server-seam function pointcuts.
    The session's sink must already know the matching specs
    (:func:`app_specs` with the same ``keys``).  Returns the session.
    """
    keys = tuple(keys)
    for key in keys:
        prop = CATALOGUE[key]
        factory = getattr(prop, "pointcut_factory", None)
        if factory is not None:
            class_pointcuts = factory()
            if class_pointcuts:
                session.weave(class_pointcuts)
    function_pointcuts = app_pointcuts(keys)
    if function_pointcuts:
        session.weave_functions(function_pointcuts)
    return session
