"""Benchmark harness: DaCapo-analog workloads and the Figure 9/10 tables."""

from .harness import CellResult, GridResult, baseline_time, run_cell, run_grid
from .report import render_fig9a, render_fig9b, render_fig10
from .workloads import WORKLOAD_ORDER, WORKLOADS, WorkloadProfile, run_workload

__all__ = [
    "CellResult",
    "GridResult",
    "baseline_time",
    "run_cell",
    "run_grid",
    "render_fig9a",
    "render_fig9b",
    "render_fig10",
    "WORKLOAD_ORDER",
    "WORKLOADS",
    "WorkloadProfile",
    "run_workload",
]
