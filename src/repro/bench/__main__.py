"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.bench fig9a [--scale 0.5] [--workloads bloat,avrora,h2]
    python -m repro.bench fig9b [--tracemalloc]
    python -m repro.bench fig10
    python -m repro.bench all

At scale 1.0 the full grid takes a few minutes; the EXPERIMENTS.md numbers
were produced with the flags recorded there.
"""

from __future__ import annotations

import argparse

from ..properties import ALL_PROPERTIES, EVALUATED_PROPERTIES
from .harness import run_grid
from .report import render_fig9a, render_fig9b, render_fig10
from .workloads import WORKLOAD_ORDER

_DEFAULT_PROPERTIES = tuple(prop.key for prop in EVALUATED_PROPERTIES)


def resolve_property_keys(arg: str) -> list[str]:
    """Resolve the ``--properties`` flag against the registry catalogue.

    Accepts ``all`` (every registered property), ``evaluated`` (the
    Figure 9/10 five), or a comma-separated subset of registry keys —
    unknown keys fail fast with the catalogue instead of a KeyError deep
    inside the harness.  The key list is read straight from
    ``ALL_PROPERTIES`` (``repro.properties.property_registry`` registers
    under exactly these keys) so validating a flag never pays the cost of
    compiling all ten properties.
    """
    known = list(ALL_PROPERTIES)
    if arg == "all":
        return known
    if arg == "evaluated":
        return list(_DEFAULT_PROPERTIES)
    keys = [key for key in arg.split(",") if key]
    unknown = [key for key in keys if key not in known]
    if unknown:
        raise SystemExit(
            f"unknown properties {unknown}; the registry provides: {known} "
            "(or use 'all' / 'evaluated')"
        )
    return keys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument("figure", choices=("fig9a", "fig9b", "fig10", "all"))
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (1.0 = calibrated size)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--workloads", default=",".join(WORKLOAD_ORDER),
                        help="comma-separated DaCapo-analog names")
    parser.add_argument("--properties", default="evaluated",
                        help="comma-separated registry keys, or 'all' / "
                        "'evaluated' (resolved via repro.properties."
                        "property_registry)")
    parser.add_argument("--systems", default="tm,mop,rv")
    parser.add_argument("--dispatch", default="compiled",
                        choices=("reference", "compiled", "codegen"),
                        help="engine dispatch implementation; all three are "
                        "verdict-equivalent, so this only moves the overhead "
                        "numbers (codegen = exec-specialized kernels)")
    parser.add_argument("--all-column", action="store_true",
                        help="add the simultaneous-monitoring ALL column (RV)")
    args = parser.parse_args(argv)

    workloads = args.workloads.split(",")
    properties = resolve_property_keys(args.properties)
    systems = args.systems.split(",")

    grid = run_grid(
        workloads,
        properties,
        systems,
        scale=args.scale,
        repeats=args.repeats,
        include_all_column=args.all_column,
        dispatch=args.dispatch,
    )
    if args.figure in ("fig9a", "all"):
        print("\n== Figure 9(A): percent runtime overhead ==")
        print(render_fig9a(grid, workloads, properties, systems,
                           include_all_column=args.all_column))
    if args.figure in ("fig9b", "all"):
        print("\n== Figure 9(B): peak live monitor instances ==")
        print(render_fig9b(grid, workloads, properties, systems))
    if args.figure in ("fig10", "all"):
        print("\n== Figure 10: monitoring statistics (RV) ==")
        print(render_fig10(grid, workloads, properties, system="rv"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
