"""Benchmark harness: the machinery behind Figures 9(A), 9(B) and 10.

A *cell* of the paper's tables is (workload, property-set, system):

* the workload runs once **unwoven** (the ORIG column of Figure 9) and once
  **woven** with the property's pointcuts feeding a
  :class:`~repro.runtime.engine.MonitoringEngine` configured as one of the
  three systems — ``tm`` (Tracematches analog: state-based GC, eager
  propagation), ``mop`` (JavaMOP analog: all-parameters-dead GC, lazy) and
  ``rv`` (the paper's system: coenable GC, lazy);
* runtime overhead is ``(monitored - original) / original`` in percent
  (Figure 9A);
* memory is both the peak count of simultaneously live monitor instances
  and, optionally, ``tracemalloc`` peak bytes (Figure 9B);
* the engine's E/M/FM/CM counters are Figure 10.

Absolute numbers are not comparable with the paper's (different host, VM,
and substituted workloads); the *shape* — which system wins, roughly by how
much, and where nothing happens — is what the benchmark suite asserts.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from typing import Any, Callable

from ..core.errors import UnsupportedFormalismError
from ..properties import ALL_PROPERTIES, PaperProperty
from ..runtime.engine import SYSTEMS, MonitoringEngine
from ..runtime.statistics import MonitorStats
from .workloads import WORKLOADS, WorkloadProfile, run_workload

__all__ = [
    "CellResult",
    "run_cell",
    "run_grid",
    "GridResult",
    "baseline_time",
    "timed_call",
    "best_of_n",
    "BestOfN",
]


# -- shared timing loops (used by every benchmarks/bench_*.py script) ---------


@dataclass
class BestOfN:
    """The outcome of one best-of-N timing loop."""

    cell: str
    #: The best (minimum) repeat — the number benchmarks report.
    seconds: float
    #: Every repeat's wall time, in run order.
    times: list[float]
    #: The identity payload the repeats agreed on (None when untracked).
    identity: Any = None

    @property
    def max_seconds(self) -> float:
        return max(self.times) if self.times else 0.0

    @property
    def stdev_seconds(self) -> float:
        if len(self.times) < 2:
            return 0.0
        mean = sum(self.times) / len(self.times)
        return (sum((t - mean) ** 2 for t in self.times) / (len(self.times) - 1)) ** 0.5

    def spread(self) -> dict[str, float]:
        """The repeat spread benchmarks persist next to the best number.

        Best-of-N hides run-to-run variance; on shared/noisy hosts that
        variance is often larger than the effect being measured, so the
        recorded JSON carries ``{min, max, stdev}`` seconds alongside the
        reported minimum — a reader can judge whether two rows differ by
        more than the machine's own jitter.
        """
        return {
            "min": self.seconds,
            "max": self.max_seconds,
            "stdev": self.stdev_seconds,
        }


def timed_call(
    fn: Callable[..., Any],
    *args: Any,
    telemetry: Any = None,
    cell: str = "call",
    **kwargs: Any,
) -> tuple[Any, float]:
    """Time one call of ``fn`` after a full host GC; ``(result, seconds)``.

    The ``gc.collect()`` keeps collector debt from a previous repeat out
    of this one's window — the discipline every benchmark's inline timing
    loop used before being deduplicated here.  With ``telemetry`` the
    elapsed time is observed in ``repro_bench_run_seconds{cell=...}``.
    """
    gc.collect()
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        _observe_run(telemetry, cell, elapsed)
    return result, elapsed


def best_of_n(
    repeat: Callable[[], "tuple[float, Any]"],
    repeats: int = 3,
    *,
    cell: str = "cell",
    telemetry: Any = None,
) -> BestOfN:
    """The shared best-of-N loop behind the benchmark scripts.

    ``repeat()`` performs one full measurement — typically timing its
    critical section with :func:`timed_call` — and returns ``(seconds,
    identity)``.  The identity payload (verdict counts, monitors
    created, ...) must be equal across repeats; a divergence raises
    ``AssertionError``, which is how the benchmarks assert determinism
    while they measure.  Every repeat's wall time feeds
    ``repro_bench_run_seconds{cell=...}`` when ``telemetry`` is given;
    the returned :class:`BestOfN` carries the minimum.
    """
    best: float | None = None
    identity: Any = None
    times: list[float] = []
    for index in range(max(1, repeats)):
        elapsed, run_identity = repeat()
        times.append(elapsed)
        if telemetry is not None:
            _observe_run(telemetry, cell, elapsed)
        if index == 0:
            identity = run_identity
        elif identity != run_identity:
            raise AssertionError(
                f"{cell}: repeat diverged: {identity} vs {run_identity}"
            )
        if best is None or elapsed < best:
            best = elapsed
    return BestOfN(cell=cell, seconds=best or 0.0, times=times, identity=identity)


def _observe_run(telemetry: Any, cell: str, elapsed: float) -> None:
    from ..obs.catalogue import declare as _declare_metric

    _declare_metric(telemetry.registry, "repro_bench_run_seconds").labels(
        cell
    ).observe(elapsed)


@dataclass
class CellResult:
    """One (workload, properties, system) measurement."""

    workload: str
    properties: tuple[str, ...]
    system: str
    original_seconds: float
    monitored_seconds: float
    #: (spec name, formalism) -> statistics (Figure 10 counters).
    stats: dict[tuple[str, str], MonitorStats] = field(default_factory=dict)
    peak_live_monitors: int = 0
    tracemalloc_monitored: int | None = None
    tracemalloc_original: int | None = None
    unsupported: bool = False

    @property
    def overhead_pct(self) -> float:
        """Figure 9(A)'s number: percent slowdown over the unwoven run."""
        if self.original_seconds <= 0:
            return 0.0
        return 100.0 * (self.monitored_seconds - self.original_seconds) / self.original_seconds

    def totals(self) -> dict[str, int]:
        """Summed E/M/FM/CM over the cell's properties (the Figure 10 row)."""
        total = {"E": 0, "M": 0, "FM": 0, "CM": 0}
        for stats in self.stats.values():
            row = stats.as_row()
            for key in total:
                total[key] += row[key]
        return total


def _timed_run(profile: WorkloadProfile) -> float:
    return timed_call(run_workload, profile)[1]


def baseline_time(workload: str, scale: float = 1.0, repeats: int = 1) -> float:
    """Best-of-N unwoven runtime for a workload (the ORIG column)."""
    profile = WORKLOADS[workload].scaled(scale)
    return best_of_n(
        lambda: (_timed_run(profile), None), repeats, cell=f"orig/{workload}"
    ).seconds


def run_cell(
    workload: str,
    properties: "str | PaperProperty | Sequence[str | PaperProperty]",
    system: str,
    scale: float = 1.0,
    repeats: int = 1,
    measure_tracemalloc: bool = False,
    original_seconds: float | None = None,
    dispatch: str = "compiled",
) -> CellResult:
    """Measure one cell; ``properties`` may be one key or several ("ALL").

    ``dispatch`` selects the engine's event-dispatch implementation
    (``reference``, ``compiled`` or ``codegen``) — all three are
    verdict-equivalent (tests/runtime/test_dispatch_equivalence.py), so
    the flag only moves the overhead numbers.
    """
    if isinstance(properties, (str, PaperProperty)):
        properties = [properties]
    props: list[PaperProperty] = [
        ALL_PROPERTIES[item] if isinstance(item, str) else item for item in properties
    ]
    profile = WORKLOADS[workload].scaled(scale)
    result = CellResult(
        workload=workload,
        properties=tuple(prop.key for prop in props),
        system=system,
        original_seconds=0.0,
        monitored_seconds=0.0,
    )

    result.original_seconds = (
        original_seconds
        if original_seconds is not None
        else best_of_n(
            lambda: (_timed_run(profile), None), repeats, cell=f"orig/{workload}"
        ).seconds
    )

    gc_kind, propagation = SYSTEMS[system]
    specs = [prop.make().silence() for prop in props]
    try:
        engine = MonitoringEngine(
            specs, gc=gc_kind, propagation=propagation, dispatch=dispatch
        )
    except UnsupportedFormalismError:
        # The Tracematches analog cannot host CFG properties (Section 3).
        result.unsupported = True
        return result

    from ..instrument.aspects import Weaver

    weaver = Weaver(engine)
    for prop in props:
        prop.instrument(engine, weaver)
    try:
        if measure_tracemalloc:
            tracemalloc.start()
        result.monitored_seconds = best_of_n(
            lambda: (_timed_run(profile), None),
            repeats,
            cell=f"{workload}/{system}",
        ).seconds
        if measure_tracemalloc:
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            result.tracemalloc_monitored = peak
    finally:
        weaver.unweave()
    gc.collect()
    engine.flush_gc()
    result.stats = engine.stats()
    result.peak_live_monitors = sum(
        stats.peak_live_monitors for stats in result.stats.values()
    )

    if measure_tracemalloc:
        tracemalloc.start()
        run_workload(profile)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        result.tracemalloc_original = peak
    return result


@dataclass
class GridResult:
    """A full table: workloads x properties x systems."""

    cells: list[CellResult] = field(default_factory=list)

    def cell(self, workload: str, prop_keys: tuple[str, ...], system: str) -> CellResult:
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.properties == prop_keys
                and cell.system == system
            ):
                return cell
        raise KeyError((workload, prop_keys, system))


def run_grid(
    workloads: Iterable[str],
    property_keys: Iterable[str],
    systems: Iterable[str],
    scale: float = 1.0,
    repeats: int = 1,
    include_all_column: bool = False,
    dispatch: str = "compiled",
) -> GridResult:
    """Run the full Figure 9/10 grid.

    The unwoven baseline is measured once per workload and shared across
    that workload's cells, as in the paper's per-benchmark ORIG column.
    With ``include_all_column`` the simultaneous-monitoring "ALL" cells are
    added for the ``rv`` system (the only configuration the paper could run
    them on).
    """
    workloads = list(workloads)
    property_keys = list(property_keys)
    systems = list(systems)
    grid = GridResult()
    for workload in workloads:
        baseline = baseline_time(workload, scale=scale, repeats=repeats)
        for key in property_keys:
            for system in systems:
                grid.cells.append(
                    run_cell(
                        workload,
                        key,
                        system,
                        scale=scale,
                        repeats=repeats,
                        original_seconds=baseline,
                        dispatch=dispatch,
                    )
                )
        if include_all_column:
            grid.cells.append(
                run_cell(
                    workload,
                    property_keys,
                    "rv",
                    scale=scale,
                    repeats=repeats,
                    original_seconds=baseline,
                    dispatch=dispatch,
                )
            )
    return grid
