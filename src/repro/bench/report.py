"""Table rendering in the shape of the paper's Figures 9 and 10."""

from __future__ import annotations

from typing import Iterable, Sequence

from .harness import GridResult

__all__ = ["render_fig9a", "render_fig9b", "render_fig10"]

_SYSTEM_LABEL = {"tm": "TM", "mop": "MOP", "rv": "RV"}


def _format_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_fig9a(
    grid: GridResult,
    workloads: Sequence[str],
    property_keys: Sequence[str],
    systems: Sequence[str] = ("tm", "mop", "rv"),
    include_all_column: bool = False,
) -> str:
    """Figure 9(A): percent runtime overhead per workload x property x system."""
    header = ["bench"]
    for key in property_keys:
        for system in systems:
            header.append(f"{key[:10]}/{_SYSTEM_LABEL.get(system, system)}")
    if include_all_column:
        header.append("ALL/RV")
    rows = []
    for workload in workloads:
        row: list[str] = [workload]
        for key in property_keys:
            for system in systems:
                cell = grid.cell(workload, (key,), system)
                row.append("n/a" if cell.unsupported else f"{cell.overhead_pct:.0f}%")
        if include_all_column:
            cell = grid.cell(workload, tuple(property_keys), "rv")
            row.append(f"{cell.overhead_pct:.0f}%")
        rows.append(row)
    return _format_table(header, rows)


def render_fig9b(
    grid: GridResult,
    workloads: Sequence[str],
    property_keys: Sequence[str],
    systems: Sequence[str] = ("tm", "mop", "rv"),
) -> str:
    """Figure 9(B): peak simultaneously-live monitor instances.

    The paper reports process peak MB; host-process RSS is meaningless for a
    Python reproduction, so the primary metric is the peak count of live
    monitor instances (the quantity the GC technique actually controls),
    with optional tracemalloc bytes when the harness measured them.
    """
    header = ["bench"]
    for key in property_keys:
        for system in systems:
            header.append(f"{key[:10]}/{_SYSTEM_LABEL.get(system, system)}")
    rows = []
    for workload in workloads:
        row = [workload]
        for key in property_keys:
            for system in systems:
                cell = grid.cell(workload, (key,), system)
                if cell.unsupported:
                    row.append("n/a")
                elif cell.tracemalloc_monitored is not None:
                    row.append(
                        f"{cell.peak_live_monitors} ({cell.tracemalloc_monitored // 1024}KiB)"
                    )
                else:
                    row.append(str(cell.peak_live_monitors))
        rows.append(row)
    return _format_table(header, rows)


def render_fig10(
    grid: GridResult,
    workloads: Sequence[str],
    property_keys: Sequence[str],
    system: str = "rv",
) -> str:
    """Figure 10: E / M / FM / CM per workload x property (for one system)."""
    header = ["bench"]
    for key in property_keys:
        for column in ("E", "M", "FM", "CM"):
            header.append(f"{key[:10]}.{column}")
    rows = []
    for workload in workloads:
        row = [workload]
        for key in property_keys:
            cell = grid.cell(workload, (key,), system)
            totals = cell.totals()
            for column in ("E", "M", "FM", "CM"):
                row.append(str(totals[column]))
        rows.append(row)
    return _format_table(header, rows)
