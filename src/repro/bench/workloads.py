"""DaCapo-analog synthetic workloads.

The paper evaluates on DaCapo 9.12 (plus bloat/jython from 2006-10).  We
cannot run Java benchmarks, so each DaCapo program is substituted by a
synthetic workload over the monitored-program substrate
(:mod:`repro.instrument.collections_shim`), calibrated to the *relative*
characteristics the paper reports (Section 5.2 and Figure 10):

* **bloat** — the pathological case: huge numbers of long-lived collections
  spawning short-lived iterators with heavy ``hasNext``/``next`` traffic
  (1.6M collections / 941K iterators / 78M ``hasNext`` calls in the paper);
* **avrora**, **pmd** — many collections and iterators, heavy traffic;
* **h2** — many events but *short-lived* monitors: collections die together
  with their iterators, so no strategy accumulates garbage ("monitor
  instances in h2 have shorter lifetimes");
* **sunflow** — millions of events over very few iterators ("has millions
  of events but does not create as many monitor instances");
* **jython**, **batik**, **fop**, **eclipse**, **luindex**, **lusearch** —
  light-to-moderate activity;
* **tomcat**, **tradebeans**, **tradesoap**, **xalan** — near-zero
  iterator activity (tens of events in the paper).

Workloads know nothing about monitoring: they call the shim APIs exactly
like the benchmarked Java programs call ``java.util``.  Overhead is then
the ratio of woven to unwoven runtime (Figure 9A's methodology).

All randomness is seeded per run — workloads are deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..instrument.collections_shim import (
    MonitoredCollection,
    MonitoredIterator,
    MonitoredMap,
    SynchronizedCollection,
    SynchronizedMap,
)

__all__ = [
    "WorkloadProfile",
    "WORKLOADS",
    "run_workload",
    "IteratorChurnResult",
    "record_workload_events",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs of one synthetic DaCapo analog.

    ``collections`` collections are created over the run, but only
    ``live_window`` of them coexist: when the window slides, the oldest
    collection (and all its iterators) becomes garbage — this is the
    lifetime structure that separates the GC strategies.  Iterators die as
    soon as they are used unless ``leak_iterators`` keeps them alive (never
    used by the shipped profiles; exists for experiments).
    """

    name: str
    collections: int
    live_window: int
    collection_size: int
    iterators_per_collection: int
    steps_per_iterator: int
    #: Probability that the collection is updated after an iterator was
    #: created from it (the UNSAFEITER-interesting interleaving).
    update_probability: float
    #: Fraction of the collections that are map key/value views.
    map_fraction: float = 0.0
    #: Fraction of the collections that are synchronized wrappers.
    sync_fraction: float = 0.0
    #: Extra hasNext-heavy loops over one shared long-lived collection
    #: (sunflow's shape: events without new monitors).
    shared_sweeps: int = 0
    seed: int = 12061

    def scaled(self, scale: float) -> "WorkloadProfile":
        """A proportionally smaller/larger copy (at least one of each)."""

        def s(value: int) -> int:
            return max(1, round(value * scale)) if value else 0

        return WorkloadProfile(
            name=self.name,
            collections=s(self.collections),
            live_window=max(1, min(s(self.collections), self.live_window)),
            collection_size=self.collection_size,
            iterators_per_collection=self.iterators_per_collection,
            steps_per_iterator=self.steps_per_iterator,
            update_probability=self.update_probability,
            map_fraction=self.map_fraction,
            sync_fraction=self.sync_fraction,
            shared_sweeps=s(self.shared_sweeps),
            seed=self.seed,
        )

    def reseeded(self, seed: "int | None") -> "WorkloadProfile":
        """A copy with a different RNG seed (``None`` keeps the baked one).

        Benchmark CLIs thread ``--seed`` through here so a run can be
        reproduced — or deliberately varied — without editing profiles.
        """
        if seed is None:
            return self
        return replace(self, seed=seed)


@dataclass
class IteratorChurnResult:
    """What a run did (sanity numbers for tests, not monitoring stats)."""

    collections_created: int = 0
    iterators_created: int = 0
    next_calls: int = 0
    hasnext_calls: int = 0
    updates: int = 0


def run_workload(profile: WorkloadProfile) -> IteratorChurnResult:
    """Execute one workload over the (possibly woven) shim classes."""
    rng = random.Random(profile.seed)
    result = IteratorChurnResult()
    window: list[MonitoredCollection] = []

    def new_collection() -> MonitoredCollection:
        roll = rng.random()
        if roll < profile.map_fraction:
            backing: MonitoredMap = (
                SynchronizedMap()
                if rng.random() < profile.sync_fraction
                else MonitoredMap()
            )
            for index in range(profile.collection_size):
                backing.put(index, index)
            collection = backing.key_set() if rng.random() < 0.5 else backing.values()
        elif roll < profile.map_fraction + profile.sync_fraction:
            collection = SynchronizedCollection(range(profile.collection_size))
        else:
            collection = MonitoredCollection(range(profile.collection_size))
        result.collections_created += 1
        return collection

    def drive(iterator: MonitoredIterator, budget: int) -> None:
        for _step in range(budget):
            result.hasnext_calls += 1
            if not iterator.has_next():
                break
            result.next_calls += 1
            iterator.next()

    for serial in range(profile.collections):
        collection = new_collection()
        window.append(collection)
        if len(window) > profile.live_window:
            # The oldest collection (and everything hanging off it) dies here.
            window.pop(0)
        for _it in range(profile.iterators_per_collection):
            # Programs keep iterating collections for as long as they live —
            # this is what makes retained dead-iterator monitors *costly* at
            # runtime, not just in memory: every touch of an old collection
            # has to wade through whatever monitors still hang off it.
            target = window[rng.randrange(len(window))]
            iterator = target.iterator()
            result.iterators_created += 1
            drive(iterator, profile.steps_per_iterator)
            if rng.random() < profile.update_probability:
                if hasattr(target, "backing_map"):
                    target.backing_map.put(serial, serial)
                else:
                    target.add(serial)
                result.updates += 1
                # One more access after the update: the UNSAFEITER ending.
                result.hasnext_calls += 1
                if iterator.has_next():
                    result.next_calls += 1
                    iterator.next()
            del iterator  # iterators die young (the paper's leak driver)
    # sunflow-style sweeps: one long-lived collection, very many events.
    if profile.shared_sweeps:
        shared = MonitoredCollection(range(max(8, profile.collection_size)))
        result.collections_created += 1
        for _sweep in range(profile.shared_sweeps):
            iterator = shared.iterator()
            result.iterators_created += 1
            drive(iterator, shared.size() + 1)
            del iterator
    window.clear()
    return result


def record_workload_events(
    profile: WorkloadProfile,
    properties: "list",
) -> list[tuple[str, dict[str, str]]]:
    """Run ``profile`` woven with ``properties`` and capture its events.

    Returns the symbolic event stream — ``(event, {param: symbol})`` pairs
    in emission order, identities preserved — that the workload generates
    for the given properties' pointcuts.  This is the feed for the sharded
    service benchmarks: the same stream can be ingested by services with
    different shard counts (via :func:`repro.service.ingest_symbolic`),
    keeping the monitored traffic bit-identical across configurations.

    ``properties`` holds :class:`~repro.properties.PaperProperty` objects
    or their keys, or a :class:`~repro.spec.registry.PropertyRegistry`
    whose entries carry ``paper`` origins (the benchmark CLI's selection
    form) — the recorded stream then covers exactly the registry's loaded
    properties.
    """
    # Local imports: bench.workloads is otherwise independent of the
    # runtime and property layers (the harness mirrors this pattern).
    import io

    from ..instrument.aspects import Weaver
    from ..properties import ALL_PROPERTIES
    from ..runtime.engine import MonitoringEngine
    from ..runtime.tracelog import TraceRecorder, read_trace
    from ..spec.registry import PropertyRegistry

    if isinstance(properties, PropertyRegistry):
        keys: list[str] = []
        for entry in properties.loaded():
            key = entry.origin.get("key")
            if key is None:
                raise ValueError(
                    f"registry entry {entry.name!r} has no paper origin; "
                    "workload recording needs the property's pointcuts"
                )
            if key not in keys:
                keys.append(key)
        properties = keys
    props = [
        ALL_PROPERTIES[item] if isinstance(item, str) else item for item in properties
    ]
    specs = [prop.make().silence() for prop in props]
    engine = MonitoringEngine(specs, gc="none")
    sink = io.StringIO()
    TraceRecorder(sink).attach(engine)
    weaver = Weaver(engine)
    for prop in props:
        prop.instrument(engine, weaver)
    try:
        run_workload(profile)
    finally:
        weaver.unweave()
    return [
        (entry["event"], entry["params"])
        for entry in read_trace(sink.getvalue().splitlines())
    ]


def _profiles() -> dict[str, WorkloadProfile]:
    """The fifteen DaCapo analogs, calibrated to the paper's proportions.

    Absolute sizes are chosen so the full Figure 9/10 grid runs in minutes
    on a laptop at scale 1.0; what matters — and what the benchmarks
    assert — are the relative magnitudes across workloads and the lifetime
    shapes within each.
    """
    P = WorkloadProfile
    return {
        profile.name: profile
        for profile in (
            # The leak monster: collections far outlive their iterators.
            P("bloat", collections=250, live_window=100, collection_size=6,
              iterators_per_collection=50, steps_per_iterator=2,
              update_probability=0.6),
            # Heavy, with map traffic.
            P("avrora", collections=900, live_window=200, collection_size=5,
              iterators_per_collection=3, steps_per_iterator=6,
              update_probability=0.15, map_fraction=0.3),
            P("pmd", collections=1000, live_window=300, collection_size=5,
              iterators_per_collection=4, steps_per_iterator=6,
              update_probability=0.20, map_fraction=0.2, sync_fraction=0.1),
            # Many events, short-lived everything: window of 1.
            P("h2", collections=1200, live_window=1, collection_size=8,
              iterators_per_collection=4, steps_per_iterator=9,
              update_probability=0.10),
            # Millions of events, hardly any monitors.
            P("sunflow", collections=30, live_window=10, collection_size=12,
              iterators_per_collection=2, steps_per_iterator=6,
              update_probability=0.0, shared_sweeps=2500),
            P("jython", collections=120, live_window=40, collection_size=4,
              iterators_per_collection=2, steps_per_iterator=4,
              update_probability=0.02),
            P("batik", collections=150, live_window=50, collection_size=4,
              iterators_per_collection=2, steps_per_iterator=5,
              update_probability=0.02, map_fraction=0.2),
            P("eclipse", collections=80, live_window=30, collection_size=4,
              iterators_per_collection=1, steps_per_iterator=3,
              update_probability=0.01),
            P("fop", collections=400, live_window=150, collection_size=5,
              iterators_per_collection=3, steps_per_iterator=5,
              update_probability=0.10, map_fraction=0.25),
            P("luindex", collections=60, live_window=20, collection_size=4,
              iterators_per_collection=1, steps_per_iterator=3,
              update_probability=0.0),
            P("lusearch", collections=90, live_window=30, collection_size=4,
              iterators_per_collection=1, steps_per_iterator=4,
              update_probability=0.01),
            # The near-zero-activity quartet.
            P("tomcat", collections=6, live_window=3, collection_size=3,
              iterators_per_collection=1, steps_per_iterator=2,
              update_probability=0.0),
            P("tradebeans", collections=4, live_window=2, collection_size=3,
              iterators_per_collection=1, steps_per_iterator=2,
              update_probability=0.0),
            P("tradesoap", collections=4, live_window=2, collection_size=3,
              iterators_per_collection=1, steps_per_iterator=2,
              update_probability=0.0),
            P("xalan", collections=10, live_window=4, collection_size=3,
              iterators_per_collection=1, steps_per_iterator=2,
              update_probability=0.0, map_fraction=0.3),
        )
    }


#: The fifteen DaCapo-analog workloads, in the paper's table order.
WORKLOADS: dict[str, WorkloadProfile] = _profiles()

#: Paper table order (Figure 9/10 row order).
WORKLOAD_ORDER: tuple[str, ...] = (
    "bloat", "jython", "avrora", "batik", "eclipse", "fop", "h2", "luindex",
    "lusearch", "pmd", "sunflow", "tomcat", "tradebeans", "tradesoap", "xalan",
)
