"""Core theory: parameters, events, slicing, monitors, coenable/enable sets.

This package is self-contained (imports nothing from the rest of the
library) and implements the definitions of Sections 2 and 3 of the paper.
"""

from .aliveness import AlivenessFormula, compile_aliveness
from .coenable import (
    brute_force_coenable,
    brute_force_enable,
    drop_empty_sets,
    lift_to_params,
    param_coenable_sets,
    occurrence_coenable_sets,
    occurrence_enable_sets,
)
from .errors import (
    EngineStateError,
    FormalismError,
    InconsistentEventError,
    IncompatibleBindingError,
    ReproError,
    SpecCompileError,
    SpecSyntaxError,
    UnknownEventError,
    UnknownParameterError,
    UnsupportedFormalismError,
)
from .events import EventDefinition, ParametricEvent
from .monitor import BaseMonitor, MonitorTemplate, run_monitor
from .parametric import AbstractParametricMonitor
from .params import EMPTY_BINDING, Binding
from .slicing import all_slices, informative_bindings, slice_trace
from . import verdicts

__all__ = [
    "AlivenessFormula",
    "compile_aliveness",
    "brute_force_coenable",
    "brute_force_enable",
    "drop_empty_sets",
    "lift_to_params",
    "param_coenable_sets",
    "occurrence_coenable_sets",
    "occurrence_enable_sets",
    "EngineStateError",
    "FormalismError",
    "InconsistentEventError",
    "IncompatibleBindingError",
    "ReproError",
    "SpecCompileError",
    "SpecSyntaxError",
    "UnknownEventError",
    "UnknownParameterError",
    "UnsupportedFormalismError",
    "EventDefinition",
    "ParametricEvent",
    "BaseMonitor",
    "MonitorTemplate",
    "run_monitor",
    "AbstractParametricMonitor",
    "EMPTY_BINDING",
    "Binding",
    "all_slices",
    "informative_bindings",
    "slice_trace",
    "verdicts",
]
