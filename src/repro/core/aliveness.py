"""ALIVENESS formulas — Section 4.2.2 of the paper.

RV statically compiles each event's parameter coenable set into a minimized
boolean formula over per-parameter liveness atoms::

    ALIVENESS(e) = ∨_{S in COENABLE^X(e)} ∧_{x in S} live_x

A monitor instance that was last updated by ``e`` is still *necessary* iff
``ALIVENESS(e)`` evaluates to true under the current liveness of its bound
parameter objects.  This module represents such formulas in minimized DNF
(absorption: a conjunct that is a superset of another is redundant, because
parameter liveness atoms are positive) and evaluates them.
"""

from __future__ import annotations

from typing import Callable, Mapping

__all__ = ["AlivenessFormula", "compile_aliveness"]


class AlivenessFormula:
    """A positive DNF over parameter-liveness atoms.

    ``disjuncts`` is a family of parameter sets; the formula is satisfied
    when *every* parameter of *some* disjunct is alive.  The constant-false
    formula (no disjuncts) means the monitor can never trigger again; the
    formula containing the empty conjunct is constant-true (that only arises
    for parameterless specifications — the empty-set dropping of coenable
    sets removes the other source).
    """

    __slots__ = ("disjuncts", "_conjuncts")

    def __init__(self, disjuncts: frozenset[frozenset[str]]):
        self.disjuncts = _absorb(disjuncts)
        #: Flat evaluation form: the GC notification path walks this with
        #: plain loops instead of building generator frames per check.
        self._conjuncts: tuple[tuple[str, ...], ...] = tuple(
            tuple(sorted(conjunct)) for conjunct in sorted(self.disjuncts, key=sorted)
        )

    @classmethod
    def false(cls) -> "AlivenessFormula":
        return cls(frozenset())

    @classmethod
    def true(cls) -> "AlivenessFormula":
        return cls(frozenset({frozenset()}))

    @property
    def is_false(self) -> bool:
        return not self.disjuncts

    @property
    def is_true(self) -> bool:
        return frozenset() in self.disjuncts

    @property
    def parameters(self) -> frozenset[str]:
        """Every parameter whose liveness the formula can depend on."""
        result: set[str] = set()
        for conjunct in self.disjuncts:
            result |= conjunct
        return frozenset(result)

    def evaluate(self, live: Mapping[str, bool] | Callable[[str], bool]) -> bool:
        """Evaluate under a liveness assignment.

        ``live`` maps parameter names to booleans (or is a callable doing
        the same).  Parameters missing from a mapping are treated as alive —
        an *unbound* parameter can still be bound in the future, so it must
        not count against the monitor (conservative per Theorem 1).
        """
        if callable(live):
            is_live = live
        else:
            get = live.get
            is_live = lambda name: get(name, True)  # noqa: E731 - tiny adapter
        for conjunct in self._conjuncts:
            for name in conjunct:
                if not is_live(name):
                    break
            else:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlivenessFormula):
            return NotImplemented
        return self.disjuncts == other.disjuncts

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    def __repr__(self) -> str:
        if self.is_false:
            return "ALIVENESS[false]"
        if self.is_true:
            return "ALIVENESS[true]"
        parts = sorted(
            " & ".join(f"live_{name}" for name in sorted(conjunct))
            for conjunct in self.disjuncts
        )
        return "ALIVENESS[" + " | ".join(parts) + "]"


def _absorb(disjuncts: frozenset[frozenset[str]]) -> frozenset[frozenset[str]]:
    """Minimize a positive DNF by absorption (keep only minimal conjuncts)."""
    return frozenset(
        conjunct
        for conjunct in disjuncts
        if not any(other < conjunct for other in disjuncts)
    )


def compile_aliveness(
    param_coenable: dict[str, frozenset[frozenset[str]]],
) -> dict[str, AlivenessFormula]:
    """Compile the parameter coenable sets of every event into formulas.

    This is the static translation described in Section 4.2.2; the runtime
    evaluates the formula of a monitor's *last received event* whenever a
    parameter-death notification reaches the monitor.
    """
    return {event: AlivenessFormula(family) for event, family in param_coenable.items()}
