"""Coenable sets — Definitions 10 and 11 and their brute-force references.

The *property coenable set* ``COENABLE_{P,G}(e)`` is the family of event
sets that can still follow ``e`` in some trace the property classifies into
the goal ``G``.  Lifted through the event definition ``D`` it becomes the
*parameter coenable set* ``COENABLE^X_{P,G}(e)`` (Definition 11): the
families of parameters that must still be alive after ``e`` for a goal
verdict to remain reachable (Theorem 1).

Occurrence semantics.  The paper's fixpoint equations for FSMs and CFGs
(Section 3) generate one suffix set per *occurrence* of ``e`` in a goal
trace — ``{events(w2) | w1 e w2 in goal}`` — so the brute-force oracles
here use the same per-occurrence reading, for both coenable and its ENABLE
dual (Chen et al., ASE'09): ``{events(w1) | w1 e w2 in goal}``.  On the
paper's worked UNSAFEITER example the per-occurrence and the existential
(Definition 10 literal) readings coincide; Theorem 1 is naturally a
per-occurrence statement (it speaks about the suffix ``w'`` after a given
occurrence of ``e``).

Efficient per-formalism computations (fixpoints over FSMs and CFGs) live in
:mod:`repro.formalism`; this module provides the formalism-independent
pieces: the parameter lift, empty-set dropping, and exhaustive brute-force
computations used as test oracles.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from .events import EventDefinition
from .monitor import MonitorTemplate, SetOfEventSets, run_monitor

__all__ = [
    "drop_empty_sets",
    "occurrence_coenable_sets",
    "occurrence_enable_sets",
    "lift_to_params",
    "param_coenable_sets",
    "brute_force_coenable",
    "brute_force_enable",
]


def drop_empty_sets(family: SetOfEventSets) -> SetOfEventSets:
    """Remove ``∅`` from a family of event sets.

    The paper drops empty coenable sets: an ``∅`` only says the trace may
    *end* in the goal at ``e`` itself, not that the goal is reachable again
    in the future, and keeping it would retain unnecessary monitors.
    """
    return frozenset(s for s in family if s)


def occurrence_coenable_sets(trace: Sequence[str], event: str) -> SetOfEventSets:
    """``{events(w2) | trace = w1 e w2}``: one suffix set per occurrence of ``e``."""
    sets = {
        frozenset(trace[index + 1 :])
        for index, name in enumerate(trace)
        if name == event
    }
    if not sets:
        raise ValueError(f"event {event!r} does not occur in trace {trace!r}")
    return frozenset(sets)


def occurrence_enable_sets(trace: Sequence[str], event: str) -> SetOfEventSets:
    """``{events(w1) | trace = w1 e w2}``: one prefix set per occurrence of ``e``."""
    sets = {
        frozenset(trace[:index]) for index, name in enumerate(trace) if name == event
    }
    if not sets:
        raise ValueError(f"event {event!r} does not occur in trace {trace!r}")
    return frozenset(sets)


def lift_to_params(
    family: SetOfEventSets, definition: EventDefinition
) -> frozenset[frozenset[str]]:
    """Apply ``D`` to every event set in the family (Definition 11)."""
    return frozenset(definition.params_of_set(events) for events in family)


def param_coenable_sets(
    coenable: dict[str, SetOfEventSets], definition: EventDefinition
) -> dict[str, frozenset[frozenset[str]]]:
    """``COENABLE^X_{P,G}``: the parameter lift of a full coenable map."""
    return {event: lift_to_params(family, definition) for event, family in coenable.items()}


def _all_traces(alphabet: Sequence[str], max_length: int) -> Iterable[tuple[str, ...]]:
    for length in range(max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


def brute_force_coenable(
    template: MonitorTemplate,
    goal: frozenset[str],
    max_length: int,
) -> dict[str, SetOfEventSets]:
    """``COENABLE_{P,G}`` by exhaustive trace enumeration (test oracle).

    Enumerates every trace up to ``max_length`` over the template's alphabet,
    keeps those whose verdict lands in ``goal``, and collects the per-
    occurrence coenable sets, dropping ``∅``.  Exponential — only usable for
    the small alphabets of unit tests, which is exactly its purpose.
    """
    alphabet = sorted(template.alphabet)
    result: dict[str, set[frozenset[str]]] = {event: set() for event in alphabet}
    for trace in _all_traces(alphabet, max_length):
        if run_monitor(template, trace) not in goal:
            continue
        for event in set(trace):
            result[event].update(s for s in occurrence_coenable_sets(trace, event) if s)
    return {event: frozenset(sets) for event, sets in result.items()}


def brute_force_enable(
    template: MonitorTemplate,
    goal: frozenset[str],
    max_length: int,
) -> dict[str, SetOfEventSets]:
    """ENABLE sets by exhaustive trace enumeration (test oracle).

    Unlike coenable sets, ``∅`` is *kept*: it marks events that can open a
    goal trace, i.e. the monitor-creation events of the runtime.
    """
    alphabet = sorted(template.alphabet)
    result: dict[str, set[frozenset[str]]] = {event: set() for event in alphabet}
    for trace in _all_traces(alphabet, max_length):
        if run_monitor(template, trace) not in goal:
            continue
        for event in set(trace):
            result[event].update(occurrence_enable_sets(trace, event))
    return {event: frozenset(sets) for event, sets in result.items()}
