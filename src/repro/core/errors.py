"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IncompatibleBindingError(ReproError):
    """Raised when joining two parameter bindings that disagree on a value."""


class UnknownEventError(ReproError):
    """Raised when an event outside the declared alphabet is processed."""


class UnknownParameterError(ReproError):
    """Raised when an event binds a parameter the specification never declared."""


class InconsistentEventError(ReproError):
    """Raised when a parametric event's binding domain differs from ``D(e)``.

    See Definition 4 of the paper: a parametric event ``e<theta>`` is
    D-consistent only when ``dom(theta) == D(e)``.
    """


class SpecSyntaxError(ReproError):
    """Raised by the spec-language lexer/parser on malformed input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SpecCompileError(ReproError):
    """Raised when a parsed specification cannot be compiled to a monitor."""


class FormalismError(ReproError):
    """Raised for ill-formed formalism-level objects (FSMs, EREs, CFGs, ...)."""


class UnsupportedFormalismError(ReproError):
    """Raised when a GC strategy cannot support a formalism.

    The Tracematches-analog state-based strategy raises this for
    context-free properties, mirroring the paper's Section 3 discussion:
    "A static state-based technique ... could not be used for context-free
    properties because the state space is unbounded."
    """


class EngineStateError(ReproError):
    """Raised when the monitoring engine is driven through an invalid sequence."""


class ServiceError(ReproError):
    """Raised for sharded-service lifecycle violations (emit after close,
    a shard worker that died, invalid shard configuration)."""


class RegistryError(ReproError):
    """Raised for dynamic property-registry misuse: unknown names or slots,
    double removal, origins that cannot be re-materialized."""


class PersistError(ReproError):
    """Raised by the checkpoint/recovery subsystem (:mod:`repro.persist`):
    unsupported monitor state, format/version mismatches, property
    fingerprints that do not match a snapshot, corrupt WAL segments."""


class WalWriteError(PersistError):
    """Raised when the write-ahead log cannot persist a record.

    Wraps the underlying ``OSError`` (``ENOSPC``, ``EACCES``, ...) so the
    shard supervisor can distinguish a full or read-only log device from
    logical corruption; :attr:`errno` carries the OS error number and the
    originating :class:`~repro.persist.wal.WalWriter` marks itself failed.
    """

    def __init__(self, message: str, errno: int | None = None):
        super().__init__(message)
        self.errno = errno


class SupervisionError(ServiceError):
    """Raised when shard supervision cannot keep the service healthy:
    a shard exhausted its restart budget, or recovery state (checkpoint +
    journal suffix) is missing or unusable."""
