"""Events, parametric events, and event definitions.

Implements Definitions 1, 3 and 4 of the paper.  Base events are plain
strings (their name); a :class:`ParametricEvent` pairs a base event with a
parameter :class:`~repro.core.params.Binding`; an :class:`EventDefinition`
is the static map ``D : E -> P(X)`` declaring which parameters each event
instantiates at runtime.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from .errors import InconsistentEventError, UnknownEventError, UnknownParameterError
from .params import Binding

__all__ = ["ParametricEvent", "EventDefinition"]


class ParametricEvent:
    """A parametric event ``e<theta>`` (Definition 3)."""

    __slots__ = ("name", "binding")

    def __init__(self, name: str, binding: Binding | Mapping[str, Any] | None = None):
        if binding is None:
            binding = Binding()
        elif not isinstance(binding, Binding):
            binding = Binding.from_mapping(binding)
        self.name = name
        self.binding = binding

    @classmethod
    def of(cls, name: str, **params: Any) -> "ParametricEvent":
        """Build an event from keyword bindings: ``ParametricEvent.of("next", i=i1)``."""
        return cls(name, Binding.of(**params))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParametricEvent):
            return NotImplemented
        return self.name == other.name and self.binding == other.binding

    def __hash__(self) -> int:
        return hash((self.name, self.binding))

    def __repr__(self) -> str:
        return f"{self.name}{self.binding!r}"


class EventDefinition:
    """The parametric event definition ``D : E -> P(X)`` (Definition 4).

    Also records the full parameter set ``X`` of the specification, which may
    be larger than the union of the per-event parameter sets (though for all
    the paper's properties it is exactly that union).
    """

    def __init__(
        self,
        params_by_event: Mapping[str, Iterable[str]],
        all_params: Iterable[str] | None = None,
    ):
        self._params_by_event: dict[str, frozenset[str]] = {
            event: frozenset(params) for event, params in params_by_event.items()
        }
        union: set[str] = set()
        for params in self._params_by_event.values():
            union |= params
        self._all_params = frozenset(all_params) if all_params is not None else frozenset(union)
        undeclared = union - self._all_params
        if undeclared:
            raise UnknownParameterError(
                f"events bind parameters not in the specification's parameter set: "
                f"{sorted(undeclared)}"
            )

    # -- queries -------------------------------------------------------------

    @property
    def alphabet(self) -> frozenset[str]:
        """The base event set ``E``."""
        return frozenset(self._params_by_event)

    @property
    def parameters(self) -> frozenset[str]:
        """The parameter set ``X``."""
        return self._all_params

    def params_of(self, event: str) -> frozenset[str]:
        """``D(e)`` — raises :class:`UnknownEventError` for undeclared events."""
        try:
            return self._params_by_event[event]
        except KeyError:
            raise UnknownEventError(f"event {event!r} is not declared") from None

    def params_of_trace(self, events: Iterable[str]) -> frozenset[str]:
        """``D`` extended to traces: the union of ``D(e)`` over the trace."""
        result: set[str] = set()
        for event in events:
            result |= self.params_of(event)
        return frozenset(result)

    def params_of_set(self, events: Iterable[str]) -> frozenset[str]:
        """``D`` extended to event sets — identical to the trace extension."""
        return self.params_of_trace(events)

    def __contains__(self, event: str) -> bool:
        return event in self._params_by_event

    def __iter__(self) -> Iterator[str]:
        return iter(self._params_by_event)

    def __len__(self) -> int:
        return len(self._params_by_event)

    # -- consistency (Definition 4) -------------------------------------------

    def is_consistent(self, event: ParametricEvent) -> bool:
        """True when ``dom(theta) == D(e)`` for the parametric event ``e<theta>``."""
        return event.name in self._params_by_event and (
            event.binding.domain == self._params_by_event[event.name]
        )

    def check_consistent(self, event: ParametricEvent) -> None:
        """Raise unless the parametric event is D-consistent."""
        expected = self.params_of(event.name)
        actual = event.binding.domain
        if actual != expected:
            raise InconsistentEventError(
                f"event {event.name!r} must bind parameters {sorted(expected)}, "
                f"got {sorted(actual)}"
            )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{event}->{{{', '.join(sorted(params))}}}"
            for event, params in sorted(self._params_by_event.items())
        )
        return f"EventDefinition({inner})"
