"""Base (non-parametric) monitors — Definition 8 of the paper.

A monitor ``M = (S, E, C, ı, σ, γ)`` consumes base events and yields a
verdict category after every step.  Formalism plugins provide concrete
monitors (FSM, ERE-compiled DFA, past-LTL valuation automata, Earley-based
CFG recognizers) behind two small interfaces:

* :class:`BaseMonitor` — one running monitor instance (mutable state);
* :class:`MonitorTemplate` — the immutable, shareable description of a
  property: it creates fresh monitor instances and exposes the static
  analyses the runtime needs (coenable and enable sets).
"""

from __future__ import annotations

import abc
from typing import Iterable

from .verdicts import UNKNOWN

__all__ = ["BaseMonitor", "MonitorTemplate", "SetOfEventSets", "run_monitor"]

#: A family of event sets, e.g. a coenable set ``{{next}, {next, update}}``.
SetOfEventSets = frozenset[frozenset[str]]


class BaseMonitor(abc.ABC):
    """One running non-parametric monitor instance.

    Subclasses keep whatever mutable state they need (an FSM state, a
    subformula valuation vector, an Earley chart) and implement
    :meth:`step` / :meth:`verdict` / :meth:`clone`.
    """

    __slots__ = ()

    @abc.abstractmethod
    def step(self, event: str) -> str:
        """Consume one base event and return the verdict category after it."""

    @abc.abstractmethod
    def verdict(self) -> str:
        """The verdict category ``γ(current state)`` without consuming input."""

    @abc.abstractmethod
    def clone(self) -> "BaseMonitor":
        """An independent copy sharing no mutable state.

        The parametric algorithms need this for *defineTo*: a new monitor
        instance for binding ``theta`` starts from the state of the monitor
        of the maximal defined sub-instance of ``theta`` (Figure 5, line 4).
        """

    def is_dead(self) -> bool:
        """True when no future input can change the verdict.

        Dead monitors let the runtime short-circuit updates; the default
        (``False``) is always safe.
        """
        return False

    def snapshot_state(self):
        """The monitor's mutable state as a JSON-serializable payload.

        Together with :meth:`MonitorTemplate.monitor_from_state` this is the
        contract the checkpoint codec (:mod:`repro.persist.codec`) relies
        on: ``template.monitor_from_state(monitor.snapshot_state())`` must
        behave exactly like ``monitor`` on every future input.  Formalisms
        that cannot express their state as data raise
        :class:`~repro.core.errors.PersistError`.
        """
        from .errors import PersistError

        raise PersistError(
            f"{type(self).__name__} does not support state snapshots"
        )


class MonitorTemplate(abc.ABC):
    """The immutable description of a base property ``P : E* -> C``."""

    @property
    @abc.abstractmethod
    def alphabet(self) -> frozenset[str]:
        """The base event set ``E``."""

    @property
    @abc.abstractmethod
    def categories(self) -> frozenset[str]:
        """Every verdict category this property can emit (including ``?``)."""

    @abc.abstractmethod
    def create(self) -> BaseMonitor:
        """A fresh monitor instance in the initial state ``ı``."""

    @abc.abstractmethod
    def coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        """``COENABLE_{P,G}`` (Definition 10) for every event, with ∅s dropped."""

    @abc.abstractmethod
    def enable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        """ENABLE sets (Chen et al., ASE'09): for each event ``e``, the sets of
        events that occur strictly before ``e`` in some goal-reaching trace.
        Unlike coenable sets, the empty set is *kept* — it marks creation
        events (``e`` can be the first relevant event of a goal trace)."""

    @property
    def supports_state_gc(self) -> bool:
        """Whether the Tracematches-analog state-indexed GC applies.

        True only for finite-state formalisms; the CFG plugin returns False
        (its state space is unbounded — Section 3 of the paper).
        """
        return True

    def monitor_from_state(self, payload) -> BaseMonitor:
        """Rebuild a monitor from a :meth:`BaseMonitor.snapshot_state`
        payload (the restore half of the checkpoint-codec contract)."""
        from .errors import PersistError

        raise PersistError(
            f"{type(self).__name__} does not support state restoration"
        )

    def state_coenable_sets(self, goal: frozenset[str]):  # pragma: no cover - interface
        """Per-*state* coenable sets for the state-based strategy, or None."""
        return None


def run_monitor(template: MonitorTemplate, trace: Iterable[str]) -> str:
    """Run a fresh monitor over ``trace`` and return the final verdict.

    Convenience used pervasively by tests: this is the property
    ``P_M(w) = γ(σ(ı, w))`` of Definition 8.
    """
    monitor = template.create()
    verdict = monitor.verdict()
    for event in trace:
        verdict = monitor.step(event)
    return verdict if verdict is not None else UNKNOWN
