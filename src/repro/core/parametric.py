"""Algorithm MONITOR — the abstract parametric monitoring algorithm (Figure 5).

This is a direct, unoptimized transcription of the paper's Figure 5: it
maintains the tables ``Delta`` (monitor state per parameter instance),
``Gamma`` (verdict category per parameter instance) and the set ``Theta``
of known parameter instances, and on each parametric event updates every
compatible combination.

It is deliberately simple and quadratic — its role in this library is to be
the trusted executable semantics.  The production engine
(:mod:`repro.runtime.engine`) with indexing trees, enable-set creation
pruning and monitor garbage collection is validated against this class on
randomized traces (see ``tests/runtime/test_engine_vs_abstract.py``).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .errors import EngineStateError
from .events import EventDefinition, ParametricEvent
from .monitor import BaseMonitor, MonitorTemplate
from .params import EMPTY_BINDING, Binding

__all__ = ["AbstractParametricMonitor"]


class AbstractParametricMonitor:
    """A monitor for the parametric property ``ΛX.P`` (Definitions 7 and 9)."""

    def __init__(
        self,
        template: MonitorTemplate,
        definition: EventDefinition,
        check_consistency: bool = True,
    ):
        self._template = template
        self._definition = definition
        self._check = check_consistency
        # Line 1 of Figure 5: Delta is cleared, Delta(⊥) <- ı, Theta <- {⊥}.
        self._delta: dict[Binding, BaseMonitor] = {EMPTY_BINDING: template.create()}
        self._gamma: dict[Binding, str] = {}
        self._theta: set[Binding] = {EMPTY_BINDING}

    # -- queries ---------------------------------------------------------

    @property
    def known_instances(self) -> frozenset[Binding]:
        """The current contents of ``Theta`` (always contains ``⊥``)."""
        return frozenset(self._theta)

    def gamma(self) -> Mapping[str, str]:
        """A read-only view of the ``Gamma`` table (verdicts per instance)."""
        return dict(self._gamma)

    def verdict(self, theta: Binding) -> str:
        """``(ΛX.γ)(delta)(theta)``: the verdict for parameter instance ``theta``.

        Works for *any* instance, known or not: the state consulted is that
        of the maximal known instance less informative than ``theta``
        (whose slice ``theta`` shares — Definition 6).
        """
        best = self._max_known_sub_instance(theta)
        return self._delta[best].verdict()

    # -- the algorithm -----------------------------------------------------

    def process(self, event: ParametricEvent) -> dict[Binding, str]:
        """Lines 2-7 of Figure 5 for one parametric event ``e<theta>``.

        Returns the ``Gamma`` entries updated by this event: a map from each
        affected parameter instance to its new verdict category.
        """
        if self._check:
            self._definition.check_consistent(event)
        theta = event.binding
        # Line 3: every theta' in {theta} ⊔ Theta (the set of joins of theta
        # with each compatible known instance; includes theta itself via ⊥).
        targets: set[Binding] = set()
        for known in self._theta:
            joined = theta.try_join(known)
            if joined is not None:
                targets.add(joined)
        # Line 4: all new states are computed from the *pre-event* tables,
        # so stage them and merge after the loop.
        staged: dict[Binding, BaseMonitor] = {}
        updates: dict[Binding, str] = {}
        for target in targets:
            source = self._max_known_sub_instance(target)
            monitor = self._delta[source].clone()
            updates[target] = monitor.step(event.name)  # line 5: Gamma(theta')
            staged[target] = monitor
        self._delta.update(staged)
        self._gamma.update(updates)
        # Line 7: Theta <- {⊥, theta} ⊔ Theta.  Joining with ⊥ keeps all old
        # members; joining with theta adds exactly the targets above.
        self._theta |= targets
        return updates

    def process_trace(self, trace: Iterable[ParametricEvent]) -> dict[Binding, str]:
        """Process a whole trace; returns the final ``Gamma`` table."""
        for event in trace:
            self.process(event)
        return dict(self._gamma)

    # -- internals ---------------------------------------------------------

    def _max_known_sub_instance(self, theta: Binding) -> Binding:
        """``max {theta'' in Theta | theta'' ⊑ theta}`` (Figure 5, line 4).

        The maximum exists because ``Theta`` contains ``⊥`` and is closed
        under joins of compatible members (all candidates are ⊑ theta, hence
        pairwise compatible, and their join is again a candidate).
        """
        best = EMPTY_BINDING
        for candidate in self._theta:
            if candidate.is_less_informative(theta) and len(candidate) > len(best):
                best = candidate
        # Sanity: 'best' must dominate every other candidate, otherwise the
        # closure invariant of Theta was broken somewhere.
        for candidate in self._theta:
            if candidate.is_less_informative(theta) and not candidate.is_less_informative(best):
                raise EngineStateError(
                    f"Theta lost join-closure: {candidate!r} and {best!r} are "
                    f"incomparable maximal sub-instances of {theta!r}"
                )
        return best
