"""Parameter instances (partial bindings) and their algebra.

This module implements Definitions 3 and 5 of the paper:

* a *parameter instance* ``theta`` is a partial function from parameters to
  parameter values — here a :class:`Binding`;
* two instances are *compatible* when they agree on their shared domain;
* compatible instances combine with the least upper bound ``theta ⊔ theta'``
  (:meth:`Binding.join`);
* ``theta ⊑ theta'`` ("less informative than") holds when ``theta'`` extends
  ``theta`` (:meth:`Binding.is_less_informative`).

Parameter *values* are program objects, so — as in Java — they are compared
by **identity** (``is``), never by ``==``.  Two distinct but equal-looking
objects bound to the same parameter make two bindings incompatible.  This
matters for monitoring: the events of two distinct iterators must never be
merged into one trace slice just because the iterators compare equal.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from .errors import IncompatibleBindingError

__all__ = ["Binding", "EMPTY_BINDING"]


class Binding:
    """An immutable partial map from parameter names to parameter values.

    Bindings are hashable (on parameter names and value identities) so they
    can key the ``Delta``/``Theta`` tables of the abstract monitoring
    algorithm (Figure 5) and the indexing trees of the runtime.
    """

    __slots__ = ("_pairs", "_lookup", "_hash")

    def __init__(self, pairs: Iterable[tuple[str, Any]] = ()):
        items = sorted(dict(pairs).items())
        self._pairs: tuple[tuple[str, Any], ...] = tuple(items)
        self._lookup: dict[str, Any] = dict(items)
        self._hash = hash(tuple((name, id(value)) for name, value in self._pairs))

    @classmethod
    def _of_unique(cls, pairs: "list[tuple[str, Any]]") -> "Binding":
        """Construct from pairs with *unique* parameter names (verdict path).

        Unique names mean ``sorted`` never falls through to comparing the
        values, so arbitrary (uncomparable) parameter objects are safe.
        """
        self = object.__new__(cls)
        items = sorted(pairs)
        self._pairs = tuple(items)
        self._lookup = dict(items)
        self._hash = hash(tuple([(name, id(value)) for name, value in items]))
        return self

    @classmethod
    def of(cls, **params: Any) -> "Binding":
        """Build a binding from keyword arguments: ``Binding.of(c=c1, i=i1)``."""
        return cls(params.items())

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Binding":
        return cls(mapping.items())

    # -- basic queries -----------------------------------------------------

    @property
    def domain(self) -> frozenset[str]:
        """``dom(theta)``: the set of parameters this binding defines."""
        return frozenset(self._lookup)

    def items(self) -> tuple[tuple[str, Any], ...]:
        return self._pairs

    def values(self) -> tuple[Any, ...]:
        return tuple(value for _, value in self._pairs)

    def get(self, name: str, default: Any = None) -> Any:
        return self._lookup.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self._lookup[name]

    def __contains__(self, name: str) -> bool:
        return name in self._lookup

    def __iter__(self) -> Iterator[str]:
        return iter(self._lookup)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    # -- identity-based equality -------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Binding):
            return NotImplemented
        if len(self._pairs) != len(other._pairs):
            return False
        return all(
            a_name == b_name and a_value is b_value
            for (a_name, a_value), (b_name, b_value) in zip(self._pairs, other._pairs)
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    # -- the partial-function algebra of Definition 5 -----------------------

    def is_compatible(self, other: "Binding") -> bool:
        """True when the two bindings agree on every shared parameter."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return all(
            name not in large._lookup or large._lookup[name] is value
            for name, value in small._pairs
        )

    def join(self, other: "Binding") -> "Binding":
        """``theta ⊔ theta'`` — least upper bound of compatible bindings.

        Raises :class:`IncompatibleBindingError` when the bindings disagree.
        """
        joined = self.try_join(other)
        if joined is None:
            raise IncompatibleBindingError(f"cannot join {self!r} with {other!r}")
        return joined

    def try_join(self, other: "Binding") -> "Binding | None":
        """Like :meth:`join` but returns ``None`` on incompatibility."""
        if not self.is_compatible(other):
            return None
        if self.is_less_informative(other):
            return other
        if other.is_less_informative(self):
            return self
        merged = dict(self._pairs)
        merged.update(other._pairs)
        return Binding(merged.items())

    def is_less_informative(self, other: "Binding") -> bool:
        """``self ⊑ other``: ``other`` defines everything ``self`` does, equally."""
        if len(self) > len(other):
            return False
        return all(
            name in other._lookup and other._lookup[name] is value
            for name, value in self._pairs
        )

    def is_strictly_less_informative(self, other: "Binding") -> bool:
        return len(self) < len(other) and self.is_less_informative(other)

    def restrict(self, params: Iterable[str]) -> "Binding":
        """The sub-binding defined only on ``params ∩ dom(self)``."""
        wanted = set(params)
        return Binding((name, value) for name, value in self._pairs if name in wanted)

    def sub_bindings(self, proper: bool = False) -> Iterator["Binding"]:
        """Yield every sub-binding (every restriction to a subset of the domain).

        With ``proper=True`` the binding itself is omitted.  The empty binding
        is always yielded first.  The number of sub-bindings is ``2**len(self)``,
        which is fine: specifications bind at most a handful of parameters.
        """
        names = [name for name, _ in self._pairs]
        total = 1 << len(names)
        limit = total - 1 if proper else total
        for mask in range(limit):
            yield Binding(
                (names[bit], self._lookup[names[bit]])
                for bit in range(len(names))
                if mask >> bit & 1
            )

    def __repr__(self) -> str:
        if not self._pairs:
            return "<⊥>"
        inner = ", ".join(f"{name}={value!r}" for name, value in self._pairs)
        return f"<{inner}>"


#: The empty parameter instance ``⊥`` (the everywhere-undefined partial map).
EMPTY_BINDING = Binding()
