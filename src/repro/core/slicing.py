"""Trace slicing (Definition 6) — the reference semantics of the paper.

Given a parametric trace ``tau`` and a parameter instance ``theta``, the
slice ``tau ↾ theta`` keeps exactly the events whose binding is less
informative than ``theta`` (``theta' ⊑ theta``) and forgets their bindings.

This module is the executable specification against which both the abstract
algorithm of Figure 5 (:mod:`repro.core.parametric`) and the indexing-tree
runtime (:mod:`repro.runtime.engine`) are validated in the test suite.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .events import EventDefinition, ParametricEvent
from .params import EMPTY_BINDING, Binding

__all__ = ["slice_trace", "informative_bindings", "all_slices"]


def slice_trace(trace: Iterable[ParametricEvent], theta: Binding) -> list[str]:
    """``tau ↾ theta``: the non-parametric slice of ``trace`` for ``theta``.

    An event ``e<theta'>`` survives iff ``theta' ⊑ theta``; surviving events
    are stripped of their bindings.  Note that events *more* informative than
    ``theta`` are discarded too — the paper stresses this (the slice for
    ``<c1>`` of a trace containing ``create<c1, i1>`` does **not** contain
    ``create``).
    """
    return [
        event.name for event in trace if event.binding.is_less_informative(theta)
    ]


def informative_bindings(trace: Sequence[ParametricEvent]) -> set[Binding]:
    """All bindings a monitoring algorithm must know about for ``trace``.

    This is the least set containing ``⊥`` and the binding of every event,
    closed under least upper bounds of compatible members — the limit of the
    ``Theta`` table maintained by Algorithm MONITOR (Figure 5, line 7).
    """
    known: set[Binding] = {EMPTY_BINDING}
    for event in trace:
        additions = {event.binding}
        for binding in known:
            joined = binding.try_join(event.binding)
            if joined is not None:
                additions.add(joined)
        known |= additions
        # Close under joins among the new members as well (the lub of two
        # earlier joins can be new when parameter domains overlap partially).
        changed = True
        while changed:
            changed = False
            fresh: set[Binding] = set()
            for a in known:
                for b in known:
                    joined = a.try_join(b)
                    if joined is not None and joined not in known:
                        fresh.add(joined)
            if fresh:
                known |= fresh
                changed = True
    return known


def all_slices(
    trace: Sequence[ParametricEvent],
    definition: EventDefinition | None = None,
) -> dict[Binding, list[str]]:
    """Map every informative binding of ``trace`` to its slice.

    This is ``(ΛX.P)(tau)`` computed by brute force (Definition 7): the
    verdict for parameter instance ``theta`` is the base property applied to
    ``all_slices(tau)[theta]`` (or to ``slice_trace(tau, theta)`` for a
    ``theta`` outside the informative set, whose slice equals that of its
    maximal informative sub-binding).
    """
    if definition is not None:
        for event in trace:
            definition.check_consistent(event)
    return {theta: slice_trace(trace, theta) for theta in informative_bindings(trace)}
