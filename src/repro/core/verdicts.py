"""Verdict categories for (parametric) properties.

Definition 2 of the paper lets the category set ``C`` be *any* set; in
practice each formalism plugin uses a small conventional vocabulary:

* ERE / CFG:  ``match`` / ``fail`` / ``?``
* LTL:        ``violation`` / ``?``
* FSM:        the state names themselves (the paper's FSM handlers fire on
  *entering a named state*, e.g. ``@error`` in Figure 2), plus an implicit
  ``fail`` sink for undefined transitions.

Categories are plain strings so user-defined formalisms can introduce their
own without touching this module; the constants below only name the
conventional ones.
"""

from __future__ import annotations

from typing import Iterable

#: Trace matched the pattern (ERE/CFG goal verdict).
MATCH = "match"

#: Trace can no longer match / FSM took an undefined transition.
FAIL = "fail"

#: Verdict still open ("?" in the paper).
UNKNOWN = "?"

#: LTL formula violated.
VIOLATION = "violation"

#: Conventional FSM error-state name used throughout the paper's examples.
ERROR = "error"

#: Categories conventionally used as monitoring *goals* ``G`` (Definition 10)
#: when the user does not specify one explicitly.
DEFAULT_GOALS: frozenset[str] = frozenset({MATCH, VIOLATION, ERROR, FAIL})


def normalize_goal(goal: str | Iterable[str]) -> frozenset[str]:
    """Return ``goal`` as a frozenset of category names.

    Accepts a single category name or any iterable of names; a bare string
    is treated as one category, not as an iterable of characters.
    """
    if isinstance(goal, str):
        return frozenset({goal})
    return frozenset(goal)
