"""Deterministic fault injection for the sharded monitoring service.

Chaos testing a monitoring engine only proves something when the chaos is
*replayable*: the same :class:`FaultPlan` must produce the same worker
crash at the same delivery ordinal, the same torn WAL tail, the same
stalled queue — run after run, thread or process mode.  This module is
the single source of injected failure for the fault-tolerance plane
(:mod:`repro.service.supervisor`):

* :class:`FaultPlan` — a seeded, explicit schedule of faults.  Positions
  are **absolute per-shard delivery ordinals** (1-based), so a plan means
  the same thing before and after a recovery replay; the supervisor
  disarms each one-shot crash/stall fault when it handles the resulting
  restart, which is what makes "crash at delivery k" fire exactly once.
* :class:`WorkerFaultState` — the per-worker runtime: counts deliveries
  (resuming from the recovering checkpoint's count) and surfaces due
  faults.  Picklable-free: workers receive plain dict configs, so the
  state crosses the fork boundary untouched.
* :func:`supervised_dispatch` — the guarded dispatch loop shared by
  thread-mode shard workers (via the service's dispatch guard hook) and
  process-mode workers: per-delivery dispatch, injected crash/stall/
  poison faults, and poison-event quarantine with retry + backoff.
* WAL corruption helpers (:func:`tear_wal_tail`,
  :func:`corrupt_checkpoint`) for recovery-edge tests and the chaos
  benchmark.

Injected errors derive from :class:`~repro.core.errors.ReproError` so the
supervision machinery can tell engineered failure from real bugs.
"""

from __future__ import annotations

import errno as errno_module
import os
import threading
import time
from typing import Any, Callable, Iterable, Mapping

from .core.errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "WorkerFaultState",
    "QuarantinePolicy",
    "InjectedFault",
    "InjectedCrash",
    "InjectedPoison",
    "supervised_dispatch",
    "tear_wal_tail",
    "corrupt_checkpoint",
]

#: Every fault kind a plan may schedule.
#:
#: ``crash``     — kill the shard worker just before delivery ``at``
#:                 (thread: raises :class:`InjectedCrash` out of the
#:                 dispatch guard; process: the worker ``os._exit``\ s);
#: ``stall``     — sleep ``duration`` seconds before delivery ``at``
#:                 (slow-worker delay; past the supervisor's IPC deadline
#:                 it reads as a hang and triggers a restart);
#: ``poison``    — delivery ``at`` raises on dispatch (every retry too) —
#:                 the quarantine path's deterministic trigger;
#: ``serialize`` — like ``poison`` but labelled as a serialization
#:                 failure (the process boundary's decode-error analog);
#: ``queue``     — delay the ``at``-th producer put to the shard's queue
#:                 by ``duration`` seconds (queue-full stall);
#: ``wal``       — the ``at``-th journal write on the shard raises
#:                 ``ENOSPC`` (exercises the typed WAL failure signal).
FAULT_KINDS = ("crash", "stall", "poison", "serialize", "queue", "wal")


class InjectedFault(ReproError):
    """Base class for engineered failures raised by the fault layer."""

    def __init__(self, fault_id: int, kind: str = "fault"):
        super().__init__(f"injected {kind} (fault #{fault_id})")
        self.fault_id = fault_id
        self.kind = kind


class InjectedCrash(InjectedFault):
    """A scheduled worker crash: kills the shard, recovery takes over."""

    def __init__(self, fault_id: int):
        super().__init__(fault_id, "crash")


class InjectedPoison(InjectedFault):
    """A scheduled poison delivery: dispatch raises, quarantine handles."""

    def __init__(self, fault_id: int, kind: str = "poison"):
        super().__init__(fault_id, kind)


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Build one explicitly with :meth:`add`, or derive a kill campaign from
    a seed with :meth:`crash_campaign`.  The plan is shared between the
    supervisor (which disarms crash/stall faults as it recovers from
    them) and the workers (which receive per-shard dict configs at spawn
    time) — replaying the same plan over the same trace reproduces the
    same failure sequence.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._faults: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    @classmethod
    def crash_campaign(
        cls,
        seed: int,
        shards: int,
        deliveries: int,
        crashes: int = 3,
        kind: str = "crash",
        duration: float = 0.0,
    ) -> "FaultPlan":
        """A seeded campaign of ``crashes`` faults spread over the run.

        Positions are drawn without a PRNG dependency: a multiplicative
        hash of ``(seed, n)`` picks shard and delivery ordinal, so the
        same arguments always produce the same schedule.  Positions land
        in the middle 80% of ``deliveries`` (a crash before the first
        checkpoint or after the last delivery proves nothing).
        """
        plan = cls(seed)
        span = max(1, deliveries)
        low = max(1, span // 10)
        width = max(1, span - 2 * low)
        for n in range(crashes):
            h = (seed * 0x9E3779B1 + (n + 1) * 0x85EBCA77) & 0xFFFFFFFF
            shard = h % max(1, shards)
            at = low + ((h >> 8) % width)
            plan.add(kind, shard=shard, at=at, duration=duration)
        return plan

    def add(
        self,
        kind: str,
        *,
        shard: int,
        at: int | None = None,
        duration: float = 0.0,
        op: str | None = None,
    ) -> int:
        """Schedule one fault; returns its id (used for disarming)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        if kind != "wal" and (at is None or at < 1):
            raise ValueError(f"fault kind {kind!r} needs a 1-based position")
        with self._lock:
            fault_id = len(self._faults) + 1
            self._faults.append(
                {
                    "id": fault_id,
                    "kind": kind,
                    "shard": int(shard),
                    "at": None if at is None else int(at),
                    "duration": float(duration),
                    "op": op,
                    "armed": True,
                }
            )
        return fault_id

    def disarm(self, fault_id: int) -> bool:
        """Mark one fault fired; returns whether it was still armed."""
        with self._lock:
            for fault in self._faults:
                if fault["id"] == fault_id:
                    was_armed = fault["armed"]
                    fault["armed"] = False
                    return was_armed
        return False

    def disarm_earliest(
        self, shard: int, kinds: Iterable[str] = ("crash", "stall")
    ) -> "dict[str, Any] | None":
        """Disarm the earliest-positioned armed fault of ``kinds`` on a shard.

        The supervisor calls this when a worker dies without reporting
        which fault killed it (process crashes exit hard): faults fire in
        position order, so the earliest armed one is the one that fired.
        """
        kinds = tuple(kinds)
        with self._lock:
            candidates = [
                fault
                for fault in self._faults
                if fault["armed"]
                and fault["shard"] == shard
                and fault["kind"] in kinds
            ]
            if not candidates:
                return None
            earliest = min(candidates, key=lambda fault: fault["at"] or 0)
            earliest["armed"] = False
            return dict(earliest)

    def armed(self, shard: int | None = None, kind: str | None = None) -> list[dict]:
        """Copies of the still-armed faults, optionally filtered."""
        with self._lock:
            return [
                dict(fault)
                for fault in self._faults
                if fault["armed"]
                and (shard is None or fault["shard"] == shard)
                and (kind is None or fault["kind"] == kind)
            ]

    def worker_config(self, shard: int, start_count: int = 0) -> "dict | None":
        """The plain-dict fault config one worker needs, or ``None``.

        Only dispatch-level kinds cross into workers (``queue``/``wal``
        faults live in parent-side hooks).  ``start_count`` is the
        recovering checkpoint's delivery count, so replayed workers keep
        counting absolute ordinals.
        """
        faults = [
            fault
            for fault in self.armed(shard=shard)
            if fault["kind"] in ("crash", "stall", "poison", "serialize")
        ]
        if not faults:
            return None
        return {"faults": faults, "start_count": int(start_count)}

    # -- parent-side hooks ----------------------------------------------------

    def queue_delay_hook(self, shard: int) -> "Callable[[], float] | None":
        """A per-put delay callable for one shard's queue, or ``None``.

        Counts producer puts; when the count hits an armed ``queue``
        fault's position, disarms it and returns its duration (the queue
        sleeps while holding no locks, simulating a saturation stall).
        """
        if not self.armed(shard=shard, kind="queue"):
            return None
        puts = [0]

        def delay() -> float:
            puts[0] += 1
            for fault in self.armed(shard=shard, kind="queue"):
                if fault["at"] == puts[0]:
                    self.disarm(fault["id"])
                    return fault["duration"]
            return 0.0

        return delay

    def wal_fault_hook(self, shard: int) -> "Callable[[str], None] | None":
        """A ``WalWriter`` fault hook for one shard's journal, or ``None``.

        Counts append operations; an armed ``wal`` fault at that count
        (or with no position: the next write) raises ``ENOSPC``, which
        the hardened writer converts into a typed
        :class:`~repro.core.errors.WalWriteError`.
        """
        if not self.armed(shard=shard, kind="wal"):
            return None
        writes = [0]

        def hook(op: str) -> None:
            if op != "append":
                return
            writes[0] += 1
            for fault in self.armed(shard=shard, kind="wal"):
                if fault["op"] not in (None, op):
                    continue
                if fault["at"] in (None, writes[0]):
                    self.disarm(fault["id"])
                    raise OSError(errno_module.ENOSPC, "injected: no space left")

        return hook


class WorkerFaultState:
    """Per-worker fault runtime: absolute delivery counting + due faults.

    Built from :meth:`FaultPlan.worker_config` (a plain dict, safe across
    the fork boundary).  ``count`` is the number of fully dispatched
    deliveries; fault positions are checked against ``count + 1`` — the
    ordinal of the delivery about to dispatch.
    """

    __slots__ = ("count", "faults", "quarantined")

    def __init__(self, config: "Mapping[str, Any] | None"):
        config = config or {}
        self.count = int(config.get("start_count", 0))
        self.faults = [dict(fault) for fault in config.get("faults", ())]
        self.quarantined = 0

    def due(self, position: int) -> "dict[str, Any] | None":
        for fault in self.faults:
            if fault["armed"] and fault["at"] == position:
                return fault
        return None

    def consume(self, fault: Mapping[str, Any]) -> None:
        for candidate in self.faults:
            if candidate["id"] == fault["id"]:
                candidate["armed"] = False
                return


class QuarantinePolicy:
    """Retry-then-quarantine parameters for poison deliveries."""

    __slots__ = ("retries", "backoff")

    def __init__(self, retries: int = 2, backoff: float = 0.01):
        self.retries = int(retries)
        self.backoff = float(backoff)

    def to_config(self) -> dict:
        return {"retries": self.retries, "backoff": self.backoff}

    @classmethod
    def from_config(cls, config: "Mapping[str, Any] | None") -> "QuarantinePolicy | None":
        if config is None:
            return None
        return cls(config.get("retries", 2), config.get("backoff", 0.01))


def supervised_dispatch(
    engine: Any,
    items: Iterable[tuple],
    state: "WorkerFaultState | None" = None,
    quarantine: "QuarantinePolicy | None" = None,
    on_quarantine: "Callable[[tuple, BaseException, int], None] | None" = None,
) -> int:
    """Dispatch routed deliveries one at a time under fault supervision.

    Per-delivery dispatch keeps quarantine exact: when a delivery raises,
    every earlier delivery has fully dispatched and no later one has
    started, so retrying or skipping the poisoned delivery never double-
    steps its neighbours.  (``emit_selected_batch`` iterates deliveries
    independently, so per-delivery calls are semantically identical to
    one batched call — the batch only amortizes call overhead.)

    Behaviour per delivery, in order: a due ``crash`` fault raises
    :class:`InjectedCrash` *before* dispatch (the delivery replays after
    recovery); a due ``stall`` sleeps its duration, then dispatch
    proceeds; a due ``poison``/``serialize`` fault — or a real dispatch
    exception — is retried ``quarantine.retries`` times with exponential
    backoff, then handed to ``on_quarantine`` (without it, re-raised).

    Returns the number of deliveries consumed (dispatched or
    quarantined).  ``state.count`` advances per consumed delivery.
    """
    consumed = 0
    for item in items:
        poison = None
        if state is not None:
            fault = state.due(state.count + 1)
            if fault is not None:
                kind = fault["kind"]
                if kind == "crash":
                    raise InjectedCrash(fault["id"])
                if kind == "stall":
                    state.consume(fault)
                    if fault["duration"] > 0:
                        time.sleep(fault["duration"])
                else:  # poison / serialize: armed through every retry
                    poison = fault
        try:
            if poison is not None:
                raise InjectedPoison(poison["id"], poison["kind"])
            engine.emit_selected_batch([item])
        except InjectedCrash:
            raise
        except BaseException as exc:
            attempts = 1
            failure = exc
            handled = False
            retries = quarantine.retries if quarantine is not None else 0
            backoff = quarantine.backoff if quarantine is not None else 0.0
            while attempts <= retries:
                if backoff > 0:
                    time.sleep(backoff * (2 ** (attempts - 1)))
                attempts += 1
                try:
                    if poison is not None:
                        raise InjectedPoison(poison["id"], poison["kind"])
                    engine.emit_selected_batch([item])
                except InjectedCrash:
                    raise
                except BaseException as retry_exc:
                    failure = retry_exc
                else:
                    handled = True
                    break
            if poison is not None and state is not None:
                state.consume(poison)
            if not handled:
                if on_quarantine is None:
                    raise
                on_quarantine(item, failure, attempts)
                if state is not None:
                    state.quarantined += 1
        if state is not None:
            state.count += 1
        consumed += 1
    return consumed


# -- WAL / checkpoint corruption helpers --------------------------------------


def tear_wal_tail(directory: str, keep_fraction: float = 0.5) -> int:
    """Tear the last WAL segment: truncate mid-record, leaving a torn tail.

    Cuts the final record line down to ``keep_fraction`` of its bytes (no
    trailing newline), exactly what a crash mid-``write`` leaves behind.
    Returns how many bytes were removed; 0 when the segment has no
    records to tear.
    """
    from .persist.wal import wal_segments

    segments = wal_segments(directory)
    if not segments:
        return 0
    path = segments[-1][1]
    with open(path, "rb") as handle:
        lines = handle.readlines()
    if len(lines) < 2:  # header only: nothing to tear
        return 0
    last = lines[-1]
    keep = max(1, int(len(last) * keep_fraction))
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - len(last) + keep)
    return len(last) - keep


def corrupt_checkpoint(path: str, offset: int = -2) -> None:
    """Flip one byte of a checkpoint body so its CRC check rejects it."""
    with open(path, "r+b") as handle:
        handle.seek(offset, os.SEEK_END)
        byte = handle.read(1)
        handle.seek(offset, os.SEEK_END)
        handle.write(bytes([byte[0] ^ 0xFF]))
