"""Formalism plugins: FSM, ERE, past-LTL, and CFG.

Each plugin compiles its concrete syntax into a
:class:`~repro.core.monitor.MonitorTemplate`; the finite-state plugins (FSM,
ERE, LTL) share the FSM coenable/enable fixpoints of Section 3, while the
CFG plugin implements the grammar-level G/C fixpoint.
"""

from .cfg import CFGMonitor, CFGTemplate, Grammar, compile_cfg, parse_cfg
from .earley import EarleyRecognizer
from .ere import compile_ere, ere_to_fsm, minimize_fsm, parse_ere
from .fsm import (
    FSM,
    FSMMonitor,
    FSMTemplate,
    compile_fsm,
    fsm_coenable,
    fsm_enable,
    parse_fsm,
    seeable_sets,
)
from .ltl import compile_ltl, ltl_to_fsm, parse_ltl
from .raw import RawMonitor, RawTemplate, functional_template

__all__ = [
    "CFGMonitor",
    "CFGTemplate",
    "Grammar",
    "compile_cfg",
    "parse_cfg",
    "EarleyRecognizer",
    "compile_ere",
    "ere_to_fsm",
    "minimize_fsm",
    "parse_ere",
    "FSM",
    "FSMMonitor",
    "FSMTemplate",
    "compile_fsm",
    "fsm_coenable",
    "fsm_enable",
    "parse_fsm",
    "seeable_sets",
    "compile_ltl",
    "ltl_to_fsm",
    "parse_ltl",
    "RawMonitor",
    "RawTemplate",
    "functional_template",
]
