"""Context-free grammars (the ``cfg`` plugin of Figure 4).

A CFG monitor classifies traces *in* the language into ``match``; prefixes
that no extension can complete into ``fail``; everything else is ``?``.
Monitoring is done with an incremental Earley recognizer
(:mod:`repro.formalism.earley`).

Coenable sets are the paper's Section 3 CFG fixpoint::

    G(ε)     = {∅}          G(e) = {{e}}         G(A) = ∪_{A→β} G(β)
    G(β1 β2) = {T1 ∪ T2 | T1 in G(β1), T2 in G(β2)}
    C(x)     = {T1 ∪ T2 | A → β1 x β2, T1 in C(A), T2 in G(β2)}
    COENABLE_{P,{match}}(e) = C(e)

seeded with ``∅ in C(start)`` and iterated to the least fixpoint over the
(finite) lattice ``P(P(E))``.  The ENABLE dual used for monitor-creation
pruning mirrors ``C`` with *prefix* families ``G(β1)``.

This plugin deliberately reports ``supports_state_gc = False``: the paper
points out that a Tracematches-style state-indexed technique cannot apply to
context-free properties (the state space is unbounded), while coenable sets
— a function of events, not states — still work.  The engine raises
:class:`~repro.core.errors.UnsupportedFormalismError` when the state-based
strategy meets a CFG property, reproducing that limitation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.errors import FormalismError, SpecSyntaxError, UnknownEventError
from ..core.monitor import BaseMonitor, MonitorTemplate, SetOfEventSets
from ..core.coenable import drop_empty_sets
from ..core.verdicts import FAIL, MATCH, UNKNOWN
from .earley import EarleyRecognizer

__all__ = ["Grammar", "parse_cfg", "CFGMonitor", "CFGTemplate", "compile_cfg"]

#: Spelling of the empty word in the concrete syntax (Figure 4).
EPSILON_NAME = "epsilon"


@dataclass(frozen=True)
class Grammar:
    """An immutable CFG ``(N, E, S, Π)``.

    ``productions`` maps each nonterminal to a tuple of alternatives, each an
    (possibly empty) tuple of symbols.  Symbols not in ``productions`` are
    terminals.
    """

    productions: Mapping[str, tuple[tuple[str, ...], ...]]
    start: str

    def __post_init__(self) -> None:
        if self.start not in self.productions:
            raise FormalismError(f"start symbol {self.start!r} has no productions")

    @property
    def nonterminals(self) -> frozenset[str]:
        return frozenset(self.productions)

    @property
    def terminals(self) -> frozenset[str]:
        result: set[str] = set()
        for alternatives in self.productions.values():
            for rhs in alternatives:
                result.update(symbol for symbol in rhs if symbol not in self.productions)
        return frozenset(result)

    def reduced(self) -> "Grammar":
        """Remove unproductive and unreachable symbols.

        Required for the Earley fail check to be exact (see
        :mod:`repro.formalism.earley`); also tightens the coenable fixpoint.
        A grammar whose start symbol is unproductive denotes the empty
        language, which is rejected — monitoring it would be pointless.
        """
        # Productive: derives some terminal string.
        productive: set[str] = set()
        changed = True
        while changed:
            changed = False
            for lhs, alternatives in self.productions.items():
                if lhs in productive:
                    continue
                for rhs in alternatives:
                    if all(s in productive or s not in self.productions for s in rhs):
                        productive.add(lhs)
                        changed = True
                        break
        if self.start not in productive:
            raise FormalismError(
                f"grammar generates the empty language (start symbol "
                f"{self.start!r} is unproductive)"
            )
        # Reachable (through productive productions only).
        reachable = {self.start}
        frontier = [self.start]
        pruned: dict[str, tuple[tuple[str, ...], ...]] = {}
        while frontier:
            symbol = frontier.pop()
            keep = tuple(
                rhs
                for rhs in self.productions[symbol]
                if all(s not in self.productions or s in productive for s in rhs)
            )
            pruned[symbol] = keep
            for rhs in keep:
                for child in rhs:
                    if child in self.productions and child not in reachable:
                        reachable.add(child)
                        frontier.append(child)
        return Grammar(productions=pruned, start=self.start)

    def generate(self, max_length: int) -> set[tuple[str, ...]]:
        """All words of the language up to ``max_length`` (test oracle).

        Breadth-first expansion of sentential forms; exponential, intended
        only for the tiny grammars of unit tests.
        """
        words: set[tuple[str, ...]] = set()
        seen: set[tuple[str, ...]] = set()
        frontier: list[tuple[str, ...]] = [(self.start,)]
        while frontier:
            form = frontier.pop()
            terminal_prefix = sum(1 for s in form if s not in self.productions)
            if terminal_prefix > max_length or len([s for s in form if s not in self.productions]) > max_length:
                continue
            expansion_point = next(
                (i for i, s in enumerate(form) if s in self.productions), None
            )
            if expansion_point is None:
                if len(form) <= max_length:
                    words.add(form)
                continue
            for rhs in self.productions[form[expansion_point]]:
                candidate = form[:expansion_point] + rhs + form[expansion_point + 1 :]
                if len([s for s in candidate if s not in self.productions]) <= max_length and candidate not in seen:
                    seen.add(candidate)
                    frontier.append(candidate)
        return words


def parse_cfg(text: str) -> Grammar:
    """Parse the concrete syntax of Figure 4.

    One or more productions separated by newlines or by the next
    ``Name ->`` head; alternatives separated by ``|``; ``epsilon`` is the
    empty word.  The first left-hand side is the start symbol ("the first
    symbol seen is always assumed the start symbol").
    """
    tokens: list[str] = []
    for raw in text.replace("->", " -> ").replace("|", " | ").split():
        tokens.append(raw)
    if "->" not in tokens:
        raise SpecSyntaxError(f"no productions in CFG {text!r}")
    productions: dict[str, list[tuple[str, ...]]] = {}
    start: str | None = None
    index = 0
    while index < len(tokens):
        if index + 1 >= len(tokens) or tokens[index + 1] != "->":
            raise SpecSyntaxError(f"expected 'Name ->' at token {tokens[index]!r}")
        lhs = tokens[index]
        if start is None:
            start = lhs
        index += 2
        current: list[str] = []
        alternatives = productions.setdefault(lhs, [])

        def flush() -> None:
            if current == [EPSILON_NAME]:
                alternatives.append(())
            elif EPSILON_NAME in current:
                raise SpecSyntaxError(
                    f"'epsilon' cannot be mixed with other symbols in {lhs!r}"
                )
            else:
                alternatives.append(tuple(current))

        while index < len(tokens):
            token = tokens[index]
            if token == "|":
                flush()
                current = []
                index += 1
            elif index + 1 < len(tokens) and tokens[index + 1] == "->":
                break
            elif token == "->":
                raise SpecSyntaxError("misplaced '->' in CFG")
            else:
                current.append(token)
                index += 1
        flush()
    assert start is not None
    return Grammar(
        productions={lhs: tuple(alts) for lhs, alts in productions.items()},
        start=start,
    )


class CFGMonitor(BaseMonitor):
    """A running CFG monitor instance wrapping an Earley chart.

    The chart grows with the slice length (Earley needs origin sets for
    completion), so per-monitor memory is O(slice length x grammar); the
    paper's CFG property (SAFELOCK) produces slices bounded by lock-nesting
    depth, which keeps this small in practice.
    """

    __slots__ = ("_template", "_recognizer", "_verdict")

    def __init__(self, template: "CFGTemplate", recognizer: EarleyRecognizer | None = None):
        self._template = template
        self._recognizer = (
            recognizer if recognizer is not None else template._fresh_recognizer()
        )
        self._verdict = MATCH if self._recognizer.accepts() else UNKNOWN

    def step(self, event: str) -> str:
        if event not in self._template.alphabet:
            raise UnknownEventError(f"event {event!r} not in CFG alphabet")
        if self._verdict != FAIL:
            if event in self._template.grammar.terminals:
                self._recognizer.feed(event)
                if self._recognizer.is_dead():
                    self._verdict = FAIL
                else:
                    self._verdict = MATCH if self._recognizer.accepts() else UNKNOWN
            else:
                # An alphabet event that the grammar never mentions can only
                # break the derivation, exactly like an undefined FSM move.
                self._verdict = FAIL
        return self._verdict

    def verdict(self) -> str:
        return self._verdict

    def clone(self) -> "CFGMonitor":
        copy = CFGMonitor(self._template, self._recognizer.clone())
        copy._verdict = self._verdict
        return copy

    def snapshot_state(self) -> dict:
        return {"verdict": self._verdict, "chart": self._recognizer.chart_payload()}

    def is_dead(self) -> bool:
        return self._verdict == FAIL


class CFGTemplate(MonitorTemplate):
    """Monitor template for a context-free property."""

    def __init__(self, grammar: Grammar, alphabet: Iterable[str] | None = None):
        self.grammar = grammar.reduced()
        terminals = self.grammar.terminals
        self._alphabet = frozenset(alphabet) if alphabet is not None else terminals
        extra = terminals - self._alphabet
        if extra:
            raise FormalismError(
                f"grammar mentions events outside the declared alphabet: {sorted(extra)}"
            )
        self._coenable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}
        self._enable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}

    def _fresh_recognizer(self) -> EarleyRecognizer:
        return EarleyRecognizer(
            productions=dict(self.grammar.productions),
            start=self.grammar.start,
            terminals=self.grammar.terminals,
        )

    @property
    def alphabet(self) -> frozenset[str]:
        return self._alphabet

    @property
    def categories(self) -> frozenset[str]:
        return frozenset({MATCH, FAIL, UNKNOWN})

    def create(self) -> CFGMonitor:
        return CFGMonitor(self)

    def monitor_from_state(self, payload: dict) -> CFGMonitor:
        recognizer = EarleyRecognizer.from_chart_payload(
            payload["chart"],
            productions=dict(self.grammar.productions),
            start=self.grammar.start,
            terminals=self.grammar.terminals,
        )
        monitor = CFGMonitor(self, recognizer)
        monitor._verdict = payload["verdict"]
        return monitor

    @property
    def supports_state_gc(self) -> bool:
        return False

    def coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        """Coenable families for ``goal``.

        The paper's G/C fixpoint covers exactly the goal ``{match}``.  For any
        other goal (e.g. SAFELOCK's ``@fail`` handler: a *fail* can be caused
        by events binding only a subset of the parameters, so no event-based
        liveness requirement is sound) this returns the conservative family
        ``{∅}`` per event — its ALIVENESS formula is constant *true*, so the
        coenable strategy never prunes and collection falls back to the
        all-parameters-dead rule.
        """
        if goal != frozenset({MATCH}):
            conservative = frozenset({frozenset()})
            return {event: conservative for event in self._alphabet}
        if goal not in self._coenable_cache:
            self._coenable_cache[goal] = self._suffix_families()
        return self._coenable_cache[goal]

    def enable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        """ENABLE families for ``goal``; conservative for goals other than
        ``{match}``: the full powerset of the alphabet per event, so every
        event may create monitors and may extend any defined sub-instance."""
        if goal != frozenset({MATCH}):
            alphabet = sorted(self._alphabet)
            conservative = frozenset(
                frozenset(subset)
                for mask in range(1 << len(alphabet))
                for subset in [
                    [alphabet[bit] for bit in range(len(alphabet)) if mask >> bit & 1]
                ]
            )
            return {event: conservative for event in self._alphabet}
        if goal not in self._enable_cache:
            self._enable_cache[goal] = self._prefix_families()
        return self._enable_cache[goal]

    # -- the Section 3 fixpoints -------------------------------------------

    def _generated_families(self) -> dict[str, SetOfEventSets]:
        """``G(A)`` for every nonterminal: event-set families of derivations."""
        grammar = self.grammar
        families: dict[str, set[frozenset[str]]] = {
            nonterminal: set() for nonterminal in grammar.nonterminals
        }

        def of_sequence(
            rhs: Sequence[str], table: dict[str, set[frozenset[str]]]
        ) -> set[frozenset[str]]:
            result: set[frozenset[str]] = {frozenset()}
            for symbol in rhs:
                part = (
                    table[symbol]
                    if symbol in grammar.nonterminals
                    else {frozenset({symbol})}
                )
                result = {t1 | t2 for t1, t2 in itertools.product(result, part)}
                if not result:
                    return set()
            return result

        changed = True
        while changed:
            changed = False
            for lhs, alternatives in grammar.productions.items():
                for rhs in alternatives:
                    for family in of_sequence(rhs, families):
                        if family not in families[lhs]:
                            families[lhs].add(family)
                            changed = True
        return {
            nonterminal: frozenset(family) for nonterminal, family in families.items()
        }

    def _context_families(self, suffix: bool) -> dict[str, SetOfEventSets]:
        """``C(x)`` for every symbol: the paper's coenable fixpoint.

        With ``suffix=True`` this is the coenable direction (what can follow
        an occurrence of ``x``); with ``suffix=False`` the ENABLE dual (what
        can precede it).
        """
        grammar = self.grammar
        generated = self._generated_families()

        def sequence_family(rhs: Sequence[str]) -> SetOfEventSets:
            result: set[frozenset[str]] = {frozenset()}
            for symbol in rhs:
                part = (
                    generated[symbol]
                    if symbol in grammar.nonterminals
                    else frozenset({frozenset({symbol})})
                )
                result = {t1 | t2 for t1, t2 in itertools.product(result, part)}
            return frozenset(result)

        symbols = set(grammar.nonterminals) | set(grammar.terminals)
        context: dict[str, set[frozenset[str]]] = {symbol: set() for symbol in symbols}
        context[grammar.start].add(frozenset())
        changed = True
        while changed:
            changed = False
            for lhs, alternatives in grammar.productions.items():
                for rhs in alternatives:
                    for position, symbol in enumerate(rhs):
                        rest = rhs[position + 1 :] if suffix else rhs[:position]
                        rest_family = sequence_family(rest)
                        for t1 in list(context[lhs]):
                            for t2 in rest_family:
                                combined = t1 | t2
                                if combined not in context[symbol]:
                                    context[symbol].add(combined)
                                    changed = True
        return {symbol: frozenset(family) for symbol, family in context.items()}

    def _suffix_families(self) -> dict[str, SetOfEventSets]:
        context = self._context_families(suffix=True)
        result: dict[str, SetOfEventSets] = {}
        for event in self._alphabet:
            family = context.get(event, frozenset())
            result[event] = drop_empty_sets(family)
        return result

    def _prefix_families(self) -> dict[str, SetOfEventSets]:
        context = self._context_families(suffix=False)
        return {
            event: context.get(event, frozenset()) for event in self._alphabet
        }


def compile_cfg(grammar: Grammar | str, alphabet: Iterable[str] | None = None) -> CFGTemplate:
    """Compile a grammar (or its concrete syntax) into a monitor template."""
    if isinstance(grammar, str):
        grammar = parse_cfg(grammar)
    return CFGTemplate(grammar, alphabet)
