"""An incremental Earley recognizer — the CFG plugin's monitoring engine.

The CFG monitor must classify every *prefix* of the event stream into
``match`` (prefix in the language), ``fail`` (no extension can ever match),
or ``?``.  An Earley chart fed one token at a time supports exactly this:

* ``match``  — a completed start item spanning the whole prefix exists;
* ``fail``   — the current item set is empty after closure.

The fail check is *exact* — not merely conservative — because grammars are
normalized first (:func:`repro.formalism.cfg.Grammar.reduced`): with every
unproductive and unreachable symbol removed, any item surviving closure can
be extended to a full parse, so a viable prefix always leaves a non-empty
item set.

Epsilon productions are handled by running prediction and completion to a
joint fixpoint within each state set (this subsumes the Aycock–Horspool
nullable-prediction special case at a small constant cost, which is fine at
monitoring scale: the paper's grammars have a handful of productions).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["EarleyItem", "EarleyRecognizer"]


class EarleyItem:
    """A dotted production ``A -> α · β`` with an origin state-set index."""

    __slots__ = ("lhs", "rhs", "dot", "origin")

    def __init__(self, lhs: str, rhs: tuple[str, ...], dot: int, origin: int):
        self.lhs = lhs
        self.rhs = rhs
        self.dot = dot
        self.origin = origin

    @property
    def next_symbol(self) -> str | None:
        return self.rhs[self.dot] if self.dot < len(self.rhs) else None

    @property
    def is_complete(self) -> bool:
        return self.dot >= len(self.rhs)

    def advanced(self) -> "EarleyItem":
        return EarleyItem(self.lhs, self.rhs, self.dot + 1, self.origin)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EarleyItem):
            return NotImplemented
        return (self.lhs, self.rhs, self.dot, self.origin) == (
            other.lhs,
            other.rhs,
            other.dot,
            other.origin,
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.dot, self.origin))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        before = " ".join(self.rhs[: self.dot])
        after = " ".join(self.rhs[self.dot :])
        return f"[{self.lhs} -> {before} · {after}, {self.origin}]"


class EarleyRecognizer:
    """An Earley chart driven one terminal at a time.

    ``productions`` maps each nonterminal to its alternatives (tuples of
    symbols); ``start`` is the start nonterminal; ``terminals`` the terminal
    alphabet.  The grammar is assumed reduced (see module docstring) for the
    fail check to be exact.
    """

    def __init__(
        self,
        productions: dict[str, tuple[tuple[str, ...], ...]],
        start: str,
        terminals: frozenset[str],
    ):
        self._productions = productions
        self._start = start
        self._terminals = terminals
        initial = {
            EarleyItem(start, rhs, 0, 0) for rhs in productions.get(start, ())
        }
        self._sets: list[set[EarleyItem]] = [initial]
        self._close(0)

    # -- public protocol ------------------------------------------------------

    @property
    def position(self) -> int:
        """Number of terminals consumed so far."""
        return len(self._sets) - 1

    def feed(self, terminal: str) -> None:
        """Scan one terminal, building the next state set."""
        current = self._sets[-1]
        advanced = {
            item.advanced()
            for item in current
            if item.next_symbol == terminal
        }
        self._sets.append(advanced)
        self._close(len(self._sets) - 1)

    def accepts(self) -> bool:
        """Whether the prefix consumed so far is in the language."""
        position = len(self._sets) - 1
        return any(
            item.is_complete and item.lhs == self._start and item.origin == 0
            for item in self._sets[position]
        )

    def is_dead(self) -> bool:
        """Whether no extension of the consumed prefix can ever be accepted."""
        return not self._sets[-1]

    def clone(self) -> "EarleyRecognizer":
        """An independent copy (the chart's item sets are copied; items are
        immutable and safely shared)."""
        other = object.__new__(EarleyRecognizer)
        other._productions = self._productions
        other._start = self._start
        other._terminals = self._terminals
        other._sets = [set(state_set) for state_set in self._sets]
        return other

    def recognize(self, word: Sequence[str]) -> bool:
        """Convenience: feed a whole word and report acceptance."""
        for terminal in word:
            self.feed(terminal)
        return self.accepts()

    def chart_payload(self) -> list[list[list]]:
        """The chart as JSON-serializable data: one list of
        ``[lhs, rhs, dot, origin]`` quadruples per state set, sorted for a
        deterministic encoding (item sets are unordered)."""
        return [
            sorted(
                [item.lhs, list(item.rhs), item.dot, item.origin]
                for item in state_set
            )
            for state_set in self._sets
        ]

    @classmethod
    def from_chart_payload(
        cls,
        payload: Sequence[Sequence[Sequence]],
        productions: dict[str, tuple[tuple[str, ...], ...]],
        start: str,
        terminals: frozenset[str],
    ) -> "EarleyRecognizer":
        """Rebuild a recognizer from :meth:`chart_payload` output."""
        other = object.__new__(cls)
        other._productions = productions
        other._start = start
        other._terminals = terminals
        other._sets = [
            {
                EarleyItem(lhs, tuple(rhs), dot, origin)
                for lhs, rhs, dot, origin in state_set
            }
            for state_set in payload
        ]
        return other

    # -- internals --------------------------------------------------------------

    def _close(self, position: int) -> None:
        """Run prediction + completion to fixpoint on state set ``position``."""
        state_set = self._sets[position]
        worklist = list(state_set)
        while worklist:
            item = worklist.pop()
            symbol = item.next_symbol
            if symbol is None:
                # Completion: advance items in the origin set waiting on lhs.
                for parent in list(self._sets[item.origin]):
                    if parent.next_symbol == item.lhs:
                        advanced = parent.advanced()
                        if advanced not in state_set:
                            state_set.add(advanced)
                            worklist.append(advanced)
            elif symbol not in self._terminals:
                # Prediction.
                for rhs in self._productions.get(symbol, ()):
                    predicted = EarleyItem(symbol, rhs, 0, position)
                    if predicted not in state_set:
                        state_set.add(predicted)
                        worklist.append(predicted)
                # Nullable completion: ``symbol`` may already have completed
                # within this very set (epsilon derivation), in which case the
                # usual completion pass ran before this item existed.
                if any(
                    other.is_complete and other.lhs == symbol and other.origin == position
                    for other in list(state_set)
                ):
                    advanced = item.advanced()
                    if advanced not in state_set:
                        state_set.add(advanced)
                        worklist.append(advanced)
