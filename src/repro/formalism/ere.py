"""Extended regular expressions (the ``ere`` plugin of Figure 3).

"Extended" as in JavaMOP/RV: besides union, concatenation and repetition,
patterns may use intersection (``&``) and complement (``~``).  Expressions
are compiled to deterministic finite state machines with **Brzozowski
derivatives** — complement and intersection fall out for free, and the
similarity normalization applied by the smart constructors guarantees the
derivative closure is finite, so DFA construction terminates.

The resulting :class:`~repro.formalism.fsm.FSMTemplate` reuses the FSM
coenable/enable fixpoints, which is how the paper's worked UNSAFEITER
coenable sets are reproduced (see ``tests/core/test_coenable_paper_examples``).

Verdicts: ``match`` for accepting states, ``fail`` for states from which no
accepting state is reachable, ``?`` otherwise — exactly the three-way
classification of Section 2 (``P_UNSAFEITER``).
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import FormalismError, SpecSyntaxError
from ..core.verdicts import FAIL, MATCH, UNKNOWN
from .fsm import FSM, FSMTemplate

__all__ = [
    "Ere",
    "EMPTY",
    "EPSILON",
    "symbol",
    "concat",
    "union",
    "intersect",
    "complement",
    "star",
    "plus",
    "optional",
    "nullable",
    "derivative",
    "parse_ere",
    "ere_to_fsm",
    "compile_ere",
]


class Ere:
    """Base class for ERE abstract-syntax nodes.

    Nodes are immutable, hashable, and built only through the smart
    constructors below, which apply the similarity rules (associativity,
    commutativity and idempotence of ``|`` and ``&``, unit/absorbing
    elements, ``r** = r*``) needed for derivative-closure finiteness.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ere[{format_ere(self)}]"


class _Empty(Ere):
    __slots__ = ()
    _instance: "_Empty | None" = None

    def __new__(cls) -> "_Empty":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


class _Epsilon(Ere):
    __slots__ = ()
    _instance: "_Epsilon | None" = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


class _Symbol(Ere):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Symbol) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("sym", self.name))


class _Concat(Ere):
    __slots__ = ("parts",)

    def __init__(self, parts: tuple[Ere, ...]):
        self.parts = parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Concat) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("concat", self.parts))


class _Union(Ere):
    __slots__ = ("parts",)

    def __init__(self, parts: frozenset[Ere]):
        self.parts = parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Union) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("union", self.parts))


class _Intersect(Ere):
    __slots__ = ("parts",)

    def __init__(self, parts: frozenset[Ere]):
        self.parts = parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Intersect) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("intersect", self.parts))


class _Star(Ere):
    __slots__ = ("body",)

    def __init__(self, body: Ere):
        self.body = body

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Star) and other.body == self.body

    def __hash__(self) -> int:
        return hash(("star", self.body))


class _Complement(Ere):
    __slots__ = ("body",)

    def __init__(self, body: Ere):
        self.body = body

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Complement) and other.body == self.body

    def __hash__(self) -> int:
        return hash(("complement", self.body))


#: The empty language ``∅``.
EMPTY: Ere = _Empty()

#: The empty word ``ε`` (spelled ``epsilon`` in the concrete syntax).
EPSILON: Ere = _Epsilon()


def symbol(name: str) -> Ere:
    """A single-event pattern."""
    return _Symbol(name)


def concat(*parts: Ere) -> Ere:
    """Concatenation with unit ``ε`` and absorbing ``∅``, flattened."""
    flat: list[Ere] = []
    for part in parts:
        if part is EMPTY:
            return EMPTY
        if part is EPSILON:
            continue
        if isinstance(part, _Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return _Concat(tuple(flat))


def union(*parts: Ere) -> Ere:
    """Union, flattened and deduplicated, with unit ``∅``."""
    flat: set[Ere] = set()
    for part in parts:
        if part is EMPTY:
            continue
        if isinstance(part, _Union):
            flat |= part.parts
        else:
            flat.add(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return next(iter(flat))
    return _Union(frozenset(flat))


def intersect(*parts: Ere) -> Ere:
    """Intersection, flattened and deduplicated, with absorbing ``∅``."""
    flat: set[Ere] = set()
    for part in parts:
        if part is EMPTY:
            return EMPTY
        if isinstance(part, _Intersect):
            flat |= part.parts
        else:
            flat.add(part)
    if not flat:
        raise FormalismError("intersection of zero patterns is the universal language; spell it ~empty")
    if len(flat) == 1:
        return next(iter(flat))
    return _Intersect(frozenset(flat))


def star(body: Ere) -> Ere:
    """Kleene star with ``∅* = ε* = ε`` and ``r** = r*``."""
    if body is EMPTY or body is EPSILON:
        return EPSILON
    if isinstance(body, _Star):
        return body
    return _Star(body)


def plus(body: Ere) -> Ere:
    """``r+  =  r r*``."""
    return concat(body, star(body))


def optional(body: Ere) -> Ere:
    """``r?  =  ε | r``."""
    return union(EPSILON, body)


def complement(body: Ere) -> Ere:
    """Language complement with double-negation elimination."""
    if isinstance(body, _Complement):
        return body.body
    return _Complement(body)


def symbols_of(expr: Ere) -> frozenset[str]:
    """Every event name mentioned by the expression."""
    if isinstance(expr, _Symbol):
        return frozenset({expr.name})
    if isinstance(expr, _Concat):
        return frozenset().union(*(symbols_of(p) for p in expr.parts))
    if isinstance(expr, (_Union, _Intersect)):
        return frozenset().union(*(symbols_of(p) for p in expr.parts))
    if isinstance(expr, (_Star, _Complement)):
        return symbols_of(expr.body)
    return frozenset()


def nullable(expr: Ere) -> bool:
    """Whether ``ε`` is in the language of ``expr``."""
    if expr is EPSILON:
        return True
    if expr is EMPTY or isinstance(expr, _Symbol):
        return False
    if isinstance(expr, _Star):
        return True
    if isinstance(expr, _Concat):
        return all(nullable(part) for part in expr.parts)
    if isinstance(expr, _Union):
        return any(nullable(part) for part in expr.parts)
    if isinstance(expr, _Intersect):
        return all(nullable(part) for part in expr.parts)
    if isinstance(expr, _Complement):
        return not nullable(expr.body)
    raise FormalismError(f"unknown ERE node {expr!r}")


def derivative(expr: Ere, event: str) -> Ere:
    """The Brzozowski derivative ``d_event(expr)``."""
    if expr is EMPTY or expr is EPSILON:
        return EMPTY
    if isinstance(expr, _Symbol):
        return EPSILON if expr.name == event else EMPTY
    if isinstance(expr, _Concat):
        head, tail = expr.parts[0], concat(*expr.parts[1:])
        result = concat(derivative(head, event), tail)
        if nullable(head):
            result = union(result, derivative(tail, event))
        return result
    if isinstance(expr, _Union):
        return union(*(derivative(part, event) for part in expr.parts))
    if isinstance(expr, _Intersect):
        return intersect(*(derivative(part, event) for part in expr.parts))
    if isinstance(expr, _Star):
        return concat(derivative(expr.body, event), expr)
    if isinstance(expr, _Complement):
        return complement(derivative(expr.body, event))
    raise FormalismError(f"unknown ERE node {expr!r}")


def format_ere(expr: Ere) -> str:
    """Render an expression back to the concrete syntax."""
    if expr is EMPTY:
        return "empty"
    if expr is EPSILON:
        return "epsilon"
    if isinstance(expr, _Symbol):
        return expr.name
    if isinstance(expr, _Concat):
        return " ".join(_format_tight(part) for part in expr.parts)
    if isinstance(expr, _Union):
        return " | ".join(sorted(format_ere(part) for part in expr.parts))
    if isinstance(expr, _Intersect):
        return " & ".join(sorted(_format_tight(part) for part in expr.parts))
    if isinstance(expr, _Star):
        return f"{_format_tight(expr.body)}*"
    if isinstance(expr, _Complement):
        return f"~{_format_tight(expr.body)}"
    raise FormalismError(f"unknown ERE node {expr!r}")


def _format_tight(expr: Ere) -> str:
    text = format_ere(expr)
    if isinstance(expr, (_Union, _Concat, _Intersect)):
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Concrete-syntax parser
# ---------------------------------------------------------------------------

_PUNCT = {"(", ")", "|", "&", "~", "*", "+", "?"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
        elif char in _PUNCT:
            tokens.append(char)
            index += 1
        elif char.isalpha() or char == "_":
            start = index
            while index < len(text) and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(text[start:index])
        else:
            raise SpecSyntaxError(f"unexpected character {char!r} in ERE {text!r}")
    return tokens


class _EreParser:
    """Recursive-descent parser for the concrete ERE syntax.

    Grammar (loosest to tightest binding)::

        union   := inter ('|' inter)*
        inter   := cat ('&' cat)*
        cat     := repeat+
        repeat  := atom ('*' | '+' | '?')*
        atom    := EVENT | 'epsilon' | 'empty' | '~' atom | '(' union ')'
    """

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> Ere:
        expr = self._union()
        if self._pos != len(self._tokens):
            raise SpecSyntaxError(f"trailing tokens in ERE: {self._tokens[self._pos:]!r}")
        return expr

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise SpecSyntaxError("unexpected end of ERE")
        self._pos += 1
        return token

    def _union(self) -> Ere:
        parts = [self._inter()]
        while self._peek() == "|":
            self._take()
            parts.append(self._inter())
        return union(*parts)

    def _inter(self) -> Ere:
        parts = [self._cat()]
        while self._peek() == "&":
            self._take()
            parts.append(self._cat())
        return intersect(*parts) if len(parts) > 1 else parts[0]

    def _cat(self) -> Ere:
        parts = [self._repeat()]
        while True:
            token = self._peek()
            if token is None or token in {")", "|", "&"}:
                break
            parts.append(self._repeat())
        return concat(*parts)

    def _repeat(self) -> Ere:
        expr = self._atom()
        while self._peek() in {"*", "+", "?"}:
            token = self._take()
            if token == "*":
                expr = star(expr)
            elif token == "+":
                expr = plus(expr)
            else:
                expr = optional(expr)
        return expr

    def _atom(self) -> Ere:
        token = self._take()
        if token == "(":
            expr = self._union()
            if self._take() != ")":
                raise SpecSyntaxError("expected ')' in ERE")
            return expr
        if token == "~":
            return complement(self._atom())
        if token == "epsilon":
            return EPSILON
        if token == "empty":
            return EMPTY
        if token in _PUNCT:
            raise SpecSyntaxError(f"unexpected token {token!r} in ERE")
        return symbol(token)


def parse_ere(text: str) -> Ere:
    """Parse the concrete ERE syntax, e.g. ``update* create next* update+ next``."""
    return _EreParser(_tokenize(text)).parse()


# ---------------------------------------------------------------------------
# DFA construction
# ---------------------------------------------------------------------------


def ere_to_fsm(expr: Ere | str, alphabet: Iterable[str]) -> FSM:
    """Compile an ERE to a DFA via the derivative closure, Moore-minimized.

    ``alphabet`` must cover every symbol of the pattern; events of the
    specification that do not occur in the pattern still drive transitions
    (their derivative is ``∅`` wherever they cannot extend a match, which is
    what makes them *fail* the pattern, per ERE plugin semantics).
    """
    if isinstance(expr, str):
        expr = parse_ere(expr)
    alphabet = frozenset(alphabet)
    missing = symbols_of(expr) - alphabet
    if missing:
        raise FormalismError(
            f"pattern mentions events outside the declared alphabet: {sorted(missing)}"
        )
    order = sorted(alphabet)
    states: dict[Ere, int] = {expr: 0}
    worklist = [expr]
    transitions: dict[tuple[int, str], int] = {}
    while worklist:
        source = worklist.pop()
        for event in order:
            target = derivative(source, event)
            if target not in states:
                states[target] = len(states)
                worklist.append(target)
            transitions[(states[source], event)] = states[target]
    verdicts: dict[int, str] = {}
    for state_expr, index in states.items():
        verdicts[index] = MATCH if nullable(state_expr) else UNKNOWN
    # States that cannot reach a match verdict are fails (dead).
    verdicts = _mark_dead_states(len(states), transitions, verdicts, order)
    fsm = FSM(
        states=tuple(f"s{i}" for i in range(len(states))),
        alphabet=alphabet,
        initial="s0",
        transitions={
            (f"s{src}", event): f"s{dst}" for (src, event), dst in transitions.items()
        },
        verdicts={f"s{i}": verdict for i, verdict in verdicts.items()},
    )
    return minimize_fsm(fsm)


def _mark_dead_states(
    count: int,
    transitions: dict[tuple[int, str], int],
    verdicts: dict[int, str],
    order: list[str],
) -> dict[int, str]:
    predecessors: dict[int, set[int]] = {i: set() for i in range(count)}
    for (src, _event), dst in transitions.items():
        predecessors[dst].add(src)
    alive = {i for i in range(count) if verdicts[i] == MATCH}
    frontier = list(alive)
    while frontier:
        state = frontier.pop()
        for pred in predecessors[state]:
            if pred not in alive:
                alive.add(pred)
                frontier.append(pred)
    return {
        i: (verdicts[i] if i in alive else FAIL) for i in range(count)
    }


def minimize_fsm(fsm: FSM) -> FSM:
    """Moore partition refinement, seeded by the verdict categories.

    The minimized machine is observationally equivalent (same verdict after
    every trace), which is all any analysis in this library depends on.
    """
    order = sorted(fsm.alphabet)
    # Initial partition: group by verdict category.
    block_of: dict[str, int] = {}
    categories: dict[str, int] = {}
    for state in fsm.states:
        category = fsm.verdict_of(state)
        block_of[state] = categories.setdefault(category, len(categories))
    changed = True
    while changed:
        changed = False
        signature: dict[str, tuple] = {}
        for state in fsm.states:
            successors = tuple(
                block_of.get(fsm.successor(state, event), -1) for event in order
            )
            signature[state] = (block_of[state], successors)
        remap: dict[tuple, int] = {}
        new_block_of: dict[str, int] = {}
        for state in fsm.states:
            new_block_of[state] = remap.setdefault(signature[state], len(remap))
        if new_block_of != block_of:
            block_of = new_block_of
            changed = True
    representatives: dict[int, str] = {}
    for state in fsm.states:
        representatives.setdefault(block_of[state], state)
    new_states = tuple(f"s{block}" for block in sorted(representatives))
    new_transitions: dict[tuple[str, str], str] = {}
    new_verdicts: dict[str, str] = {}
    for block, representative in representatives.items():
        new_verdicts[f"s{block}"] = fsm.verdict_of(representative)
        for event in order:
            successor = fsm.successor(representative, event)
            if successor is not None:
                new_transitions[(f"s{block}", event)] = f"s{block_of[successor]}"
    return FSM(
        states=new_states,
        alphabet=fsm.alphabet,
        initial=f"s{block_of[fsm.initial]}",
        transitions=new_transitions,
        verdicts=new_verdicts,
    )


def compile_ere(pattern: Ere | str, alphabet: Iterable[str]) -> FSMTemplate:
    """Compile an ERE pattern into a ready-to-run monitor template."""
    return FSMTemplate(ere_to_fsm(pattern, alphabet))
