"""Finite state machines: the FSM plugin and its static analyses.

Implements the FSM formalism of the paper (Figure 2) in the spirit of
Definition 8, plus the Section 3 least-fixpoint computations:

* ``SEEABLE(s)`` — the family of event sets occurring along paths from ``s``
  to a goal state;
* ``COENABLE_{P,G}(e) = ∪_{σ(s,e)=s'} SEEABLE(s')`` with ``∅`` dropped;
* the dual ``BEFORE``/``ENABLE`` fixpoint used for monitor-creation pruning
  (Chen et al., ASE'09).

FSM semantics follow the RV system: the verdict of a state is its category
under ``γ`` (by default the state's own name, which is how the paper's FSM
handlers like ``@error`` address states), and an *undefined* transition
sends the monitor to an implicit absorbing sink with category ``fail``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.errors import FormalismError
from ..core.monitor import BaseMonitor, MonitorTemplate, SetOfEventSets
from ..core.verdicts import FAIL
from ..core.coenable import drop_empty_sets

__all__ = ["FSM", "FSMMonitor", "FSMTemplate", "seeable_sets", "fsm_coenable", "fsm_enable"]

#: Name of the implicit absorbing sink reached by undefined transitions.
FAIL_SINK = "<fail>"


@dataclass(frozen=True)
class FSM:
    """An explicit finite state machine ``(S, E, C, ı, σ, γ)``.

    ``transitions`` maps ``(state, event)`` to the successor state;
    ``verdicts`` is ``γ`` — states absent from it verdict as their own name.
    The implicit fail sink is *not* listed in ``states``; it is synthesized
    by the monitor and the analyses.
    """

    states: tuple[str, ...]
    alphabet: frozenset[str]
    initial: str
    transitions: Mapping[tuple[str, str], str]
    verdicts: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        known = set(self.states)
        if self.initial not in known:
            raise FormalismError(f"initial state {self.initial!r} is not a state")
        for (state, event), successor in self.transitions.items():
            if state not in known:
                raise FormalismError(f"transition from unknown state {state!r}")
            if successor not in known:
                raise FormalismError(f"transition to unknown state {successor!r}")
            if event not in self.alphabet:
                raise FormalismError(f"transition on unknown event {event!r}")
        for state in self.verdicts:
            if state not in known:
                raise FormalismError(f"verdict for unknown state {state!r}")

    def verdict_of(self, state: str | None) -> str:
        """``γ(state)``; the sink (``None``/``FAIL_SINK``) verdicts ``fail``."""
        if state is None or state == FAIL_SINK:
            return FAIL
        return self.verdicts.get(state, state)

    def successor(self, state: str, event: str) -> str | None:
        """``σ(state, event)`` or ``None`` for the implicit fail sink."""
        return self.transitions.get((state, event))

    def goal_states(self, goal: frozenset[str]) -> frozenset[str]:
        """States whose verdict category lies in ``goal`` (may include the sink)."""
        result = {state for state in self.states if self.verdict_of(state) in goal}
        if FAIL in goal:
            result.add(FAIL_SINK)
        return frozenset(result)

    def reachable_states(self) -> frozenset[str]:
        """States reachable from the initial state (sink excluded)."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for event in self.alphabet:
                successor = self.successor(state, event)
                if successor is not None and successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)

    def inert_states(self, include_sink_paths: bool = True) -> frozenset[str]:
        """States from which the verdict can never change again.

        A state is inert when every state reachable from it (through the
        sink, if ``include_sink_paths``) verdicts the same category.  Used by
        :meth:`FSMMonitor.is_dead` so the runtime can skip pointless updates.
        """
        inert: set[str] = set()
        for origin in self.states:
            category = self.verdict_of(origin)
            seen = {origin}
            frontier = [origin]
            uniform = True
            while frontier and uniform:
                state = frontier.pop()
                for event in self.alphabet:
                    if state == FAIL_SINK:
                        continue
                    successor = self.successor(state, event)
                    if successor is None:
                        if not include_sink_paths:
                            continue
                        successor = FAIL_SINK
                    if self.verdict_of(successor) != category:
                        uniform = False
                        break
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
            if uniform:
                inert.add(origin)
        return frozenset(inert)


class FSMMonitor(BaseMonitor):
    """A running FSM monitor instance."""

    __slots__ = ("_fsm", "_state", "_inert")

    def __init__(self, fsm: FSM, state: str | None = None, inert: frozenset[str] | None = None):
        self._fsm = fsm
        self._state = fsm.initial if state is None else state
        self._inert = inert

    @property
    def state(self) -> str:
        """The current state (``FAIL_SINK`` once an undefined transition fired)."""
        return self._state

    def step(self, event: str) -> str:
        if self._state != FAIL_SINK:
            successor = self._fsm.successor(self._state, event)
            self._state = FAIL_SINK if successor is None else successor
        return self._fsm.verdict_of(self._state)

    def verdict(self) -> str:
        return self._fsm.verdict_of(self._state)

    def clone(self) -> "FSMMonitor":
        return FSMMonitor(self._fsm, self._state, self._inert)

    def snapshot_state(self) -> str:
        return self._state

    def is_dead(self) -> bool:
        if self._state == FAIL_SINK:
            return True
        return self._inert is not None and self._state in self._inert


class FSMTemplate(MonitorTemplate):
    """Monitor template backed by an explicit FSM.

    Besides the FSM plugin proper, this class hosts every formalism that
    compiles to finite state (ERE via derivatives, past-LTL via valuation
    exploration), so the coenable/enable fixpoints are implemented once.
    """

    def __init__(self, fsm: FSM):
        self.fsm = fsm
        self._inert = fsm.inert_states()
        self._coenable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}
        self._enable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}
        self._state_coenable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}

    @property
    def alphabet(self) -> frozenset[str]:
        return self.fsm.alphabet

    @property
    def categories(self) -> frozenset[str]:
        return frozenset(self.fsm.verdict_of(state) for state in self.fsm.states) | {FAIL}

    def create(self) -> FSMMonitor:
        return FSMMonitor(self.fsm, inert=self._inert)

    def monitor_from_state(self, payload: str) -> FSMMonitor:
        if payload != FAIL_SINK and payload not in self.fsm.states:
            from ..core.errors import PersistError

            raise PersistError(f"snapshot names unknown FSM state {payload!r}")
        return FSMMonitor(self.fsm, payload, self._inert)

    def coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        if goal not in self._coenable_cache:
            self._coenable_cache[goal] = fsm_coenable(self.fsm, goal)
        return self._coenable_cache[goal]

    def enable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        if goal not in self._enable_cache:
            self._enable_cache[goal] = fsm_enable(self.fsm, goal)
        return self._enable_cache[goal]

    @property
    def supports_state_gc(self) -> bool:
        return True

    def state_coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        """``SEEABLE`` indexed by state — the Tracematches-analog analysis.

        The paper characterizes the Tracematches GC as "coenable sets indexed
        by state rather than events"; this is exactly ``SEEABLE`` (∅ dropped,
        same rationale as for event coenable sets).
        """
        if goal not in self._state_coenable_cache:
            seeable = seeable_sets(self.fsm, goal)
            self._state_coenable_cache[goal] = {
                state: drop_empty_sets(family) for state, family in seeable.items()
            }
        return self._state_coenable_cache[goal]


# ---------------------------------------------------------------------------
# Least-fixpoint analyses (Section 3)
# ---------------------------------------------------------------------------


def _transition_items(fsm: FSM) -> Iterable[tuple[str, str, str]]:
    for (state, event), successor in fsm.transitions.items():
        yield state, event, successor
    # Undefined transitions go to the implicit fail sink, which matters only
    # when the goal includes ``fail``; it has no outgoing transitions.
    for state, event in itertools.product(fsm.states, sorted(fsm.alphabet)):
        if (state, event) not in fsm.transitions:
            yield state, event, FAIL_SINK


def seeable_sets(fsm: FSM, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
    """``SEEABLE(s)``: families of event sets seen on paths from ``s`` to goal.

    Least fixpoint of
    ``SEEABLE(s) ⊇ {∅}`` when ``γ(s) in goal`` and
    ``SEEABLE(s) ⊇ {{e} ∪ T | T in SEEABLE(s')}`` for each ``σ(s, e) = s'``.
    Terminates because the lattice ``P(P(E))`` is finite.
    """
    all_states = list(fsm.states) + [FAIL_SINK]
    seeable: dict[str, set[frozenset[str]]] = {state: set() for state in all_states}
    for state in fsm.goal_states(goal):
        seeable[state].add(frozenset())
    edges = list(_transition_items(fsm))
    changed = True
    while changed:
        changed = False
        for state, event, successor in edges:
            for suffix in list(seeable[successor]):
                extended = suffix | {event}
                if extended not in seeable[state]:
                    seeable[state].add(extended)
                    changed = True
    return {state: frozenset(family) for state, family in seeable.items()}


def fsm_coenable(fsm: FSM, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
    """``COENABLE_{P,G}(e) = ∪_{σ(s,e)=s'} SEEABLE(s')``, ∅s dropped.

    Only transitions reachable from the initial state contribute: an
    occurrence of ``e`` in a goal trace necessarily fires a reachable
    transition.
    """
    seeable = seeable_sets(fsm, goal)
    before = before_sets(fsm)
    reachable = {state for state, family in before.items() if family}
    result: dict[str, set[frozenset[str]]] = {event: set() for event in fsm.alphabet}
    for state, event, successor in _transition_items(fsm):
        if state in reachable:
            result[event].update(seeable[successor])
    return {
        event: drop_empty_sets(frozenset(family)) for event, family in result.items()
    }


def before_sets(fsm: FSM) -> dict[str, SetOfEventSets]:
    """``BEFORE(s)``: families of event sets seen on paths from ``ı`` to ``s``.

    The dual of :func:`seeable_sets`; the empty set marks the initial state.
    """
    all_states = list(fsm.states) + [FAIL_SINK]
    before: dict[str, set[frozenset[str]]] = {state: set() for state in all_states}
    before[fsm.initial].add(frozenset())
    edges = list(_transition_items(fsm))
    changed = True
    while changed:
        changed = False
        for state, event, successor in edges:
            for prefix in list(before[state]):
                extended = prefix | {event}
                if extended not in before[successor]:
                    before[successor].add(extended)
                    changed = True
    return {state: frozenset(family) for state, family in before.items()}


def fsm_enable(fsm: FSM, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
    """``ENABLE_{P,G}(e)``: prefix event-set families over goal traces.

    ``ENABLE(e) = {T in BEFORE(s) | σ(s,e)=s', goal reachable from s'}``.
    The empty set is kept — it marks creation events.
    """
    before = before_sets(fsm)
    seeable = seeable_sets(fsm, goal)
    goal_reachable = {state for state, family in seeable.items() if family}
    result: dict[str, set[frozenset[str]]] = {event: set() for event in fsm.alphabet}
    for state, event, successor in _transition_items(fsm):
        if successor in goal_reachable:
            result[event].update(before[state])
    return {event: frozenset(family) for event, family in result.items()}


# ---------------------------------------------------------------------------
# Concrete syntax (Figure 2)
# ---------------------------------------------------------------------------


def parse_fsm(text: str, alphabet: Iterable[str] | None = None) -> FSM:
    """Parse the FSM syntax of Figure 2.

    Each state is a name followed by its outgoing transitions in brackets
    (``event -> state``), separated by commas or whitespace; the first state
    is the initial state.  The alphabet defaults to the set of mentioned
    events but can be widened (events of the specification that the FSM does
    not mention fail the property via the implicit sink).
    """
    from ..core.errors import SpecSyntaxError

    tokens: list[str] = []
    for raw in text.replace("[", " [ ").replace("]", " ] ").replace(",", " ").replace("->", " -> ").split():
        tokens.append(raw)
    states: list[str] = []
    transitions: dict[tuple[str, str], str] = {}
    events: set[str] = set()
    index = 0
    while index < len(tokens):
        state = tokens[index]
        if state in {"[", "]", "->"}:
            raise SpecSyntaxError(f"expected state name, got {state!r}")
        if state in states:
            raise SpecSyntaxError(f"state {state!r} declared twice")
        states.append(state)
        index += 1
        if index >= len(tokens) or tokens[index] != "[":
            raise SpecSyntaxError(f"expected '[' after state {state!r}")
        index += 1
        while index < len(tokens) and tokens[index] != "]":
            event = tokens[index]
            if index + 2 >= len(tokens) or tokens[index + 1] != "->":
                raise SpecSyntaxError(f"expected 'event -> state' in state {state!r}")
            successor = tokens[index + 2]
            if (state, event) in transitions:
                raise SpecSyntaxError(
                    f"duplicate transition on {event!r} from state {state!r}"
                )
            transitions[(state, event)] = successor
            events.add(event)
            index += 3
        if index >= len(tokens):
            raise SpecSyntaxError(f"unterminated state block for {state!r}")
        index += 1  # the ']'
    if not states:
        raise SpecSyntaxError("empty FSM")
    full_alphabet = frozenset(alphabet) if alphabet is not None else frozenset(events)
    missing = events - full_alphabet
    if missing:
        raise FormalismError(
            f"FSM mentions events outside the declared alphabet: {sorted(missing)}"
        )
    return FSM(
        states=tuple(states),
        alphabet=full_alphabet,
        initial=states[0],
        transitions=transitions,
    )


def compile_fsm(text: "str | FSM", alphabet: Iterable[str] | None = None) -> FSMTemplate:
    """Compile FSM concrete syntax (or an FSM value) into a monitor template."""
    fsm = parse_fsm(text, alphabet) if isinstance(text, str) else text
    return FSMTemplate(fsm)
