"""Finite state machines: the FSM plugin and its static analyses.

Implements the FSM formalism of the paper (Figure 2) in the spirit of
Definition 8, plus the Section 3 least-fixpoint computations:

* ``SEEABLE(s)`` — the family of event sets occurring along paths from ``s``
  to a goal state;
* ``COENABLE_{P,G}(e) = ∪_{σ(s,e)=s'} SEEABLE(s')`` with ``∅`` dropped;
* the dual ``BEFORE``/``ENABLE`` fixpoint used for monitor-creation pruning
  (Chen et al., ASE'09).

FSM semantics follow the RV system: the verdict of a state is its category
under ``γ`` (by default the state's own name, which is how the paper's FSM
handlers like ``@error`` address states), and an *undefined* transition
sends the monitor to an implicit absorbing sink with category ``fail``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.errors import FormalismError
from ..core.monitor import BaseMonitor, MonitorTemplate, SetOfEventSets
from ..core.verdicts import FAIL
from ..core.coenable import drop_empty_sets

__all__ = [
    "FSM",
    "FSMTable",
    "FSMMonitor",
    "FSMTemplate",
    "seeable_sets",
    "fsm_coenable",
    "fsm_enable",
]

#: Name of the implicit absorbing sink reached by undefined transitions.
FAIL_SINK = "<fail>"


@dataclass(frozen=True)
class FSM:
    """An explicit finite state machine ``(S, E, C, ı, σ, γ)``.

    ``transitions`` maps ``(state, event)`` to the successor state;
    ``verdicts`` is ``γ`` — states absent from it verdict as their own name.
    The implicit fail sink is *not* listed in ``states``; it is synthesized
    by the monitor and the analyses.
    """

    states: tuple[str, ...]
    alphabet: frozenset[str]
    initial: str
    transitions: Mapping[tuple[str, str], str]
    verdicts: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        known = set(self.states)
        if self.initial not in known:
            raise FormalismError(f"initial state {self.initial!r} is not a state")
        for (state, event), successor in self.transitions.items():
            if state not in known:
                raise FormalismError(f"transition from unknown state {state!r}")
            if successor not in known:
                raise FormalismError(f"transition to unknown state {successor!r}")
            if event not in self.alphabet:
                raise FormalismError(f"transition on unknown event {event!r}")
        for state in self.verdicts:
            if state not in known:
                raise FormalismError(f"verdict for unknown state {state!r}")

    def verdict_of(self, state: str | None) -> str:
        """``γ(state)``; the sink (``None``/``FAIL_SINK``) verdicts ``fail``."""
        if state is None or state == FAIL_SINK:
            return FAIL
        return self.verdicts.get(state, state)

    def successor(self, state: str, event: str) -> str | None:
        """``σ(state, event)`` or ``None`` for the implicit fail sink."""
        return self.transitions.get((state, event))

    def goal_states(self, goal: frozenset[str]) -> frozenset[str]:
        """States whose verdict category lies in ``goal`` (may include the sink)."""
        result = {state for state in self.states if self.verdict_of(state) in goal}
        if FAIL in goal:
            result.add(FAIL_SINK)
        return frozenset(result)

    def reachable_states(self) -> frozenset[str]:
        """States reachable from the initial state (sink excluded)."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for event in self.alphabet:
                successor = self.successor(state, event)
                if successor is not None and successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)

    def inert_states(self, include_sink_paths: bool = True) -> frozenset[str]:
        """States from which the verdict can never change again.

        A state is inert when every state reachable from it (through the
        sink, if ``include_sink_paths``) verdicts the same category.  Used by
        :meth:`FSMMonitor.is_dead` so the runtime can skip pointless updates.
        """
        inert: set[str] = set()
        for origin in self.states:
            category = self.verdict_of(origin)
            seen = {origin}
            frontier = [origin]
            uniform = True
            while frontier and uniform:
                state = frontier.pop()
                for event in self.alphabet:
                    if state == FAIL_SINK:
                        continue
                    successor = self.successor(state, event)
                    if successor is None:
                        if not include_sink_paths:
                            continue
                        successor = FAIL_SINK
                    if self.verdict_of(successor) != category:
                        uniform = False
                        break
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
            if uniform:
                inert.add(origin)
        return frozenset(inert)


class FSMTable:
    """Flat transition tables for one FSM (the compiled-dispatch lowering).

    ``rows[state_id][event_id]`` is the successor state id; event ids are
    positions in the sorted alphabet (matching
    :class:`~repro.spec.dispatch.DispatchPlan` event ids), state ids are
    positions in ``fsm.states`` with the implicit fail sink appended last.
    Undefined transitions and the sink's own row all point at the sink, so
    one monitor step is exactly two array reads — no dict lookups, no
    per-step branching on sink-ness.
    """

    __slots__ = (
        "events",
        "event_ids",
        "states",
        "state_ids",
        "rows",
        "verdict_names",
        "inert",
        "sink_id",
    )

    def __init__(self, fsm: FSM, inert: frozenset[str] | None = None):
        self.events: tuple[str, ...] = tuple(sorted(fsm.alphabet))
        self.event_ids: dict[str, int] = {
            event: index for index, event in enumerate(self.events)
        }
        self.states: tuple[str, ...] = tuple(fsm.states) + (FAIL_SINK,)
        self.state_ids: dict[str, int] = {
            state: index for index, state in enumerate(self.states)
        }
        self.sink_id = len(self.states) - 1
        transitions = fsm.transitions
        state_ids = self.state_ids
        sink = self.sink_id
        rows = [
            tuple(
                state_ids[transitions[(state, event)]]
                if (state, event) in transitions
                else sink
                for event in self.events
            )
            for state in fsm.states
        ]
        rows.append(tuple(sink for _event in self.events))
        self.rows: tuple[tuple[int, ...], ...] = tuple(rows)
        self.verdict_names: tuple[str, ...] = tuple(
            fsm.verdict_of(state) for state in self.states
        )
        inert_states = fsm.inert_states() if inert is None else inert
        self.inert: tuple[bool, ...] = tuple(
            state == FAIL_SINK or state in inert_states for state in self.states
        )


class FSMMonitor(BaseMonitor):
    """A running FSM monitor instance, backed by an :class:`FSMTable`.

    The state is an integer table index; the string view (``state``,
    ``verdict``, ``snapshot_state``) is reconstructed on demand, so the
    checkpoint codec's payloads and the state-based GC strategy see exactly
    the representation they always did.
    """

    __slots__ = ("_fsm", "_table", "_state_id", "_inert")

    def __init__(
        self,
        fsm: FSM,
        state: str | None = None,
        inert: frozenset[str] | None = None,
        table: FSMTable | None = None,
    ):
        self._fsm = fsm
        self._table = table if table is not None else FSMTable(fsm, inert)
        self._state_id = self._table.state_ids[fsm.initial if state is None else state]
        self._inert = inert

    @property
    def state(self) -> str:
        """The current state (``FAIL_SINK`` once an undefined transition fired)."""
        return self._table.states[self._state_id]

    def step(self, event: str) -> str:
        table = self._table
        event_id = table.event_ids.get(event)
        # An event outside the alphabet is an undefined transition: sink.
        sid = (
            table.rows[self._state_id][event_id]
            if event_id is not None
            else table.sink_id
        )
        self._state_id = sid
        return table.verdict_names[sid]

    def verdict(self) -> str:
        return self._table.verdict_names[self._state_id]

    def clone(self) -> "FSMMonitor":
        copy = FSMMonitor.__new__(FSMMonitor)
        copy._fsm = self._fsm
        copy._table = self._table
        copy._state_id = self._state_id
        copy._inert = self._inert
        return copy

    def snapshot_state(self) -> str:
        return self._table.states[self._state_id]

    def is_dead(self) -> bool:
        table = self._table
        if self._inert is None:
            # Inert-state suppression disabled: only the sink is dead.
            return self._state_id == table.sink_id
        # The table's inert flags were built from the same inert set the
        # monitor carries (templates pass both together).
        return table.inert[self._state_id]


class FSMTemplate(MonitorTemplate):
    """Monitor template backed by an explicit FSM.

    Besides the FSM plugin proper, this class hosts every formalism that
    compiles to finite state (ERE via derivatives, past-LTL via valuation
    exploration), so the coenable/enable fixpoints are implemented once.
    """

    def __init__(self, fsm: FSM):
        self.fsm = fsm
        self._inert = fsm.inert_states()
        #: Shared flat transition tables — every monitor of this template
        #: steps through the same table (the compiled-dispatch fast path).
        self.table = FSMTable(fsm, self._inert)
        self._coenable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}
        self._enable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}
        self._state_coenable_cache: dict[frozenset[str], dict[str, SetOfEventSets]] = {}

    @property
    def alphabet(self) -> frozenset[str]:
        return self.fsm.alphabet

    @property
    def categories(self) -> frozenset[str]:
        return frozenset(self.fsm.verdict_of(state) for state in self.fsm.states) | {FAIL}

    def create(self) -> FSMMonitor:
        return FSMMonitor(self.fsm, inert=self._inert, table=self.table)

    def monitor_from_state(self, payload: str) -> FSMMonitor:
        if payload != FAIL_SINK and payload not in self.fsm.states:
            from ..core.errors import PersistError

            raise PersistError(f"snapshot names unknown FSM state {payload!r}")
        return FSMMonitor(self.fsm, payload, self._inert, table=self.table)

    def coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        if goal not in self._coenable_cache:
            self._coenable_cache[goal] = fsm_coenable(self.fsm, goal)
        return self._coenable_cache[goal]

    def enable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        if goal not in self._enable_cache:
            self._enable_cache[goal] = fsm_enable(self.fsm, goal)
        return self._enable_cache[goal]

    @property
    def supports_state_gc(self) -> bool:
        return True

    def state_coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        """``SEEABLE`` indexed by state — the Tracematches-analog analysis.

        The paper characterizes the Tracematches GC as "coenable sets indexed
        by state rather than events"; this is exactly ``SEEABLE`` (∅ dropped,
        same rationale as for event coenable sets).
        """
        if goal not in self._state_coenable_cache:
            seeable = seeable_sets(self.fsm, goal)
            self._state_coenable_cache[goal] = {
                state: drop_empty_sets(family) for state, family in seeable.items()
            }
        return self._state_coenable_cache[goal]


# ---------------------------------------------------------------------------
# Least-fixpoint analyses (Section 3)
# ---------------------------------------------------------------------------


def _transition_items(fsm: FSM) -> Iterable[tuple[str, str, str]]:
    for (state, event), successor in fsm.transitions.items():
        yield state, event, successor
    # Undefined transitions go to the implicit fail sink, which matters only
    # when the goal includes ``fail``; it has no outgoing transitions.
    for state, event in itertools.product(fsm.states, sorted(fsm.alphabet)):
        if (state, event) not in fsm.transitions:
            yield state, event, FAIL_SINK


def seeable_sets(fsm: FSM, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
    """``SEEABLE(s)``: families of event sets seen on paths from ``s`` to goal.

    Least fixpoint of
    ``SEEABLE(s) ⊇ {∅}`` when ``γ(s) in goal`` and
    ``SEEABLE(s) ⊇ {{e} ∪ T | T in SEEABLE(s')}`` for each ``σ(s, e) = s'``.
    Terminates because the lattice ``P(P(E))`` is finite.
    """
    all_states = list(fsm.states) + [FAIL_SINK]
    seeable: dict[str, set[frozenset[str]]] = {state: set() for state in all_states}
    for state in fsm.goal_states(goal):
        seeable[state].add(frozenset())
    edges = list(_transition_items(fsm))
    changed = True
    while changed:
        changed = False
        for state, event, successor in edges:
            for suffix in list(seeable[successor]):
                extended = suffix | {event}
                if extended not in seeable[state]:
                    seeable[state].add(extended)
                    changed = True
    return {state: frozenset(family) for state, family in seeable.items()}


def fsm_coenable(fsm: FSM, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
    """``COENABLE_{P,G}(e) = ∪_{σ(s,e)=s'} SEEABLE(s')``, ∅s dropped.

    Only transitions reachable from the initial state contribute: an
    occurrence of ``e`` in a goal trace necessarily fires a reachable
    transition.
    """
    seeable = seeable_sets(fsm, goal)
    before = before_sets(fsm)
    reachable = {state for state, family in before.items() if family}
    result: dict[str, set[frozenset[str]]] = {event: set() for event in fsm.alphabet}
    for state, event, successor in _transition_items(fsm):
        if state in reachable:
            result[event].update(seeable[successor])
    return {
        event: drop_empty_sets(frozenset(family)) for event, family in result.items()
    }


def before_sets(fsm: FSM) -> dict[str, SetOfEventSets]:
    """``BEFORE(s)``: families of event sets seen on paths from ``ı`` to ``s``.

    The dual of :func:`seeable_sets`; the empty set marks the initial state.
    """
    all_states = list(fsm.states) + [FAIL_SINK]
    before: dict[str, set[frozenset[str]]] = {state: set() for state in all_states}
    before[fsm.initial].add(frozenset())
    edges = list(_transition_items(fsm))
    changed = True
    while changed:
        changed = False
        for state, event, successor in edges:
            for prefix in list(before[state]):
                extended = prefix | {event}
                if extended not in before[successor]:
                    before[successor].add(extended)
                    changed = True
    return {state: frozenset(family) for state, family in before.items()}


def fsm_enable(fsm: FSM, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
    """``ENABLE_{P,G}(e)``: prefix event-set families over goal traces.

    ``ENABLE(e) = {T in BEFORE(s) | σ(s,e)=s', goal reachable from s'}``.
    The empty set is kept — it marks creation events.
    """
    before = before_sets(fsm)
    seeable = seeable_sets(fsm, goal)
    goal_reachable = {state for state, family in seeable.items() if family}
    result: dict[str, set[frozenset[str]]] = {event: set() for event in fsm.alphabet}
    for state, event, successor in _transition_items(fsm):
        if successor in goal_reachable:
            result[event].update(before[state])
    return {event: frozenset(family) for event, family in result.items()}


# ---------------------------------------------------------------------------
# Concrete syntax (Figure 2)
# ---------------------------------------------------------------------------


def parse_fsm(text: str, alphabet: Iterable[str] | None = None) -> FSM:
    """Parse the FSM syntax of Figure 2.

    Each state is a name followed by its outgoing transitions in brackets
    (``event -> state``), separated by commas or whitespace; the first state
    is the initial state.  The alphabet defaults to the set of mentioned
    events but can be widened (events of the specification that the FSM does
    not mention fail the property via the implicit sink).
    """
    from ..core.errors import SpecSyntaxError

    tokens: list[str] = []
    for raw in text.replace("[", " [ ").replace("]", " ] ").replace(",", " ").replace("->", " -> ").split():
        tokens.append(raw)
    states: list[str] = []
    transitions: dict[tuple[str, str], str] = {}
    events: set[str] = set()
    index = 0
    while index < len(tokens):
        state = tokens[index]
        if state in {"[", "]", "->"}:
            raise SpecSyntaxError(f"expected state name, got {state!r}")
        if state in states:
            raise SpecSyntaxError(f"state {state!r} declared twice")
        states.append(state)
        index += 1
        if index >= len(tokens) or tokens[index] != "[":
            raise SpecSyntaxError(f"expected '[' after state {state!r}")
        index += 1
        while index < len(tokens) and tokens[index] != "]":
            event = tokens[index]
            if index + 2 >= len(tokens) or tokens[index + 1] != "->":
                raise SpecSyntaxError(f"expected 'event -> state' in state {state!r}")
            successor = tokens[index + 2]
            if (state, event) in transitions:
                raise SpecSyntaxError(
                    f"duplicate transition on {event!r} from state {state!r}"
                )
            transitions[(state, event)] = successor
            events.add(event)
            index += 3
        if index >= len(tokens):
            raise SpecSyntaxError(f"unterminated state block for {state!r}")
        index += 1  # the ']'
    if not states:
        raise SpecSyntaxError("empty FSM")
    full_alphabet = frozenset(alphabet) if alphabet is not None else frozenset(events)
    missing = events - full_alphabet
    if missing:
        raise FormalismError(
            f"FSM mentions events outside the declared alphabet: {sorted(missing)}"
        )
    return FSM(
        states=tuple(states),
        alphabet=full_alphabet,
        initial=states[0],
        transitions=transitions,
    )


def compile_fsm(text: "str | FSM", alphabet: Iterable[str] | None = None) -> FSMTemplate:
    """Compile FSM concrete syntax (or an FSM value) into a monitor template."""
    fsm = parse_fsm(text, alphabet) if isinstance(text, str) else text
    return FSMTemplate(fsm)
