"""Past-time linear temporal logic (the ``ltl`` plugin of Figure 2).

The paper's LTL example — ``[](next => (*)hasnexttrue)`` — uses the
past-time fragment: ``(*)`` (previously), ``<*>`` (eventually in the past),
``[*]`` (always in the past) and ``S`` (since), under a top-level ``[]``.
Over finite monitored prefixes, the top-level ``[]`` coincides with
``[*]`` ("at every step so far"), which is how it is compiled here.

Atomic propositions are event names: proposition ``e`` holds at a step iff
the step's event is ``e`` (trace slices deliver exactly one event per step).

Monitoring past-time LTL needs one bit of memory per temporal subformula
(Havelund & Roșu's classic recurrences), so the monitor's reachable state
space is finite.  We compile it to an *explicit* :class:`~repro.formalism.fsm.FSM`
by breadth-first exploration of the memory vectors — the point of doing so
is that the FSM coenable/enable machinery then applies unchanged, which is
precisely the formalism-independence the paper claims for its technique.

Verdicts: ``violation`` once the formula goes false (absorbing), ``?``
otherwise.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import FormalismError, SpecSyntaxError
from ..core.verdicts import UNKNOWN, VIOLATION
from .ere import minimize_fsm
from .fsm import FSM, FSMTemplate

__all__ = [
    "LtlFormula",
    "Prop",
    "TrueConst",
    "FalseConst",
    "Not",
    "And",
    "Or",
    "Implies",
    "Prev",
    "OncePast",
    "AlwaysPast",
    "Since",
    "parse_ltl",
    "ltl_to_fsm",
    "compile_ltl",
]


class LtlFormula:
    """Base class for past-time LTL abstract syntax nodes (immutable)."""

    __slots__ = ()

    def children(self) -> tuple["LtlFormula", ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ltl[{format_ltl(self)}]"


class Prop(LtlFormula):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Prop) and other.name == self.name

    def __hash__(self):
        return hash(("prop", self.name))


class TrueConst(LtlFormula):
    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, TrueConst)

    def __hash__(self):
        return hash("true")


class FalseConst(LtlFormula):
    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, FalseConst)

    def __hash__(self):
        return hash("false")


class _Unary(LtlFormula):
    __slots__ = ("body",)
    _tag = ""

    def __init__(self, body: LtlFormula):
        self.body = body

    def children(self):
        return (self.body,)

    def __eq__(self, other):
        return type(other) is type(self) and other.body == self.body

    def __hash__(self):
        return hash((self._tag, self.body))


class _Binary(LtlFormula):
    __slots__ = ("left", "right")
    _tag = ""

    def __init__(self, left: LtlFormula, right: LtlFormula):
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def __eq__(self, other):
        return type(other) is type(self) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self):
        return hash((self._tag, self.left, self.right))


class Not(_Unary):
    __slots__ = ()
    _tag = "not"


class And(_Binary):
    __slots__ = ()
    _tag = "and"


class Or(_Binary):
    __slots__ = ()
    _tag = "or"


class Implies(_Binary):
    __slots__ = ()
    _tag = "implies"


class Prev(_Unary):
    """``(*) φ`` — φ held at the immediately preceding step (false initially)."""

    __slots__ = ()
    _tag = "prev"


class OncePast(_Unary):
    """``<*> φ`` — φ held at some step so far."""

    __slots__ = ()
    _tag = "once"


class AlwaysPast(_Unary):
    """``[*] φ`` (and top-level ``[] φ``) — φ held at every step so far."""

    __slots__ = ()
    _tag = "always"


class Since(_Binary):
    """``φ S ψ`` — ψ held at some step so far and φ has held ever since."""

    __slots__ = ()
    _tag = "since"


def propositions_of(formula: LtlFormula) -> frozenset[str]:
    if isinstance(formula, Prop):
        return frozenset({formula.name})
    result: frozenset[str] = frozenset()
    for child in formula.children():
        result |= propositions_of(child)
    return result


def format_ltl(formula: LtlFormula) -> str:
    """Render a formula back to the concrete syntax."""
    if isinstance(formula, Prop):
        return formula.name
    if isinstance(formula, TrueConst):
        return "true"
    if isinstance(formula, FalseConst):
        return "false"
    if isinstance(formula, Not):
        return f"!({format_ltl(formula.body)})"
    if isinstance(formula, Prev):
        return f"(*)({format_ltl(formula.body)})"
    if isinstance(formula, OncePast):
        return f"<*>({format_ltl(formula.body)})"
    if isinstance(formula, AlwaysPast):
        return f"[*]({format_ltl(formula.body)})"
    if isinstance(formula, And):
        return f"({format_ltl(formula.left)} && {format_ltl(formula.right)})"
    if isinstance(formula, Or):
        return f"({format_ltl(formula.left)} || {format_ltl(formula.right)})"
    if isinstance(formula, Implies):
        return f"({format_ltl(formula.left)} => {format_ltl(formula.right)})"
    if isinstance(formula, Since):
        return f"({format_ltl(formula.left)} S {format_ltl(formula.right)})"
    raise FormalismError(f"unknown LTL node {formula!r}")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_MULTI_TOKENS = ["[]", "[*]", "<*>", "(*)", "=>", "&&", "||"]


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        for multi in _MULTI_TOKENS:
            if text.startswith(multi, index):
                tokens.append(multi)
                index += len(multi)
                break
        else:
            if char in "()!":
                tokens.append(char)
                index += 1
            elif char.isalpha() or char == "_":
                start = index
                while index < len(text) and (text[index].isalnum() or text[index] == "_"):
                    index += 1
                tokens.append(text[start:index])
            else:
                raise SpecSyntaxError(f"unexpected character {char!r} in LTL {text!r}")
    return tokens


class _LtlParser:
    """Recursive descent; precedence (loosest first): ``=>``, ``||``, ``&&``,
    ``S``, unary (``!``, ``(*)``, ``<*>``, ``[*]``, ``[]``)."""

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> LtlFormula:
        formula = self._implies()
        if self._pos != len(self._tokens):
            raise SpecSyntaxError(f"trailing tokens in LTL: {self._tokens[self._pos:]!r}")
        return formula

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise SpecSyntaxError("unexpected end of LTL formula")
        self._pos += 1
        return token

    def _implies(self) -> LtlFormula:
        left = self._or()
        if self._peek() == "=>":
            self._take()
            return Implies(left, self._implies())  # right-associative
        return left

    def _or(self) -> LtlFormula:
        left = self._and()
        while self._peek() in {"||", "or"}:
            self._take()
            left = Or(left, self._and())
        return left

    def _and(self) -> LtlFormula:
        left = self._since()
        while self._peek() in {"&&", "and"}:
            self._take()
            left = And(left, self._since())
        return left

    def _since(self) -> LtlFormula:
        left = self._unary()
        while self._peek() == "S":
            self._take()
            left = Since(left, self._unary())
        return left

    def _unary(self) -> LtlFormula:
        token = self._peek()
        if token in {"!", "not"}:
            self._take()
            return Not(self._unary())
        if token == "(*)":
            self._take()
            return Prev(self._unary())
        if token == "<*>":
            self._take()
            return OncePast(self._unary())
        if token in {"[*]", "[]"}:
            self._take()
            return AlwaysPast(self._unary())
        return self._atom()

    def _atom(self) -> LtlFormula:
        token = self._take()
        if token == "(":
            formula = self._implies()
            if self._take() != ")":
                raise SpecSyntaxError("expected ')' in LTL formula")
            return formula
        if token == "true":
            return TrueConst()
        if token == "false":
            return FalseConst()
        if token in {"S", "=>", "&&", "||", ")", "!", "not", "and", "or"}:
            raise SpecSyntaxError(f"unexpected token {token!r} in LTL formula")
        return Prop(token)


def parse_ltl(text: str) -> LtlFormula:
    """Parse e.g. ``[](next => (*)hasnexttrue)``."""
    return _LtlParser(_tokenize(text)).parse()


# ---------------------------------------------------------------------------
# Compilation to an explicit FSM
# ---------------------------------------------------------------------------


def _subformulas(formula: LtlFormula) -> list[LtlFormula]:
    """All distinct subformulas, children before parents."""
    ordered: list[LtlFormula] = []
    seen: set[LtlFormula] = set()

    def visit(node: LtlFormula) -> None:
        if node in seen:
            return
        for child in node.children():
            visit(child)
        seen.add(node)
        ordered.append(node)

    visit(formula)
    return ordered


_TEMPORAL = (Prev, OncePast, AlwaysPast, Since)


def ltl_to_fsm(formula: LtlFormula | str, alphabet: Iterable[str]) -> FSM:
    """Compile a past-LTL formula to a DFA over its memory vectors.

    Each temporal subformula owns one memory bit (its value — or for ``(*)``
    its operand's value — at the previous step); the monitor state is the
    memory vector plus the sticky violation bit.  States are explored
    breadth-first from the initial vector, so only reachable vectors
    materialize; the result is Moore-minimized.
    """
    if isinstance(formula, str):
        formula = parse_ltl(formula)
    alphabet = frozenset(alphabet)
    missing = propositions_of(formula) - alphabet
    if missing:
        raise FormalismError(
            f"formula mentions events outside the declared alphabet: {sorted(missing)}"
        )
    ordered = _subformulas(formula)
    temporal = [node for node in ordered if isinstance(node, _TEMPORAL)]
    slot = {node: index for index, node in enumerate(temporal)}

    def initial_memory() -> tuple[bool, ...]:
        # (*)φ: no previous step, so false.  <*>φ: nothing held yet, false.
        # [*]φ: vacuously true.  φ S ψ: ψ never held, false.
        return tuple(isinstance(node, AlwaysPast) for node in temporal)

    def step(memory: tuple[bool, ...], event: str) -> tuple[tuple[bool, ...], bool]:
        value: dict[LtlFormula, bool] = {}
        for node in ordered:
            if isinstance(node, Prop):
                value[node] = node.name == event
            elif isinstance(node, TrueConst):
                value[node] = True
            elif isinstance(node, FalseConst):
                value[node] = False
            elif isinstance(node, Not):
                value[node] = not value[node.body]
            elif isinstance(node, And):
                value[node] = value[node.left] and value[node.right]
            elif isinstance(node, Or):
                value[node] = value[node.left] or value[node.right]
            elif isinstance(node, Implies):
                value[node] = (not value[node.left]) or value[node.right]
            elif isinstance(node, Prev):
                value[node] = memory[slot[node]]
            elif isinstance(node, OncePast):
                value[node] = value[node.body] or memory[slot[node]]
            elif isinstance(node, AlwaysPast):
                value[node] = value[node.body] and memory[slot[node]]
            elif isinstance(node, Since):
                value[node] = value[node.right] or (value[node.left] and memory[slot[node]])
            else:  # pragma: no cover - exhaustive
                raise FormalismError(f"unknown LTL node {node!r}")
        new_memory = tuple(
            value[node.body] if isinstance(node, Prev) else value[node]
            for node in temporal
        )
        return new_memory, value[formula]

    order = sorted(alphabet)
    initial = (initial_memory(), False)
    states: dict[tuple[tuple[bool, ...], bool], int] = {initial: 0}
    worklist = [initial]
    transitions: dict[tuple[int, str], int] = {}
    while worklist:
        source = worklist.pop()
        memory, violated = source
        for event in order:
            if violated:
                target = source  # violation is absorbing
            else:
                new_memory, holds = step(memory, event)
                target = (new_memory, violated or not holds)
            if target not in states:
                states[target] = len(states)
                worklist.append(target)
            transitions[(states[source], event)] = states[target]
    fsm = FSM(
        states=tuple(f"q{i}" for i in range(len(states))),
        alphabet=alphabet,
        initial="q0",
        transitions={
            (f"q{src}", event): f"q{dst}" for (src, event), dst in transitions.items()
        },
        verdicts={
            f"q{index}": (VIOLATION if violated else UNKNOWN)
            for (_memory, violated), index in states.items()
        },
    )
    return minimize_fsm(fsm)


def compile_ltl(formula: LtlFormula | str, alphabet: Iterable[str]) -> FSMTemplate:
    """Compile a past-LTL formula into a ready-to-run monitor template."""
    return FSMTemplate(ltl_to_fsm(formula, alphabet))
