"""User-defined monitors as a formalism plugin.

The paper's central claim is formalism independence: the runtime only needs
a base monitor (Definition 8) plus coenable/enable sets for the goal.  This
module makes that concrete for *library users*: wrap any Python object with
``step``/``verdict``/``clone`` (or just a per-trace transition function)
into a :class:`RawTemplate` and monitor it parametrically, with either
user-supplied static analyses or safe conservative defaults:

* conservative coenable — every event's family contains ``∅``, i.e. the
  ALIVENESS formula is constant true: no monitor is ever pruned by the
  coenable strategy (collection falls back to structure death);
* conservative enable — the full powerset of the alphabet: every event may
  create monitors and extend any defined sub-instance.

Supplying tighter families (when you know your property) re-enables the
paper's pruning; the families are validated for alphabet consistency.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..core.errors import FormalismError
from ..core.monitor import BaseMonitor, MonitorTemplate, SetOfEventSets
from ..core.verdicts import UNKNOWN

__all__ = ["RawMonitor", "RawTemplate", "functional_template"]


class RawMonitor(BaseMonitor):
    """Adapter for a user state machine given as a transition function.

    ``transition(state, event) -> state`` and ``verdict(state) -> category``
    operate on any immutable state value; immutability is what makes
    :meth:`clone` trivial and safe.
    """

    __slots__ = ("_transition", "_verdict", "_state")

    def __init__(
        self,
        transition: Callable[[Any, str], Any],
        verdict: Callable[[Any], str],
        state: Any,
    ):
        self._transition = transition
        self._verdict = verdict
        self._state = state

    @property
    def state(self) -> Any:
        return self._state

    def step(self, event: str) -> str:
        self._state = self._transition(self._state, event)
        return self._verdict(self._state)

    def verdict(self) -> str:
        return self._verdict(self._state)

    def clone(self) -> "RawMonitor":
        return RawMonitor(self._transition, self._verdict, self._state)

    def snapshot_state(self) -> Any:
        """The raw state itself — snapshot-safe only when it is plain data.

        The checkpoint codec JSON-encodes payloads; a raw monitor whose
        state is not JSON-representable fails at encode time with a
        :class:`~repro.core.errors.PersistError` naming the monitor.
        """
        return self._state


class RawTemplate(MonitorTemplate):
    """A formalism plugin around an arbitrary monitor factory."""

    def __init__(
        self,
        factory: Callable[[], BaseMonitor],
        alphabet: Iterable[str],
        categories: Iterable[str] = (UNKNOWN,),
        coenable: Mapping[str, SetOfEventSets] | None = None,
        enable: Mapping[str, SetOfEventSets] | None = None,
    ):
        self._factory = factory
        self._alphabet = frozenset(alphabet)
        self._categories = frozenset(categories) | {UNKNOWN}
        if not self._alphabet:
            raise FormalismError("a raw template needs a non-empty alphabet")
        self._coenable = self._validated(coenable) if coenable is not None else None
        self._enable = self._validated(enable) if enable is not None else None

    def _validated(
        self, families: Mapping[str, SetOfEventSets]
    ) -> dict[str, SetOfEventSets]:
        unknown_events = set(families) - self._alphabet
        if unknown_events:
            raise FormalismError(
                f"families given for undeclared events: {sorted(unknown_events)}"
            )
        for event, family in families.items():
            for inner in family:
                stray = set(inner) - self._alphabet
                if stray:
                    raise FormalismError(
                        f"family of {event!r} mentions undeclared events: {sorted(stray)}"
                    )
        result = {event: frozenset(family) for event, family in families.items()}
        for event in self._alphabet - set(result):
            result[event] = frozenset({frozenset()})  # conservative per event
        return result

    @property
    def alphabet(self) -> frozenset[str]:
        return self._alphabet

    @property
    def categories(self) -> frozenset[str]:
        return self._categories

    def create(self) -> BaseMonitor:
        monitor = self._factory()
        if not isinstance(monitor, BaseMonitor):
            raise FormalismError(
                f"raw factory returned {type(monitor).__name__}, expected a BaseMonitor"
            )
        return monitor

    def coenable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        if self._coenable is not None:
            return dict(self._coenable)
        conservative = frozenset({frozenset()})  # ALIVENESS == true
        return {event: conservative for event in self._alphabet}

    def enable_sets(self, goal: frozenset[str]) -> dict[str, SetOfEventSets]:
        if self._enable is not None:
            return dict(self._enable)
        events = sorted(self._alphabet)
        powerset = frozenset(
            frozenset(events[bit] for bit in range(len(events)) if mask >> bit & 1)
            for mask in range(1 << len(events))
        )
        return {event: powerset for event in self._alphabet}

    @property
    def supports_state_gc(self) -> bool:
        return False  # arbitrary user state: no static state analysis

    def monitor_from_state(self, payload: Any) -> BaseMonitor:
        monitor = self.create()
        if not isinstance(monitor, RawMonitor):
            from ..core.errors import PersistError

            raise PersistError(
                f"{type(monitor).__name__} from a raw factory cannot be "
                "restored from a state payload"
            )
        monitor._state = payload
        return monitor


def functional_template(
    transition: Callable[[Any, str], Any],
    verdict: Callable[[Any], str],
    initial: Any,
    alphabet: Iterable[str],
    categories: Iterable[str] = (),
    coenable: Mapping[str, SetOfEventSets] | None = None,
    enable: Mapping[str, SetOfEventSets] | None = None,
) -> RawTemplate:
    """Build a :class:`RawTemplate` from a pure transition function.

    Example — a counter property "never more releases than acquires"::

        template = functional_template(
            transition=lambda n, e: n + (1 if e == "acquire" else -1),
            verdict=lambda n: "violation" if n < 0 else "?",
            initial=0,
            alphabet={"acquire", "release"},
            categories={"violation"},
        )
    """
    return RawTemplate(
        factory=lambda: RawMonitor(transition, verdict, initial),
        alphabet=alphabet,
        categories=categories,
        coenable=coenable,
        enable=enable,
    )
