"""Instrumentation: aspect weaving, live-program monitoring, and the
monitored-program substrate.

Three layers:

* :mod:`~repro.instrument.aspects` — AspectJ-style pointcuts woven into
  Python classes by monkey-patching (the Section 5 setting);
* :mod:`~repro.instrument.live` — monitoring *real running programs*:
  ``LiveSession`` (engine/service front door with a weakref-driven death
  ledger), ``TraceWeaver`` (``sys.monitoring``/``settrace`` weaving of
  plain functions), and the ``emits`` decorator;
* :mod:`~repro.instrument.collections_shim` — the Java-collections
  substrate the DaCapo-analog workloads run against.
"""

from .aspects import CallContext, Pointcut, Weaver, after_returning, before
from .live import (
    FunctionContext,
    FunctionPointcut,
    LiveBinding,
    LiveSession,
    TraceWeaver,
    emits,
    on_call,
    on_return,
)
from .collections_shim import (
    ConcurrentModificationError,
    HashedObject,
    MethodBody,
    MonitoredCollection,
    MonitoredFile,
    MonitoredHashSet,
    MonitoredIterator,
    MonitoredLock,
    MonitoredMap,
    MonitoredMapView,
    NoSuchElementError,
    SynchronizedCollection,
    SynchronizedMap,
    SynchronizedMapView,
)

__all__ = [
    "CallContext",
    "Pointcut",
    "Weaver",
    "after_returning",
    "before",
    "FunctionContext",
    "FunctionPointcut",
    "LiveBinding",
    "LiveSession",
    "TraceWeaver",
    "emits",
    "on_call",
    "on_return",
    "ConcurrentModificationError",
    "HashedObject",
    "MethodBody",
    "MonitoredCollection",
    "MonitoredFile",
    "MonitoredHashSet",
    "MonitoredIterator",
    "MonitoredLock",
    "MonitoredMap",
    "MonitoredMapView",
    "NoSuchElementError",
    "SynchronizedCollection",
    "SynchronizedMap",
    "SynchronizedMapView",
]
