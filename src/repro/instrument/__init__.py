"""Instrumentation: aspect weaving and the monitored-program substrate."""

from .aspects import CallContext, Pointcut, Weaver, after_returning, before
from .collections_shim import (
    ConcurrentModificationError,
    HashedObject,
    MethodBody,
    MonitoredCollection,
    MonitoredFile,
    MonitoredHashSet,
    MonitoredIterator,
    MonitoredLock,
    MonitoredMap,
    MonitoredMapView,
    NoSuchElementError,
    SynchronizedCollection,
    SynchronizedMap,
    SynchronizedMapView,
)

__all__ = [
    "CallContext",
    "Pointcut",
    "Weaver",
    "after_returning",
    "before",
    "ConcurrentModificationError",
    "HashedObject",
    "MethodBody",
    "MonitoredCollection",
    "MonitoredFile",
    "MonitoredHashSet",
    "MonitoredIterator",
    "MonitoredLock",
    "MonitoredMap",
    "MonitoredMapView",
    "NoSuchElementError",
    "SynchronizedCollection",
    "SynchronizedMap",
    "SynchronizedMapView",
]
