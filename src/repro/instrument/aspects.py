"""Aspect weaving — the Python substitute for AspectJ (Section 5 settings).

The paper's event declarations attach AspectJ pointcuts (``call``,
``target``, ``returning``, ``condition``, ``thread``) to monitored events.
This module provides the same capability by monkey-patching methods: a
:class:`Pointcut` names a class, a method, an advice position (``before`` /
``after``), how to bind spec parameters from the call, and an optional
``condition`` — a predicate over the :class:`CallContext` (the paper's
``condition`` pointcut extension: unlike ``if``, it can see the value
returned by the call, which is what distinguishes ``hasnexttrue`` from
``hasnextfalse``; it also sees the receiver, which the synchronization
properties use to test lock ownership).

Binding sources:

* ``"target"``  — the receiver (AspectJ ``target``);
* ``"result"``  — the return value (``after returning``);
* ``"thread"``  — the current thread object (the ``thread`` extension);
* ``"arg0"``, ``"arg1"``, ... — positional arguments;
* any callable — receives the :class:`CallContext` and returns the object.

A :class:`Weaver` installs pointcuts and restores the original methods on
:meth:`~Weaver.unweave` (or when used as a context manager), so monitored
and unmonitored runs of the same workload are possible in one process —
that is how the benchmark harness measures *overhead* like Figure 9(A).
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import ReproError
from ..runtime.engine import MonitoringEngine

__all__ = ["CallContext", "Pointcut", "Weaver", "before", "after_returning"]


@dataclass
class CallContext:
    """Everything an advice can see about one intercepted call."""

    target: Any
    args: tuple
    kwargs: dict
    result: Any = None


#: How to extract one parameter object from a call.
BindSource = "str | Callable[[CallContext], Any]"


@dataclass(frozen=True)
class Pointcut:
    """One advice: intercept ``cls.method`` and emit ``event``."""

    cls: type
    method: str
    event: str
    when: str  # "before" | "after"
    bind: tuple[tuple[str, Any], ...]
    condition: Callable[[Any], bool] | None = None

    def extract(self, context: CallContext) -> dict[str, Any]:
        """Bind the advice's spec parameters from one intercepted call."""
        values: dict[str, Any] = {}
        for param, source in self.bind:
            values[param] = _resolve(source, context)
        return values


def _resolve(source: Any, context: CallContext) -> Any:
    if callable(source):
        return source(context)
    if source == "target":
        return context.target
    if source == "result":
        return context.result
    if source == "thread":
        return threading.current_thread()
    if isinstance(source, str) and source.startswith("arg"):
        index = int(source[3:])
        return context.args[index]
    raise ReproError(f"unknown binding source {source!r}")


def before(
    cls: type,
    method: str,
    event: str,
    bind: dict[str, Any],
    condition: Callable[[Any], bool] | None = None,
) -> Pointcut:
    """``before(...) : call(...)`` advice."""
    return Pointcut(cls, method, event, "before", tuple(bind.items()), condition)


def after_returning(
    cls: type,
    method: str,
    event: str,
    bind: dict[str, Any],
    condition: Callable[[Any], bool] | None = None,
) -> Pointcut:
    """``after(...) returning(r) : call(...) && condition(...)`` advice."""
    return Pointcut(cls, method, event, "after", tuple(bind.items()), condition)


@dataclass
class Weaver:
    """Installs pointcuts into classes and emits their events to an engine."""

    engine: MonitoringEngine
    _installed: list[tuple[type, str, Any]] = field(default_factory=list)
    #: (class, method) -> list of pointcuts sharing that join point.
    _by_joinpoint: dict[tuple[type, str], list[Pointcut]] = field(default_factory=dict)

    def weave(self, pointcuts: "Pointcut | list[Pointcut]") -> "Weaver":
        """Install advice; multiple pointcuts may share one join point.

        Identical pointcuts are woven once: several specifications may
        observe the same program event (HASNEXT's and UNSAFEITER's ``next``
        are the same observation), and one advice must feed all of them —
        exactly as a single AspectJ advice serves every matching JavaMOP
        specification.  Without the deduplication, monitoring the five
        evaluated properties together would double-count shared events.
        """
        if isinstance(pointcuts, Pointcut):
            pointcuts = [pointcuts]
        for pointcut in pointcuts:
            key = (pointcut.cls, pointcut.method)
            if key not in self._by_joinpoint:
                self._by_joinpoint[key] = []
                self._install(pointcut.cls, pointcut.method)
            if pointcut not in self._by_joinpoint[key]:
                self._by_joinpoint[key].append(pointcut)
        return self

    def _install(self, cls: type, method: str) -> None:
        try:
            original = getattr(cls, method)
        except AttributeError:
            raise ReproError(f"{cls.__name__} has no method {method!r}") from None
        key = (cls, method)
        weaver = self

        @functools.wraps(original)
        def advised(target: Any, *args: Any, **kwargs: Any) -> Any:
            context = CallContext(target=target, args=args, kwargs=kwargs)
            # .get: a stale wrapper may briefly survive on a class if
            # weavers are torn down out of LIFO order; it then degrades to a
            # transparent pass-through instead of crashing the program.
            for pointcut in weaver._by_joinpoint.get(key, ()):
                if pointcut.when == "before" and weaver._passes(pointcut, context):
                    weaver.engine.emit(
                        pointcut.event, _strict=False, **pointcut.extract(context)
                    )
            context.result = original(target, *args, **kwargs)
            for pointcut in weaver._by_joinpoint.get(key, ()):
                if pointcut.when == "after" and weaver._passes(pointcut, context):
                    weaver.engine.emit(
                        pointcut.event, _strict=False, **pointcut.extract(context)
                    )
            return context.result

        advised.__rv_original__ = original  # type: ignore[attr-defined]
        advised.__rv_weaver__ = weaver  # type: ignore[attr-defined]
        setattr(cls, method, advised)
        self._installed.append((cls, method, original))

    @staticmethod
    def _passes(pointcut: Pointcut, context: CallContext) -> bool:
        if pointcut.condition is None:
            return True
        return bool(pointcut.condition(context))

    def unweave(self) -> None:
        """Restore every original method (idempotent).

        Weavers sharing a join point must unweave in LIFO order (last woven,
        first unwoven) — the usual monkey-patch discipline.  If another
        weaver's wrapper is currently on top, this weaver leaves the class
        attribute alone: its own advice already degrades to a pass-through
        (``_by_joinpoint`` is cleared), so out-of-order teardown cannot
        break the program; the attribute is restored when the top weaver
        exits.
        """
        for cls, method, original in reversed(self._installed):
            current = cls.__dict__.get(method)
            foreign_wrapper = (
                current is not None
                and getattr(current, "__rv_original__", None) is not None
                and getattr(current, "__rv_weaver__", None) is not self
            )
            if not foreign_wrapper:
                setattr(cls, method, original)
        self._installed.clear()
        self._by_joinpoint.clear()

    def __enter__(self) -> "Weaver":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.unweave()
