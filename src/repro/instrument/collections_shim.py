"""Monitored-program substrate: Java-style collections, maps, locks, files.

The paper's workloads are Java programs exercising ``java.util`` —
Collections, Iterators, Maps and their synchronized wrappers — plus
re-entrant locks and file handles for the non-iterator properties.  This
module is the Python analog: plain classes with Java-shaped APIs that the
instrumentation layer (:mod:`repro.instrument.aspects`) weaves events onto.
The classes themselves know nothing about monitoring, exactly like the
benchmarked programs in the paper.

Lifetimes mirror the Java originals: an iterator holds a strong reference
to its collection (so a live iterator keeps the collection alive), while a
collection does *not* reference its iterators — which is why, in most
programs, "Collections have much longer lifetimes than the Iterators
created from them" and the JavaMOP leak of Section 1 arises.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator

from ..core.errors import ReproError

__all__ = [
    "NoSuchElementError",
    "ConcurrentModificationError",
    "MonitoredCollection",
    "MonitoredIterator",
    "MonitoredMap",
    "MonitoredMapView",
    "SynchronizedCollection",
    "SynchronizedMap",
    "SynchronizedMapView",
    "MonitoredLock",
    "MonitoredFile",
    "MonitoredHashSet",
    "MethodBody",
    "HashedObject",
]


class NoSuchElementError(ReproError):
    """Java's ``NoSuchElementException``: ``next()`` past the end."""


class ConcurrentModificationError(ReproError):
    """Java's ``ConcurrentModificationException`` (fail-fast iterators)."""


class MonitoredCollection:
    """An ``ArrayList``-shaped collection with Java iterator semantics."""

    def __init__(self, items: Iterable[Any] = ()):
        self._items: list[Any] = list(items)
        self._mod_count = 0
        #: When True, iterators raise ConcurrentModificationError themselves
        #: (the JVM behavior); False lets the violation reach the monitors,
        #: which is the interesting case for UNSAFEITER.
        self.fail_fast = False

    # -- java.util.Collection API -------------------------------------------

    def add(self, item: Any) -> bool:
        self._items.append(item)
        self._mod_count += 1
        return True

    def remove(self, item: Any) -> bool:
        try:
            self._items.remove(item)
        except ValueError:
            return False
        self._mod_count += 1
        return True

    def clear(self) -> None:
        self._items.clear()
        self._mod_count += 1

    def contains(self, item: Any) -> bool:
        return item in self._items

    def size(self) -> int:
        return len(self._items)

    def is_empty(self) -> bool:
        return not self._items

    def iterator(self) -> "MonitoredIterator":
        return MonitoredIterator(self)

    def elements(self) -> "MonitoredIterator":
        """``Vector.elements()`` analog: an Enumeration over the collection.

        Enumerations are not fail-fast in Java, which is exactly why the
        SAFEENUM property monitors them.
        """
        return MonitoredIterator(self)

    def get(self, index: int) -> Any:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:  # pythonic convenience, unmonitored
        return iter(list(self._items))


class MonitoredIterator:
    """A Java-style iterator: explicit ``has_next()`` / ``next()``.

    Holds a strong reference to its source collection (as in Java); the
    collection does not know its iterators.
    """

    def __init__(self, source: MonitoredCollection):
        self._source = source
        self._index = 0
        self._expected_mod_count = source._mod_count

    def has_next(self) -> bool:
        return self._index < len(self._source._items)

    def next(self) -> Any:
        if self._source.fail_fast and self._expected_mod_count != self._source._mod_count:
            raise ConcurrentModificationError(
                "collection modified during iteration"
            )
        if self._index >= len(self._source._items):
            raise NoSuchElementError("iterator exhausted")
        item = self._source._items[self._index]
        self._index += 1
        return item

    @property
    def source(self) -> MonitoredCollection:
        return self._source


class MonitoredMap:
    """A ``HashMap``-shaped map whose views are :class:`MonitoredMapView`."""

    def __init__(self) -> None:
        self._data: dict[Any, Any] = {}
        self._mod_count = 0

    def put(self, key: Any, value: Any) -> Any:
        previous = self._data.get(key)
        self._data[key] = value
        self._mod_count += 1
        return previous

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def remove(self, key: Any) -> Any:
        previous = self._data.pop(key, None)
        self._mod_count += 1
        return previous

    def clear(self) -> None:
        self._data.clear()
        self._mod_count += 1

    def update(self, other: "MonitoredMap | dict") -> None:
        """``Map.putAll`` analog; every inserted pair goes through ``put``
        so woven ``updatemap`` advice observes bulk updates too."""
        items = other._data if isinstance(other, MonitoredMap) else other
        for key, value in dict(items).items():
            self.put(key, value)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        """``putIfAbsent`` analog: only an actual insertion counts as a
        modification (and emits the woven ``put`` event)."""
        if key in self._data:
            return self._data[key]
        self.put(key, default)
        return default

    def __ior__(self, other: "MonitoredMap | dict") -> "MonitoredMap":
        """``m |= other`` — pythonic spelling of :meth:`update`."""
        self.update(other)
        return self

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def size(self) -> int:
        return len(self._data)

    def key_set(self) -> "MonitoredMapView":
        return MonitoredMapView(self, kind="keys")

    def values(self) -> "MonitoredMapView":
        return MonitoredMapView(self, kind="values")


class MonitoredMapView(MonitoredCollection):
    """A key/value view of a map (``Map.keySet()`` / ``Map.values()``).

    Iterating the view reflects the backing map; modifying the *map* while a
    view iterator is live is the UNSAFEMAPITER violation.
    """

    def __init__(self, backing: MonitoredMap, kind: str):
        # Deliberately does NOT call the base __init__: the view owns no
        # storage; _items and _mod_count are live projections of the map.
        self._backing = backing
        self._kind = kind
        self.fail_fast = False

    @property
    def backing_map(self) -> MonitoredMap:
        return self._backing

    @property
    def _items(self) -> list[Any]:  # type: ignore[override]
        data = self._backing._data
        return list(data.keys()) if self._kind == "keys" else list(data.values())

    @property
    def _mod_count(self) -> int:  # type: ignore[override]
        return self._backing._mod_count

    def add(self, item: Any) -> bool:
        raise ReproError("map views are read-through; modify the backing map")

    def remove(self, item: Any) -> bool:
        raise ReproError("map views are read-through; modify the backing map")

    def clear(self) -> None:
        raise ReproError("map views are read-through; modify the backing map")


class SynchronizedCollection(MonitoredCollection):
    """``Collections.synchronizedCollection`` analog.

    Carries a lock; ``holds_lock()`` tells whether the current thread is
    inside a ``with collection.lock:`` block — the UNSAFESYNCCOLL property
    requires iterator creation and access to happen while it is held.
    """

    def __init__(self, items: Iterable[Any] = ()):
        super().__init__(items)
        self.lock = threading.RLock()
        self._holder: int | None = None
        self._depth = 0

    def __enter__(self) -> "SynchronizedCollection":
        self.lock.acquire()
        self._holder = threading.get_ident()
        self._depth += 1
        return self

    def __exit__(self, *_exc: Any) -> None:
        self._depth -= 1
        if self._depth == 0:
            self._holder = None
        self.lock.release()

    def holds_lock(self) -> bool:
        return self._holder == threading.get_ident() and self._depth > 0


class MonitoredLock:
    """A re-entrant lock with explicit ``acquire``/``release`` (Figure 4)."""

    def __init__(self, name: str = "lock"):
        self.name = name
        self._depth = 0
        self._owner: int | None = None

    def acquire(self) -> None:
        ident = threading.get_ident()
        if self._owner is not None and self._owner != ident:
            raise ReproError(
                f"lock {self.name!r} is held by another thread (single-threaded shim)"
            )
        self._owner = ident
        self._depth += 1

    def release(self) -> None:
        if self._owner != threading.get_ident() or self._depth == 0:
            raise ReproError(f"releasing lock {self.name!r} not held")
        self._depth -= 1
        if self._depth == 0:
            self._owner = None

    @property
    def depth(self) -> int:
        return self._depth


class MonitoredFile:
    """A file-handle shim for SAFEFILE / SAFEFILEWRITER.

    Deliberately does not touch the real filesystem: the properties are
    about call *protocols* (open before read/write, no use after close),
    not about file contents.
    """

    def __init__(self, name: str = "file"):
        self.name = name
        self.is_open = False
        self.reads = 0
        self.writes = 0

    def open(self) -> "MonitoredFile":
        self.is_open = True
        return self

    def read(self) -> str:
        self.reads += 1
        return ""  # protocol shim; contents are irrelevant to the property

    def write(self, _data: str) -> None:
        self.writes += 1

    def close(self) -> None:
        self.is_open = False


class MonitoredHashSet:
    """A hash set for the HASHSET property (mutating a stored object's hash).

    Elements provide ``hash_code()``; the set buckets by its value at
    insertion time, so mutating an element afterwards makes it unfindable —
    the defect HASHSET detects.
    """

    def __init__(self) -> None:
        self._buckets: dict[int, list[Any]] = {}

    def add(self, item: Any) -> bool:
        code = item.hash_code()
        bucket = self._buckets.setdefault(code, [])
        if item in bucket:
            return False
        bucket.append(item)
        return True

    def contains(self, item: Any) -> bool:
        return item in self._buckets.get(item.hash_code(), [])

    def remove(self, item: Any) -> bool:
        bucket = self._buckets.get(item.hash_code(), [])
        if item in bucket:
            bucket.remove(item)
            return True
        return False

    def size(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SynchronizedMap(MonitoredMap):
    """``Collections.synchronizedMap`` analog (for UNSAFESYNCMAP)."""

    def __init__(self) -> None:
        super().__init__()
        self.lock = threading.RLock()
        self._holder: int | None = None
        self._depth = 0

    def __enter__(self) -> "SynchronizedMap":
        self.lock.acquire()
        self._holder = threading.get_ident()
        self._depth += 1
        return self

    def __exit__(self, *_exc: Any) -> None:
        self._depth -= 1
        if self._depth == 0:
            self._holder = None
        self.lock.release()

    def holds_lock(self) -> bool:
        return self._holder == threading.get_ident() and self._depth > 0

    def key_set(self) -> "SynchronizedMapView":
        return SynchronizedMapView(self, kind="keys")

    def values(self) -> "SynchronizedMapView":
        return SynchronizedMapView(self, kind="values")


class SynchronizedMapView(MonitoredMapView):
    """A view of a synchronized map; shares the backing map's lock state."""

    def holds_lock(self) -> bool:
        backing = self.backing_map
        assert isinstance(backing, SynchronizedMap)
        return backing.holds_lock()


class MethodBody:
    """Explicit method-execution boundaries.

    The paper's SAFELOCK events ``begin``/``end`` come from the AspectJ
    ``execution(* *.*(..))`` pointcut; Python has no weave-every-method
    facility, so monitored workloads mark method bodies explicitly::

        body = MethodBody()
        body.enter()
        ...
        body.exit()

    (or use it as a context manager).  The instrumentation layer weaves the
    ``enter``/``exit`` calls, binding the current thread.
    """

    def enter(self) -> "MethodBody":
        return self

    def exit(self) -> None:
        return None

    def __enter__(self) -> "MethodBody":
        return self.enter()

    def __exit__(self, *_exc: Any) -> None:
        self.exit()


class HashedObject:
    """An element whose hash can be mutated after insertion (HASHSET)."""

    def __init__(self, code: int):
        self._code = code

    def hash_code(self) -> int:
        return self._code

    def mutate(self) -> None:
        self._code += 1
