"""Live-program instrumentation: monitor real Python objects in real runs.

The rest of the stack learns about parameter-object deaths either lazily
(weak-keyed structures notice dead keys as they are touched) or from a
replayed trace's retirement points.  This module closes the loop for *live*
executions — the regime dynamic-analysis systems operate in — with three
pieces:

* :class:`LiveBinding` — an identity map over every object bound as a
  specification parameter.  Each watched object carries a ``weakref.ref``
  callback; when the interpreter reclaims it, the death is recorded as a
  coalesced ``(parameter name, id)`` pair and, at the next safe event
  boundary, injected into the engine through
  :meth:`~repro.runtime.engine.MonitoringEngine.note_deaths` — the same
  ``purge_ids`` flow the engine's own eager watcher feeds.  The paper's
  monitor GC is thereby driven by the *host garbage collector* instead of
  trace markers.
* :class:`TraceWeaver` — an aspect weaver for plain Python functions: on
  CPython 3.12+ it uses :pep:`669` ``sys.monitoring`` local events (near
  zero cost for unmonitored code); on 3.11 it falls back to
  ``sys.settrace``.  A :class:`FunctionPointcut` names a function, an
  advice position (``call``/``return``), parameter bindings, and an
  optional condition — the :mod:`repro.instrument.aspects` model lifted
  from monkey-patched methods to arbitrary user code.
* :class:`LiveSession` — the front door: owns (or wraps) a
  :class:`~repro.runtime.engine.MonitoringEngine` or
  :class:`~repro.service.MonitorService`, watches every emitted parameter
  in its :class:`LiveBinding`, drains deaths at event boundaries, weaves
  class pointcuts, function pointcuts and :func:`emits` decorators, and
  can record the run — *including explicit death markers* — to a
  tracelog for offline re-monitoring.

The recorded-trace story is round-trip tested: a workload run live (real
object drops) and its recorded trace replayed with death markers yield
identical verdict multisets and monitor-collection counts across every GC
strategy and both dispatch paths
(``tests/instrument/test_live_equivalence.py``).
"""

from __future__ import annotations

import functools
import inspect
import sys
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, TextIO

from time import perf_counter

from ..core.errors import ReproError
from ..obs.catalogue import declare as _declare_metric
from ..obs.telemetry import Telemetry, as_telemetry
from ..runtime.engine import MonitoringEngine
from ..runtime.tracelog import TraceRecorder
from .aspects import Pointcut, Weaver

__all__ = [
    "LiveBinding",
    "FunctionContext",
    "FunctionPointcut",
    "on_call",
    "on_return",
    "TraceWeaver",
    "emits",
    "LiveSession",
    "active_sessions",
]


# ---------------------------------------------------------------------------
# The weakref-driven death ledger.
# ---------------------------------------------------------------------------


class LiveBinding:
    """Identity map of live parameter objects with death callbacks.

    ``watch(name, value)`` registers one object under one parameter name
    (an object bound under several names is registered once with all its
    names).  When the interpreter reclaims a watched object, the
    ``weakref`` callback — which may run in any thread, possibly
    mid-dispatch — only appends to a pending ledger; :meth:`drain`
    coalesces the ledger into the ``{parameter name: {dead ids}}`` map
    that :meth:`MonitoringEngine.note_deaths` consumes at the next safe
    event boundary.

    Non-weak-referenceable values (ints, strings, tuples...) are treated
    as immortal and never watched — identical to
    :class:`~repro.runtime.refs.ParamRef` semantics.
    """

    __slots__ = ("_watched", "_pending", "_pending_lock")

    def __init__(self) -> None:
        #: id -> (weakref guard, parameter names the object is bound under).
        self._watched: dict[int, tuple[weakref.ref, set[str]]] = {}
        #: Deaths since the last drain: (parameter name, dead id).
        self._pending: list[tuple[str, int]] = []
        #: Guards the pending-swap in drain() against a death callback
        #: appending from another thread at the same moment.
        self._pending_lock = threading.Lock()

    def watch(self, name: str, value: Any) -> None:
        """Track ``value`` as a parameter object bound under ``name``."""
        key = id(value)
        entry = self._watched.get(key)
        if entry is not None:
            if entry[0]() is value:
                entry[1].add(name)
                return
            # Recycled id: the previous holder died but its callback has
            # not fired yet (reference cycles).  Record the missed death so
            # the new registration does not shadow it.
            del self._watched[key]
            self._note(entry[1], key)
        try:
            ref = weakref.ref(value, lambda _ref, _key=key: self._on_death(_key))
        except TypeError:
            return  # immortal value: it never dies, nothing to watch
        self._watched[key] = (ref, {name})

    def _on_death(self, key: int) -> None:
        entry = self._watched.get(key)
        if entry is None or entry[0]() is not None:
            # Handled at re-registration time, or the id was re-registered
            # for a new live object.
            return
        del self._watched[key]
        self._note(entry[1], key)

    def _note(self, names: Iterable[str], dead_id: int) -> None:
        with self._pending_lock:
            pending = self._pending
            for name in names:
                pending.append((name, dead_id))

    def drain(self) -> dict[str, set[int]]:
        """Coalesced deaths since the last drain (empty dict when none)."""
        if not self._pending:
            return {}
        with self._pending_lock:
            pending, self._pending = self._pending, []
        dead: dict[str, set[int]] = {}
        for name, dead_id in pending:
            dead.setdefault(name, set()).add(dead_id)
        return dead

    @property
    def live_count(self) -> int:
        """How many watched objects are currently alive."""
        return len(self._watched)

    def __len__(self) -> int:
        return len(self._watched)


# ---------------------------------------------------------------------------
# Function pointcuts (the user-code analog of instrument.aspects).
# ---------------------------------------------------------------------------


@dataclass
class FunctionContext:
    """What a function advice can see: the call's locals and its result."""

    locals: Mapping[str, Any]
    result: Any = None


def _resolve_source(source: Any, context: FunctionContext) -> Any:
    """Extract one parameter object from a function call context."""
    if callable(source):
        return source(context)
    if source == "result":
        return context.result
    if source == "thread":
        return threading.current_thread()
    if source == "self":
        return context.locals["self"]
    if isinstance(source, str) and source.startswith("arg:"):
        return context.locals[source[4:]]
    raise ReproError(f"unknown function binding source {source!r}")


@dataclass(frozen=True)
class FunctionPointcut:
    """One advice on a plain Python function: intercept calls, emit an event.

    ``when`` is ``"call"`` (advice before the body runs, sees arguments)
    or ``"return"`` (advice after a normal return, sees ``result``;
    exceptional exits emit nothing, like AspectJ ``after returning``).
    Binding sources: ``"arg:<name>"`` (a parameter of the function),
    ``"self"``, ``"result"``, ``"thread"``, or any callable receiving the
    :class:`FunctionContext`.
    """

    code: Any  # the target's code object (the weaving key)
    event: str
    when: str  # "call" | "return"
    bind: tuple[tuple[str, Any], ...]
    condition: Callable[[FunctionContext], bool] | None = None

    def extract(self, context: FunctionContext) -> dict[str, Any]:
        """Bind the advice's spec parameters from one call."""
        return {
            param: _resolve_source(source, context) for param, source in self.bind
        }


#: Code-object flags marking suspendable frames (generator / coroutine /
#: async generator) — see the rejection rationale in :func:`_code_of`.
_SUSPENDABLE_FLAGS = (
    inspect.CO_GENERATOR | inspect.CO_COROUTINE | inspect.CO_ASYNC_GENERATOR
)


def _code_of(func: Any) -> Any:
    """The code object behind a function (through wrapper decorators).

    Suspendable functions (generators, coroutines, async generators) are
    refused: ``settrace`` reports every suspension/resumption as a
    return/call, while ``sys.monitoring``'s ``PY_START``/``PY_RETURN``
    fire once per invocation — the same program would produce different
    event streams per backend.  Wrap such functions with :func:`emits`
    (or a session :meth:`~LiveSession.probe`) instead, which observes the
    *call* rather than the frame.
    """
    func = inspect.unwrap(func)
    code = getattr(func, "__code__", None)
    if code is None:
        raise ReproError(
            f"{func!r} has no __code__; only pure-Python functions can be "
            "trace-woven (wrap C callables with the emits decorator instead)"
        )
    if code.co_flags & _SUSPENDABLE_FLAGS:
        raise ReproError(
            f"{func!r} is a generator/coroutine; its frame suspensions "
            "would be reported as calls/returns under settrace — use the "
            "emits decorator (observes the call) instead"
        )
    return code


def on_call(
    func: Any,
    event: str,
    bind: dict[str, Any],
    condition: Callable[[FunctionContext], bool] | None = None,
) -> FunctionPointcut:
    """Advice firing when ``func``'s body is entered."""
    return FunctionPointcut(_code_of(func), event, "call", tuple(bind.items()), condition)


def on_return(
    func: Any,
    event: str,
    bind: dict[str, Any],
    condition: Callable[[FunctionContext], bool] | None = None,
) -> FunctionPointcut:
    """Advice firing when ``func`` returns normally (sees ``result``)."""
    return FunctionPointcut(_code_of(func), event, "return", tuple(bind.items()), condition)


class _CodeHooks:
    """The pointcuts woven into one code object, split by advice position."""

    __slots__ = ("calls", "returns")

    def __init__(self) -> None:
        self.calls: list[FunctionPointcut] = []
        self.returns: list[FunctionPointcut] = []


class TraceWeaver:
    """Weave :class:`FunctionPointcut` advice into running user code.

    Backends:

    * ``"monitoring"`` (CPython 3.12+, the default there) — :pep:`669`
      ``sys.monitoring`` with *local* ``PY_START``/``PY_RETURN`` events on
      exactly the woven code objects: unmonitored code runs at full speed.
    * ``"settrace"`` (3.11 fallback, selectable everywhere) — a global
      ``sys.settrace`` hook that declines to trace every frame whose code
      object is not woven.  Inherent ``settrace`` limitation: threads
      already running when :meth:`weave` is first called are never
      instrumented (``threading.settrace`` only affects threads started
      afterwards); start monitoring before worker threads, or use the
      ``sys.monitoring`` backend, which covers all threads.

    ``sink`` is anything with the engine ``emit`` signature — normally a
    :class:`LiveSession`, so emitted parameters are death-watched.  Use as
    a context manager or call :meth:`unweave` to restore the interpreter
    hooks.
    """

    def __init__(self, sink: Any, backend: str | None = None):
        if backend is None:
            backend = "monitoring" if hasattr(sys, "monitoring") else "settrace"
        if backend == "monitoring" and not hasattr(sys, "monitoring"):
            raise ReproError("sys.monitoring requires Python 3.12+")
        if backend not in ("monitoring", "settrace"):
            raise ReproError(f"unknown trace backend {backend!r}")
        self.sink = sink
        self.backend = backend
        self._by_code: dict[Any, _CodeHooks] = {}
        self._installed = False
        self._previous_trace: Any = None
        self._previous_threading_trace: Any = None
        self._tool_id: int | None = None

    # -- weaving -----------------------------------------------------------

    def weave(
        self, pointcuts: "FunctionPointcut | Iterable[FunctionPointcut]"
    ) -> "TraceWeaver":
        """Install advice; several pointcuts may share one function."""
        if isinstance(pointcuts, FunctionPointcut):
            pointcuts = [pointcuts]
        for pointcut in pointcuts:
            hooks = self._by_code.get(pointcut.code)
            if hooks is None:
                hooks = self._by_code[pointcut.code] = _CodeHooks()
                fresh = True
            else:
                fresh = False
            bucket = hooks.calls if pointcut.when == "call" else hooks.returns
            if pointcut not in bucket:
                bucket.append(pointcut)
            if not self._installed:
                self._install()
            if self.backend == "monitoring" and fresh:
                self._watch_code(pointcut.code)
        return self

    def unweave(self) -> None:
        """Remove every advice and restore the interpreter hooks."""
        if not self._installed:
            self._by_code.clear()
            return
        if self.backend == "settrace":
            sys.settrace(self._previous_trace)
            threading.settrace(self._previous_threading_trace)
        else:
            monitoring = sys.monitoring
            for code in self._by_code:
                try:
                    monitoring.set_local_events(self._tool_id, code, 0)
                except ValueError:
                    pass
            monitoring.register_callback(
                self._tool_id, monitoring.events.PY_START, None
            )
            monitoring.register_callback(
                self._tool_id, monitoring.events.PY_RETURN, None
            )
            monitoring.free_tool_id(self._tool_id)
            self._tool_id = None
        self._by_code.clear()
        self._installed = False

    def __enter__(self) -> "TraceWeaver":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.unweave()

    # -- advice firing -----------------------------------------------------

    def _fire(self, pointcuts: list[FunctionPointcut], context: FunctionContext) -> None:
        emit = self.sink.emit
        for pointcut in pointcuts:
            if pointcut.condition is None or pointcut.condition(context):
                emit(pointcut.event, _strict=False, **pointcut.extract(context))

    # -- settrace backend --------------------------------------------------

    def _install(self) -> None:
        if self.backend == "settrace":
            self._previous_trace = sys.gettrace()
            self._previous_threading_trace = threading.gettrace()
            sys.settrace(self._global_trace)
            threading.settrace(self._global_trace)
        else:
            self._install_monitoring()
        self._installed = True

    def _global_trace(self, frame: Any, event: str, _arg: Any) -> Any:
        if event != "call":
            return None
        hooks = self._by_code.get(frame.f_code)
        if hooks is None:
            return None  # decline: no line/return tracing for foreign frames
        if hooks.calls:
            self._fire(hooks.calls, FunctionContext(frame.f_locals))
        if not hooks.returns:
            return None
        raised = False

        def local_trace(frame: Any, event: str, arg: Any) -> Any:
            nonlocal raised
            if event == "exception":
                raised = True
            elif event == "line":
                # Execution resumed after the exception was caught inside
                # the frame; an exceptional unwind goes straight from
                # "exception" to "return" with no line in between.
                raised = False
            elif event == "return" and not raised:
                self._fire(hooks.returns, FunctionContext(frame.f_locals, arg))
            return local_trace

        return local_trace

    # -- sys.monitoring backend (3.12+) ------------------------------------

    def _install_monitoring(self) -> None:
        monitoring = sys.monitoring
        tool_id = None
        for candidate in range(6):
            if monitoring.get_tool(candidate) is None:
                try:
                    monitoring.use_tool_id(candidate, "repro-live")
                except ValueError:  # raced another tool; keep looking
                    continue
                tool_id = candidate
                break
        if tool_id is None:
            raise ReproError("no free sys.monitoring tool id")
        self._tool_id = tool_id
        monitoring.register_callback(
            tool_id, monitoring.events.PY_START, self._on_py_start
        )
        monitoring.register_callback(
            tool_id, monitoring.events.PY_RETURN, self._on_py_return
        )

    def _watch_code(self, code: Any) -> None:
        monitoring = sys.monitoring
        monitoring.set_local_events(
            self._tool_id, code,
            monitoring.events.PY_START | monitoring.events.PY_RETURN,
        )

    def _on_py_start(self, code: Any, _offset: int) -> Any:
        hooks = self._by_code.get(code)
        if hooks is not None and hooks.calls:
            # The callback runs as a regular call from the instrumented
            # frame, so that frame is our immediate caller.
            frame = sys._getframe(1)
            self._fire(hooks.calls, FunctionContext(frame.f_locals))
        return None

    def _on_py_return(self, code: Any, _offset: int, retval: Any) -> Any:
        hooks = self._by_code.get(code)
        if hooks is not None and hooks.returns:
            frame = sys._getframe(1)
            self._fire(hooks.returns, FunctionContext(frame.f_locals, retval))
        return None


# ---------------------------------------------------------------------------
# The ambient-session decorator API.
# ---------------------------------------------------------------------------

#: Innermost-last stack of active sessions; @emits-wrapped functions emit to
#: every active session (mutated only under the GIL from session enter/exit).
_ACTIVE_SESSIONS: list["LiveSession"] = []


def active_sessions() -> tuple["LiveSession", ...]:
    """The currently active sessions, outermost first."""
    return tuple(_ACTIVE_SESSIONS)


def _probe_wrapper(
    func: Callable,
    event: str,
    when: str,
    sources: tuple,
    condition: Callable[[FunctionContext], bool] | None,
    dispatch: Callable[[str, tuple, Any, FunctionContext], None],
    skip: Callable[[], bool] | None = None,
) -> Callable:
    """The shared wrapper behind :func:`emits` and :meth:`LiveSession.probe`.

    ``dispatch(event, sources, condition, context)`` performs the
    emission; ``skip`` (optional) short-circuits to the plain call when
    nobody is listening.
    """
    if when not in ("call", "return"):
        raise ReproError(f"unknown advice position {when!r}")
    signature = inspect.signature(func)

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if skip is not None and skip():
            return func(*args, **kwargs)
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        context = FunctionContext(bound.arguments)
        if when == "call":
            dispatch(event, sources, condition, context)
            return func(*args, **kwargs)
        result = func(*args, **kwargs)
        context.result = result
        dispatch(event, sources, condition, context)
        return result

    return wrapper


def emits(
    event: str,
    when: str = "call",
    bind: dict[str, Any] | None = None,
    condition: Callable[[FunctionContext], bool] | None = None,
) -> Callable:
    """Decorator: annotate a function so its calls emit a parametric event.

    The emission goes to every *active* :class:`LiveSession` (see
    :meth:`LiveSession.__enter__`); with none active the function runs
    unobserved at plain wrapper cost.  This is how library code is
    annotated once and monitored only when a session chooses to listen.

    ``bind`` maps spec parameters to sources (``"arg:<name>"``,
    ``"self"``, ``"result"``, ``"thread"``, or a callable on the
    :class:`FunctionContext`); ``when`` is ``"call"`` or ``"return"``.
    """
    sources = tuple((bind or {}).items())

    def decorate(func: Callable) -> Callable:
        return _probe_wrapper(
            func, event, when, sources, condition, _emit_ambient,
            skip=lambda: not _ACTIVE_SESSIONS,
        )

    return decorate


def _emit_ambient(
    event: str,
    sources: tuple,
    condition: Callable[[FunctionContext], bool] | None,
    context: FunctionContext,
) -> None:
    if condition is not None and not condition(context):
        return
    values = {param: _resolve_source(source, context) for param, source in sources}
    for session in _ACTIVE_SESSIONS:
        session.emit(event, _strict=False, **values)


# ---------------------------------------------------------------------------
# The live-monitoring session.
# ---------------------------------------------------------------------------


class LiveSession:
    """One live-monitoring run: engine/service + death ledger + weavers.

    ``sink`` is an existing :class:`~repro.runtime.engine.MonitoringEngine`
    or :class:`~repro.service.MonitorService`; with ``sink=None`` the
    session builds its own engine from ``properties`` (any form the engine
    constructor accepts — catalogue entries, spec text, compiled specs)
    and ``engine_options`` (``gc=``, ``system=``, ``dispatch=``, ...).

    Entering the session activates it:

    * catalogue properties carrying default instrumentation (class
      pointcuts or a ``weave(session)`` hook) are woven;
    * the session joins the ambient stack, so :func:`emits`-decorated
      user code starts reporting to it;
    * with ``record=`` (a text sink), every event — and every parameter
      death, as explicit markers — is written as a tracelog for offline
      replay.

    When the sink consumes injected deaths (eager propagation), every
    parameter of every emitted event is watched in the session's
    :class:`LiveBinding` and interpreter-observed deaths are drained and
    injected at the next event boundary; against a purely lazy sink the
    ledger is skipped — the weak-keyed structures notice dead keys on
    their own, and recorded death markers come from the recorder's symbol
    registry.  Exiting restores all woven code and interpreter hooks; the
    sink stays alive for inspection.
    """

    def __init__(
        self,
        sink: Any = None,
        properties: Any = None,
        *,
        record: TextIO | None = None,
        backend: str | None = None,
        telemetry: "Telemetry | bool | None" = None,
        **engine_options: Any,
    ):
        #: Weave-overhead telemetry: an exact per-pointcut-event counter
        #: plus a sampled emit-boundary timer (watch + death drain +
        #: dispatch — the full cost the weaving adds per woven event).
        #: A session-built engine shares this registry.
        self.telemetry = as_telemetry(telemetry)
        self._props = self._resolve_properties(properties)
        if sink is None:
            if not self._props:
                raise ReproError("LiveSession needs a sink or properties")
            if self.telemetry is not None:
                engine_options.setdefault("telemetry", self.telemetry)
            sink = MonitoringEngine(
                [prop for prop, _hook in self._props], **engine_options
            )
        elif engine_options:
            raise ReproError(
                "engine options are only used when the session builds its "
                "own engine (sink=None)"
            )
        self.sink = sink
        self.engine = sink if isinstance(sink, MonitoringEngine) else None
        self.binding = LiveBinding()
        #: The ledger matters only when the sink consumes injected deaths
        #: (eager propagation; note_deaths is a no-op under lazy, and the
        #: process backend tracks deaths through its symbol registry).
        #: Resolved once so the per-event hot path skips dead weight.
        self._track_deaths = self._sink_consumes_deaths(sink)
        self.recorder: TraceRecorder | None = None
        if record is not None:
            if self.engine is None:
                raise ReproError("recording requires an engine sink")
            self.recorder = TraceRecorder(record, record_deaths=True).attach(
                self.engine
            )
        self._backend = backend
        self._weaver: Weaver | None = None
        self._trace_weaver: TraceWeaver | None = None
        #: (cls, method, original, patched) monkey-patches, LIFO-restored.
        self._patches: list[tuple[type, str, Any, Any]] = []
        self._active = False
        self._m_live_events = None
        self._m_live_latency = None
        self._live_sampler = None
        self._live_counters: dict[str, Any] = {}
        self._live_timers: dict[str, Any] = {}
        if self.telemetry is not None:
            obs_registry = self.telemetry.registry
            self._m_live_events = _declare_metric(
                obs_registry, "repro_live_events_total"
            )
            self._m_live_latency = _declare_metric(
                obs_registry, "repro_live_pointcut_seconds"
            )
            self._live_sampler = self.telemetry.sampler()

    @staticmethod
    def _sink_consumes_deaths(sink: Any) -> bool:
        """Whether injected deaths reach anything (see note_deaths docs)."""
        if isinstance(sink, MonitoringEngine):
            return sink.propagation != "lazy"
        engines = getattr(sink, "engines", None)
        if engines:  # thread/inline service; process mode has none
            return any(engine.propagation != "lazy" for engine in engines)
        return False

    @staticmethod
    def _resolve_properties(properties: Any) -> list[tuple[Any, Any]]:
        """Normalize to (engine-consumable property, weave hook) pairs."""
        if properties is None:
            return []
        if isinstance(properties, (str, bytes)) or not isinstance(properties, (list, tuple)):
            properties = [properties]
        resolved: list[tuple[Any, Any]] = []
        for item in properties:
            if isinstance(item, str) and "{" not in item:
                from ..properties import CATALOGUE

                try:
                    item = CATALOGUE[item]
                except KeyError:
                    raise ReproError(
                        f"unknown property key {item!r} "
                        f"(known: {sorted(CATALOGUE)})"
                    ) from None
            resolved.append((item, getattr(item, "weave_hook", None)))
        return resolved

    # -- lifecycle ---------------------------------------------------------

    def activate(self) -> "LiveSession":
        """Weave default instrumentation and join the ambient stack."""
        if self._active:
            return self
        self._active = True
        _ACTIVE_SESSIONS.append(self)
        for prop, hook in self._props:
            factory = getattr(prop, "pointcut_factory", None)
            if factory is not None:
                pointcuts = factory()
                if pointcuts:
                    self.weave(pointcuts)
            if hook is not None:
                hook(self)
        return self

    def close(self) -> None:
        """Unweave everything and leave the ambient stack (idempotent)."""
        if self._trace_weaver is not None:
            self._trace_weaver.unweave()
            self._trace_weaver = None
        if self._weaver is not None:
            self._weaver.unweave()
            self._weaver = None
        for cls, method, original, patched in reversed(self._patches):
            if cls.__dict__.get(method) is patched:
                setattr(cls, method, original)
        self._patches.clear()
        if self._active:
            self._active = False
            try:
                _ACTIVE_SESSIONS.remove(self)
            except ValueError:
                pass
        self.flush_deaths()

    def __enter__(self) -> "LiveSession":
        return self.activate()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def enable_flight_recorder(self, recorder: Any = None) -> Any:
        """Attach a flight recorder to the session's sink engine.

        Convenience passthrough to
        :meth:`repro.runtime.engine.MonitoringEngine.enable_flight_recorder`
        (the sink must expose it — a bare engine or a durable engine);
        woven events then leave a bounded in-memory ring of recent
        history, dumped on verdict bursts for postmortems of live runs.
        """
        target = self.engine if self.engine is not None else self.sink
        enable = getattr(target, "enable_flight_recorder", None)
        if enable is None:
            raise ReproError(
                "this session's sink does not support a flight recorder"
            )
        return enable(recorder)

    # -- emission ----------------------------------------------------------

    def emit(self, event: str, _strict: bool = False, **params: Any) -> None:
        """Watch the parameters, inject pending deaths, dispatch the event.

        This is the safe event boundary: deaths the interpreter reported
        since the last emission are drained from the :class:`LiveBinding`
        and handed to the sink's ``note_deaths`` *before* the event, so
        eager propagation sees them exactly where a recorded trace's death
        markers would land.  Against a purely lazy sink the ledger is
        skipped entirely — the weak-keyed structures (and the recorder's
        symbol registry, for death markers) observe deaths on their own.
        """
        if self._m_live_events is not None:
            counter = self._live_counters.get(event)
            if counter is None:
                counter = self._live_counters[event] = self._m_live_events.labels(
                    event
                )
            counter.inc()
            if self._live_sampler.sample():
                timer = self._live_timers.get(event)
                if timer is None:
                    timer = self._live_timers[event] = self._m_live_latency.labels(
                        event
                    )
                start = perf_counter()
                try:
                    self._emit_inner(event, _strict, params)
                finally:
                    timer.observe(perf_counter() - start)
                return
        self._emit_inner(event, _strict, params)

    def _emit_inner(self, event: str, _strict: bool, params: dict[str, Any]) -> None:
        if self._track_deaths:
            watch = self.binding.watch
            for name, value in params.items():
                watch(name, value)
            dead = self.binding.drain()
            if dead:
                self.sink.note_deaths(dead)
        self.sink.emit(event, _strict=_strict, **params)

    def flush_deaths(self) -> None:
        """Drain the death ledger outside an event (end-of-run accounting)."""
        if self._track_deaths:
            dead = self.binding.drain()
            if dead:
                self.sink.note_deaths(dead)
        if self.recorder is not None:
            self.recorder.flush_deaths()

    # -- weaving utilities -------------------------------------------------

    def weave(self, pointcuts: "Pointcut | list[Pointcut]") -> "LiveSession":
        """Weave class-method pointcuts (restored on :meth:`close`)."""
        if self._weaver is None:
            self._weaver = Weaver(self)
        self._weaver.weave(pointcuts)
        return self

    def weave_functions(
        self, pointcuts: "FunctionPointcut | Iterable[FunctionPointcut]"
    ) -> "LiveSession":
        """Weave user-code function pointcuts through the trace backend."""
        if self._trace_weaver is None:
            self._trace_weaver = TraceWeaver(self, backend=self._backend)
        self._trace_weaver.weave(pointcuts)
        return self

    def patch_method(self, cls: type, method: str, around: Callable) -> None:
        """Install around-advice on ``cls.method`` (restored on close).

        ``around(original, *args, **kwargs)`` runs instead of the method
        and decides if/how to call ``original``.  This is the escape hatch
        for instrumentation a declarative pointcut cannot express (e.g.
        attaching completion callbacks to objects a call returns).
        """
        original = getattr(cls, method)

        @functools.wraps(original)
        def patched(*args: Any, **kwargs: Any) -> Any:
            return around(original, *args, **kwargs)

        setattr(cls, method, patched)
        self._patches.append((cls, method, original, patched))

    def probe(
        self,
        event: str,
        when: str = "call",
        bind: dict[str, Any] | None = None,
        condition: Callable[[FunctionContext], bool] | None = None,
    ) -> Callable:
        """Session-bound :func:`emits`: the wrapper reports only here."""
        sources = tuple((bind or {}).items())

        def decorate(func: Callable) -> Callable:
            return _probe_wrapper(
                func, event, when, sources, condition, self._emit_context
            )

        return decorate

    def _emit_context(
        self,
        event: str,
        sources: tuple,
        condition: Callable[[FunctionContext], bool] | None,
        context: FunctionContext,
    ) -> None:
        if condition is not None and not condition(context):
            return
        self.emit(
            event,
            **{param: _resolve_source(source, context) for param, source in sources},
        )
