"""Observability plane: metrics, hot-path profiling, and verdict provenance.

The paper's evaluation (Figures 9/10 of the PLDI'11 monitoring-GC paper)
is an observability exercise — E/M/FM/CM counters and overhead curves.
This package makes those quantities *live*:

* :mod:`repro.obs.metrics` — thread-exact counters/gauges/fixed-bucket
  histograms, registry snapshots, exact cross-thread/process merging,
  Prometheus text rendering;
* :mod:`repro.obs.catalogue` — the declared universe of metric names
  (asserted against ``docs/observability.md``);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade every layer
  accepts (``telemetry=None`` keeps hot paths byte-identical to the
  un-instrumented build), plus the MonitorStats→metrics bridge;
* :mod:`repro.obs.sink` — NDJSON metrics/trace sink (tracelog idiom);
* :mod:`repro.obs.http` — stdlib-only Prometheus exposition endpoint and
  its strict validating parser;
* :mod:`repro.obs.provenance` — verdict → WAL-slice extraction and
  replay-level time-travel debugging;
* :mod:`repro.obs.attribution` — sampled per-property, per-stage
  overhead attribution (where did the millisecond go?);
* :mod:`repro.obs.trace` — structured spans across the service
  boundary, exportable as NDJSON or Chrome trace-event JSON;
* :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  recent engine history, dumped on trigger and replayable through the
  provenance machinery.

``python -m repro.obs`` snapshots, diffs, validates, and ranks a
running service's exposition endpoint, and records/exports traces.
"""

from .attribution import STAGES, AttributionPlane, prop_label, stage_table
from .catalogue import METRICS, MetricSpec, declare
from .http import ExpositionServer, parse_exposition
from .metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sampler,
    merge_snapshots,
    render_prometheus,
)
from .provenance import binding_symbols, extract_slice, replay_verdict, verify_verdict
from .recorder import FlightRecorder, replay_dump_verdict
from .sink import NdjsonSink, read_ndjson
from .telemetry import DEFAULT_SAMPLE_INTERVAL, Telemetry, as_telemetry, stats_to_metrics
from .trace import (
    Tracer,
    merge_spans,
    read_spans_ndjson,
    spans_to_chrome,
    validate_chrome_trace,
    write_spans_ndjson,
)

__all__ = [
    "STAGES",
    "AttributionPlane",
    "prop_label",
    "stage_table",
    "FlightRecorder",
    "replay_dump_verdict",
    "Tracer",
    "merge_spans",
    "read_spans_ndjson",
    "spans_to_chrome",
    "validate_chrome_trace",
    "write_spans_ndjson",
    "METRICS",
    "MetricSpec",
    "declare",
    "ExpositionServer",
    "parse_exposition",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sampler",
    "merge_snapshots",
    "render_prometheus",
    "binding_symbols",
    "extract_slice",
    "replay_verdict",
    "verify_verdict",
    "NdjsonSink",
    "read_ndjson",
    "DEFAULT_SAMPLE_INTERVAL",
    "Telemetry",
    "as_telemetry",
    "stats_to_metrics",
]
