"""``python -m repro.obs`` — poke a running service's telemetry plane.

Subcommands:

* ``snapshot URL`` — fetch ``/metrics.json`` from an exposition endpoint
  and print (or save) the raw registry snapshot;
* ``diff BEFORE AFTER`` — what moved between two snapshots (files or
  endpoint URLs): counter/gauge deltas and histogram count/sum deltas.
  A counter that went *backwards* means the source restarted between the
  two snapshots; its delta is clamped to zero and flagged ``[reset]``
  (gauges are levels and keep their raw negative deltas);
* ``top URL`` — rank properties by attributed cost: the per-stage
  sampled seconds from ``repro_prop_stage_seconds_total`` (requires a
  service running with ``Telemetry(attribution=True)``);
* ``trace record`` / ``trace export`` — run a short traced workload and
  write its spans as NDJSON / convert recorded spans to Chrome
  trace-event JSON (load the result in ``chrome://tracing`` or Perfetto);
* ``validate FILE|-`` — strictly parse Prometheus text exposition
  (``-`` reads stdin); exit 1 with the offending line on failure — the
  CI smoke step pipes ``curl /metrics`` through this;
* ``slice --wal DIR --seq N [--first-seq M]`` — print the WAL records of
  a verdict's provenance range as JSON lines (see
  :mod:`repro.obs.provenance`);
* ``serve-demo`` — run a small inline service with a steady synthetic
  workload and serve its metrics for ``--duration`` seconds: a live
  endpoint for smoke tests and manual poking;
* ``health URL`` — the supervision plane at a glance, derived from the
  same snapshot channel: per-shard liveness and restart counts
  (``repro_shard_alive`` / ``repro_shard_restarts_total``), queue
  depths, quarantine depth, and the load-shedding ladder state (see
  ``docs/robustness.md``).  Exit 1 when any shard is down.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from typing import Any, Mapping


def _fetch_snapshot(source: str) -> dict[str, Any]:
    """A registry snapshot from an endpoint URL or a saved JSON file."""
    if source.startswith(("http://", "https://")):
        url = source.rstrip("/")
        if not url.endswith("/metrics.json"):
            url += "/metrics.json"
        with urllib.request.urlopen(url) as response:
            return json.loads(response.read().decode("utf-8"))
    with open(source, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _series_map(entry: Mapping[str, Any]) -> dict[tuple, Any]:
    return {tuple(key): value for key, value in entry["series"]}


def _cmd_snapshot(args: argparse.Namespace) -> int:
    snapshot = _fetch_snapshot(args.url)
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = _fetch_snapshot(args.before)
    after = _fetch_snapshot(args.after)
    moved = 0
    for name in sorted(set(before) | set(after)):
        old = _series_map(before[name]) if name in before else {}
        new_entry = after.get(name) or before[name]
        new = _series_map(after[name]) if name in after else {}
        kind = new_entry["kind"]
        for key in sorted(set(old) | set(new)):
            labels = ",".join(key)
            label_text = f"{{{labels}}}" if labels else ""
            if kind == "histogram":
                old_count = old[key]["count"] if key in old else 0
                old_sum = old[key]["sum"] if key in old else 0.0
                new_count = new[key]["count"] if key in new else 0
                new_sum = new[key]["sum"] if key in new else 0.0
                if new_count != old_count or new_sum != old_sum:
                    moved += 1
                    # A histogram count going backwards means the source
                    # restarted: clamp the monotone deltas to zero and say
                    # so, instead of reporting a nonsense negative rate.
                    reset = new_count < old_count
                    count_delta = 0 if reset else new_count - old_count
                    print(
                        f"{name}{label_text} count {old_count} -> {new_count} "
                        f"(+{count_delta}), "
                        f"sum {old_sum:.6g} -> {new_sum:.6g}"
                        + (" [reset]" if reset else "")
                    )
            else:
                old_value = old.get(key, 0)
                new_value = new.get(key, 0)
                if new_value != old_value:
                    moved += 1
                    delta = new_value - old_value
                    reset = kind == "counter" and delta < 0
                    if reset:
                        delta = 0
                    print(
                        f"{name}{label_text} {old_value:g} -> {new_value:g} "
                        f"({delta:+g})" + (" [reset]" if reset else "")
                    )
    if not moved:
        print("no series moved")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .http import parse_exposition

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        families = parse_exposition(text)
    except ValueError as exc:
        print(f"invalid exposition: {exc}", file=sys.stderr)
        return 1
    samples = sum(len(entry["samples"]) for entry in families.values())
    print(f"ok: {len(families)} families, {samples} samples")
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    from .provenance import extract_slice

    provenance = {"seq": args.seq, "first_seq": args.first_seq}
    records = extract_slice(args.wal, provenance)
    for seq, kind, payload in records:
        if kind == "event":
            event, params = payload
            line = {"seq": seq, "kind": kind, "event": event, "params": params}
        else:
            line = {"seq": seq, "kind": kind, "op": payload}
        print(json.dumps(line, sort_keys=True))
    if not records:
        print(
            f"no records in ({args.first_seq}, {args.seq}] — "
            "was the WAL synced?",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_top(snapshot: Mapping[str, Any], limit: int) -> int:
    from .attribution import STAGES, stage_table

    table = stage_table(snapshot)
    if not table:
        print(
            "no attributed samples — is the service running with "
            "Telemetry(attribution=True)?"
        )
        return 0
    grand_total = sum(row.get("total", 0.0) for row in table.values())
    ranked = sorted(table.items(), key=lambda item: -item[1].get("total", 0.0))
    header = ["property"] + [stage for stage in STAGES] + ["total", "share"]
    widths = [max(24, len(header[0]))] + [11] * (len(header) - 1)
    print("  ".join(title.rjust(width) for title, width in zip(header, widths)))
    for label, row in ranked[:limit]:
        total = row.get("total", 0.0)
        share = 100.0 * total / grand_total if grand_total else 0.0
        cells = [label.rjust(widths[0])]
        cells += [
            f"{row.get(stage, 0.0):.6f}".rjust(11) for stage in STAGES
        ]
        cells.append(f"{total:.6f}".rjust(11))
        cells.append(f"{share:5.1f}%".rjust(11))
        print("  ".join(cells))
    if len(ranked) > limit:
        print(f"... {len(ranked) - limit} more (raise --limit)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    while True:
        _print_top(_fetch_snapshot(args.url), args.limit)
        if args.watch is None:
            return 0
        time.sleep(args.watch)
        print()


def _series_of(snapshot: Mapping[str, Any], name: str) -> dict[tuple, Any]:
    entry = snapshot.get(name)
    return _series_map(entry) if entry else {}


def _cmd_health(args: argparse.Namespace) -> int:
    snapshot = _fetch_snapshot(args.url)
    alive = _series_of(snapshot, "repro_shard_alive")
    restarts = _series_of(snapshot, "repro_shard_restarts_total")
    depths = _series_of(snapshot, "repro_service_queue_depth")
    quarantined = _series_of(snapshot, "repro_events_quarantined_total")

    shards = sorted(
        {key[0] for key in alive}
        | {key[0] for key in restarts}
        | {key[0] for key in depths},
        key=lambda label: (len(label), label),
    )
    if not shards:
        print(
            "no supervision series — is a ShardSupervisor running with "
            "telemetry on?"
        )
        return 0
    down = 0
    header = ("shard", "alive", "restarts", "queue", "quarantined", "reasons")
    widths = (6, 6, 9, 7, 12, 24)
    print("  ".join(title.rjust(w) for title, w in zip(header, widths)))
    for shard in shards:
        shard_key = (shard,)
        up = alive.get(shard_key, 1)
        if not up:
            down += 1
        shard_restarts = {
            key[1]: value for key, value in restarts.items() if key[0] == shard
        }
        reasons = ",".join(
            f"{reason}:{count:g}"
            for reason, count in sorted(shard_restarts.items())
        )
        cells = (
            shard,
            "up" if up else "DOWN",
            f"{sum(shard_restarts.values()):g}",
            f"{depths.get(shard_key, 0):g}",
            f"{quarantined.get(shard_key, 0):g}",
            reasons or "-",
        )
        print("  ".join(str(c).rjust(w) for c, w in zip(cells, widths)))

    q_depth = _series_of(snapshot, "repro_quarantine_depth").get((), 0)
    shed_level = _series_of(snapshot, "repro_shed_level").get((), 0)
    shed = _series_of(snapshot, "repro_events_shed_total")
    shed_text = (
        ", ".join(
            f"{key[0]}={value:g}" for key, value in sorted(shed.items())
        )
        or "none"
    )
    print(f"quarantine depth: {q_depth:g}")
    print(f"shed level: {shed_level:g} (dropped: {shed_text})")
    if down:
        print(f"{down} shard(s) down", file=sys.stderr)
        return 1
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from ..bench.workloads import WORKLOADS, record_workload_events
    from ..properties import UNSAFEITER
    from ..service.service import MonitorService, ingest_symbolic
    from .telemetry import Telemetry
    from .trace import write_spans_ndjson

    entries = record_workload_events(
        WORKLOADS["bloat"].scaled(args.scale), [UNSAFEITER]
    )
    telemetry = Telemetry(trace=True)
    service = MonitorService(
        UNSAFEITER.make().silence(),
        shards=args.shards,
        mode=args.mode,
        telemetry=telemetry,
    )
    try:
        ingest_symbolic(service, entries)
        service.drain()
    finally:
        service.close()
    spans = service.trace_spans()
    write_spans_ndjson(spans, args.out)
    print(f"{len(spans)} spans ({len(entries)} events) -> {args.out}")
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .trace import read_spans_ndjson, spans_to_chrome

    spans = read_spans_ndjson(args.spans)
    try:
        payload = spans_to_chrome(spans)
    except ValueError as exc:
        print(f"invalid spans: {exc}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    print(f"{len(payload['traceEvents'])} trace events -> {args.out}")
    return 0


_DEMO_SPEC = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    from ..service.service import MonitorService
    from ..spec.compiler import compile_spec

    prop = compile_spec(_DEMO_SPEC).silence()
    service = MonitorService(prop, shards=2, mode="inline", telemetry=True)
    server = service.serve_metrics(host=args.host, port=args.port)
    print(f"serving metrics at {server.url}/metrics", flush=True)

    class _Obj:
        pass

    deadline = time.monotonic() + args.duration
    try:
        while time.monotonic() < deadline:
            collection, iterator = _Obj(), _Obj()
            service.emit_batch(
                [
                    ("create", {"c": collection, "i": iterator}),
                    ("update", {"c": collection}),
                    ("next", {"i": iterator}),
                ]
            )
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Snapshot, diff, and validate repro telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_snapshot = sub.add_parser("snapshot", help="fetch /metrics.json from a service")
    p_snapshot.add_argument("url", help="exposition endpoint URL (or base URL)")
    p_snapshot.add_argument("-o", "--output", help="write JSON here instead of stdout")
    p_snapshot.set_defaults(func=_cmd_snapshot)

    p_diff = sub.add_parser("diff", help="series deltas between two snapshots")
    p_diff.add_argument("before", help="snapshot JSON file or endpoint URL")
    p_diff.add_argument("after", help="snapshot JSON file or endpoint URL")
    p_diff.set_defaults(func=_cmd_diff)

    p_validate = sub.add_parser(
        "validate", help="strictly parse Prometheus text exposition"
    )
    p_validate.add_argument("file", help="exposition text file, or - for stdin")
    p_validate.set_defaults(func=_cmd_validate)

    p_top = sub.add_parser(
        "top", help="rank properties by attributed per-stage cost"
    )
    p_top.add_argument("url", help="snapshot JSON file or endpoint URL")
    p_top.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )
    p_top.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS instead of printing once",
    )
    p_top.set_defaults(func=_cmd_top)

    p_trace = sub.add_parser("trace", help="record and export structured spans")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_record = trace_sub.add_parser(
        "record", help="run a short traced workload, write spans as NDJSON"
    )
    p_record.add_argument(
        "--scale", type=float, default=0.05, help="bloat workload scale"
    )
    p_record.add_argument("--shards", type=int, default=2)
    p_record.add_argument(
        "--mode", default="thread", choices=("thread", "inline", "process")
    )
    p_record.add_argument("--out", default="trace_spans.ndjson")
    p_record.set_defaults(func=_cmd_trace_record)
    p_export = trace_sub.add_parser(
        "export", help="convert NDJSON spans to Chrome trace-event JSON"
    )
    p_export.add_argument("--spans", required=True, help="NDJSON spans file")
    p_export.add_argument("--out", default="chrome_trace.json")
    p_export.set_defaults(func=_cmd_trace_export)

    p_slice = sub.add_parser(
        "slice", help="print a provenance range's WAL records as JSON lines"
    )
    p_slice.add_argument("--wal", required=True, help="WAL directory")
    p_slice.add_argument("--seq", required=True, type=int, help="verdict seq (range end)")
    p_slice.add_argument(
        "--first-seq", type=int, default=0,
        help="checkpoint floor (range start, exclusive; default 0)",
    )
    p_slice.set_defaults(func=_cmd_slice)

    p_health = sub.add_parser(
        "health", help="supervision-plane summary from a metrics snapshot"
    )
    p_health.add_argument("url", help="snapshot JSON file or endpoint URL")
    p_health.set_defaults(func=_cmd_health)

    p_demo = sub.add_parser(
        "serve-demo", help="serve a demo service's metrics for a while"
    )
    p_demo.add_argument("--host", default="127.0.0.1")
    p_demo.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p_demo.add_argument(
        "--duration", type=float, default=30.0, help="seconds to keep serving"
    )
    p_demo.add_argument(
        "--interval", type=float, default=0.01, help="seconds between demo batches"
    )
    p_demo.set_defaults(func=_cmd_serve_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
