"""Sampled per-property, per-stage overhead attribution.

Answers the question PR 6's counters cannot: **where did the
millisecond go?**  On a deterministically sampled fraction of emit
calls (riding the same lock-free :class:`~repro.obs.metrics.Sampler`
family as the latency timers), the engine decomposes the full wall time
of that call into pipeline stages and charges each slice to the
property that consumed it:

========== ==========================================================
stage      what it measures
========== ==========================================================
dispatch   per-event plan work minus the two timed sections below
           (binding extraction, creation, bookkeeping)
tree-walk  indexing-tree lookup (``DispatchPlan.tree.lookup_vals``)
fsm-step   stepping the monitors on the matched leaf (incl. verdicts)
gc         death propagation and budgeted sweeps inside the call
emit-batch the engine-level remainder: routing, taps, loop overhead
           (charged to the pseudo-property ``engine``)
queue-wait time the queue head sat waiting for a shard worker
           (charged to the pseudo-property ``shard:<n>``)
========== ==========================================================

The tallies are single-writer floats pulled into the catalogue
counters ``repro_prop_stage_seconds_total`` /
``repro_prop_stage_samples_total`` at snapshot time — the hot path
takes no lock and, when attribution is off, runs the exact
pre-observability code (the wrappers are never installed).

Property label values are **slot-stable**: ``"<slot>:<spec>/<formalism>"``.
Registry slots are never reused across detach/attach, so reloading a
property starts a fresh series instead of bleeding into the tombstoned
slot's history.  Sampled sums extrapolate uniformly (multiply by the
sampling interval); at ``sample_interval=1`` they *are* the engine wall
time, which is how the acceptance test prices the decomposition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from .catalogue import declare

if TYPE_CHECKING:  # pragma: no cover
    from .telemetry import Telemetry

__all__ = [
    "AttributionPlane",
    "StageCell",
    "STAGES",
    "ENGINE_LABEL",
    "prop_label",
    "stage_table",
]

#: The closed set of pipeline stages attribution decomposes into.
STAGES = ("dispatch", "tree-walk", "fsm-step", "gc", "emit-batch", "queue-wait")

#: Pseudo-property label carrying the engine-level batch remainder.
ENGINE_LABEL = "engine"

#: Sampler offset decorrelating the attribution tick from the per-slot
#: latency samplers (prime, far above any realistic slot count).
_SAMPLER_OFFSET = 7919


def prop_label(slot: int, spec_name: str, formalism: str) -> str:
    """The slot-stable attribution label for one property runtime."""
    return f"{slot}:{spec_name}/{formalism}"


class StageCell:
    """One (property, stage) tally: single-writer, pulled at snapshot."""

    __slots__ = ("seconds", "samples")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.samples = 0

    def add(self, seconds: float) -> None:
        """Charge one sampled slice of wall time to this cell."""
        self.seconds += seconds
        self.samples += 1


class AttributionPlane:
    """Per-engine attribution state: the sampler, the cells, the scratch.

    One plane per engine (shard engines each build their own, so the
    ``active``/``charged`` scratch is only ever touched by that shard's
    worker thread).  Cells for the same label across planes pull into
    the same catalogue counter child, so thread shards sharing one
    registry aggregate exactly.

    ``active`` is set by the engine's emit boundary for the duration of
    a sampled call; runtime-level wrappers check it and, when set, run
    the timed decomposed path and add their elapsed time to ``charged``
    so the boundary can compute the un-attributed remainder.
    """

    __slots__ = ("interval", "sampler", "active", "charged", "_seconds", "_samples", "_cells")

    def __init__(self, telemetry: "Telemetry") -> None:
        self.interval = telemetry.sample_interval
        self.sampler = telemetry.sampler(_SAMPLER_OFFSET)
        self.active = False
        self.charged = 0.0
        self._seconds = declare(telemetry.registry, "repro_prop_stage_seconds_total")
        self._samples = declare(telemetry.registry, "repro_prop_stage_samples_total")
        self._cells: dict[tuple[str, str], StageCell] = {}

    def cell(self, label: str, stage: str) -> StageCell:
        """The (create-once) tally cell for one property label and stage."""
        if stage not in STAGES:
            raise ValueError(f"unknown attribution stage {stage!r}")
        key = (label, stage)
        cell = self._cells.get(key)
        if cell is None:
            cell = StageCell()
            self._seconds.labels(label, stage).add_pull(lambda c=cell: c.seconds)
            self._samples.labels(label, stage).add_pull(lambda c=cell: c.samples)
            self._cells[key] = cell
        return cell

    def cells(self) -> Iterator[tuple[str, str, StageCell]]:
        """Iterate ``(label, stage, cell)`` over every created cell."""
        for (label, stage), cell in self._cells.items():
            yield label, stage, cell


def stage_table(snapshot: dict[str, Any]) -> dict[str, dict[str, float]]:
    """Fold a registry snapshot into ``{property: {stage: seconds}}``.

    The read-side helper behind ``python -m repro.obs top``: accepts any
    snapshot (merged across shards and workers) and returns the
    attributed seconds per property and stage, plus a ``"total"`` key.
    """
    family = snapshot.get("repro_prop_stage_seconds_total")
    table: dict[str, dict[str, float]] = {}
    if not family:
        return table
    for labels, value in family.get("series", ()):
        label, stage = labels
        row = table.setdefault(label, {})
        row[stage] = row.get(stage, 0.0) + float(value)
        row["total"] = row.get("total", 0.0) + float(value)
    return table
