"""The metric catalogue: every metric the telemetry plane emits.

One :class:`MetricSpec` per metric name, declaring kind, labels, the
layer that emits it, and the bucket layout for histograms.  All wiring
sites declare their metrics through :func:`declare` so the catalogue
cannot drift from the code, and ``tests/docs/test_metric_catalogue.py``
asserts the table in ``docs/observability.md`` matches this module
exactly.

Metrics in the ``repro_monitor_*`` group are *derived*: they are not
updated on the hot path but synthesized from
:class:`~repro.runtime.statistics.MonitorStats` at snapshot time by
:func:`repro.obs.telemetry.stats_to_metrics` — these are the paper's
Figure 10 quantities (E/M/FM/CM) made live.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import LATENCY_BUCKETS, SIZE_BUCKETS, MetricFamily, MetricsRegistry

__all__ = ["MetricSpec", "METRICS", "declare"]


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: tuple[str, ...]
    layer: str  # emitting layer: engine / service / persist / instrument / bench / stats
    help: str
    buckets: tuple[float, ...] = LATENCY_BUCKETS


def _spec(name, kind, labels, layer, help, buckets=LATENCY_BUCKETS):
    return MetricSpec(name, kind, tuple(labels), layer, help, tuple(buckets))


#: Every metric the plane emits, keyed by name.
METRICS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # -- engine (hot path; latency is 1-in-N sampled) -------------------
        _spec(
            "repro_engine_event_seconds", "histogram", ("property", "event"), "engine",
            "Sampled per-property per-event-kind dispatch latency",
        ),
        _spec(
            "repro_engine_handled_total", "counter", ("property",), "engine",
            "Exact count of events handled by each property runtime",
        ),
        _spec(
            "repro_engine_batch_size", "histogram", ("path",), "engine",
            "Events per emit_batch / emit_selected_batch call",
            SIZE_BUCKETS,
        ),
        _spec(
            "repro_engine_gc_pause_seconds", "histogram", ("property", "phase"), "engine",
            "GC purge (death-driven, sampled) and scan (budgeted sweep) pause durations",
        ),
        # -- service --------------------------------------------------------
        _spec(
            "repro_service_events_total", "counter", (), "service",
            "Deliveries accepted by MonitorService.emit/emit_batch",
        ),
        _spec(
            "repro_service_verdicts_total", "counter", ("shard",), "service",
            "Goal verdicts reported per shard",
        ),
        _spec(
            "repro_service_queue_depth", "gauge", ("shard",), "service",
            "Pending deliveries in each _ShardQueue",
        ),
        _spec(
            "repro_service_backpressure_wait_seconds", "histogram", ("shard",), "service",
            "Producer blocking time when a bounded shard queue is full",
        ),
        _spec(
            "repro_service_drain_lag_seconds", "histogram", ("shard",), "service",
            "Queue-head wait: time the oldest pending delivery sat queued before a worker took it",
        ),
        _spec(
            "repro_service_drain_batch_seconds", "histogram", ("shard",), "service",
            "Per-shard worker drain-loop time spent dispatching one taken batch",
        ),
        _spec(
            "repro_service_roundtrip_seconds", "histogram", ("op",), "service",
            "Process-backend control round trips (barrier / stats / checkpoint / close)",
        ),
        _spec(
            "repro_shard_restarts_total", "counter", ("shard", "reason"), "service",
            "Supervised shard restarts by failure reason (crash / exit / hang / exception)",
        ),
        _spec(
            "repro_shard_alive", "gauge", ("shard",), "service",
            "Shard worker liveness as seen by the supervisor (1 alive, 0 down)",
        ),
        _spec(
            "repro_events_quarantined_total", "counter", ("shard",), "service",
            "Poison deliveries moved to the dead-letter sink after retries",
        ),
        _spec(
            "repro_quarantine_depth", "gauge", (), "service",
            "Records currently in the quarantine dead-letter sink",
        ),
        _spec(
            "repro_events_shed_total", "counter", ("policy",), "service",
            "Events dropped by load shedding (policy: property / sampled)",
        ),
        _spec(
            "repro_shed_level", "gauge", (), "service",
            "Current load-shedding ladder level (0 none, 1 property, 2 sampled)",
        ),
        # -- persist --------------------------------------------------------
        _spec(
            "repro_wal_appends_total", "counter", (), "persist",
            "Records appended to the write-ahead log",
        ),
        _spec(
            "repro_wal_append_seconds", "histogram", (), "persist",
            "Sampled WAL append latency (serialize + buffered write)",
        ),
        _spec(
            "repro_wal_fsync_seconds", "histogram", (), "persist",
            "WAL fsync durations",
        ),
        _spec(
            "repro_wal_rotation_seconds", "histogram", (), "persist",
            "WAL segment rotation durations (close + open next segment)",
        ),
        _spec(
            "repro_persist_checkpoint_seconds", "histogram", (), "persist",
            "DurableEngine snapshot (checkpoint) durations",
        ),
        _spec(
            "repro_persist_restore_seconds", "histogram", (), "persist",
            "DurableEngine recover durations (checkpoint load + WAL suffix replay)",
        ),
        # -- instrument -----------------------------------------------------
        _spec(
            "repro_live_events_total", "counter", ("event",), "instrument",
            "Events emitted through LiveSession.emit, per pointcut event name",
        ),
        _spec(
            "repro_live_pointcut_seconds", "histogram", ("event",), "instrument",
            "Sampled weave overhead per pointcut: emit-boundary time per woven event",
        ),
        # -- bench ----------------------------------------------------------
        _spec(
            "repro_bench_run_seconds", "histogram", ("cell",), "bench",
            "Wall-clock of each benchmark repeat fed by the shared best-of-N harness",
        ),
        # -- obs (attribution / spans / flight recorder) --------------------
        _spec(
            "repro_prop_stage_seconds_total", "counter", ("property", "stage"), "obs",
            "Sampled wall seconds attributed to one property and pipeline stage",
        ),
        _spec(
            "repro_prop_stage_samples_total", "counter", ("property", "stage"), "obs",
            "Attribution samples behind each property-stage seconds tally",
        ),
        _spec(
            "repro_trace_spans_total", "counter", ("site",), "obs",
            "Structured spans recorded per instrumentation site",
        ),
        _spec(
            "repro_recorder_dumps_total", "counter", ("trigger",), "obs",
            "Flight-recorder dumps taken, per trigger reason",
        ),
        # -- stats bridge (derived from MonitorStats at snapshot time) ------
        _spec(
            "repro_monitor_events_total", "counter", ("property",), "stats",
            "Paper counter E: events dispatched to the property",
        ),
        _spec(
            "repro_monitor_monitors_created_total", "counter", ("property",), "stats",
            "Paper counter M: monitor instances created",
        ),
        _spec(
            "repro_monitor_monitors_flagged_total", "counter", ("property",), "stats",
            "Paper counter FM: monitors flagged unnecessary by the coenable technique",
        ),
        _spec(
            "repro_monitor_monitors_collected_total", "counter", ("property",), "stats",
            "Paper counter CM: flagged monitors actually reclaimed",
        ),
        _spec(
            "repro_monitor_handler_fires_total", "counter", ("property",), "stats",
            "Goal-verdict handler invocations",
        ),
        _spec(
            "repro_monitor_verdicts_total", "counter", ("property", "category"), "stats",
            "Verdicts reported, per property and verdict category",
        ),
        _spec(
            "repro_monitor_live_monitors", "gauge", ("property",), "stats",
            "Monitors created and not yet reclaimed (M - CM)",
        ),
        _spec(
            "repro_monitor_peak_live_monitors", "gauge", ("property",), "stats",
            "Peak simultaneously-live monitors (upper bound after shard merge)",
        ),
    )
}


def declare(registry: MetricsRegistry, name: str) -> MetricFamily:
    """Declare catalogue metric ``name`` on ``registry`` and return its family.

    The single path wiring sites use, so kind/labels/buckets always come
    from the catalogue.
    """
    spec = METRICS[name]
    if spec.kind == "counter":
        return registry.counter(spec.name, spec.help, spec.labels)
    if spec.kind == "gauge":
        return registry.gauge(spec.name, spec.help, spec.labels)
    return registry.histogram(spec.name, spec.help, spec.labels, spec.buckets)
