"""Stdlib-only Prometheus exposition endpoint and its strict parser.

:class:`ExpositionServer` serves whatever a snapshot callable returns:

* ``GET /metrics`` — Prometheus text exposition format;
* ``GET /metrics.json`` — the raw registry snapshot as JSON (what the
  ``python -m repro.obs`` CLI diffs);
* ``GET /healthz`` — liveness probe for smoke tests.

It runs a daemon-threaded ``http.server.ThreadingHTTPServer`` so a
``MonitorService`` can expose metrics without any third-party
dependency.  :func:`parse_exposition` is the validating counterpart the
CI smoke step pipes a curl of ``/metrics`` through: it rejects
malformed lines, samples without a ``# TYPE``, and non-numeric values.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from .metrics import render_prometheus

__all__ = ["ExpositionServer", "parse_exposition"]


class ExpositionServer:
    """Serve metric snapshots over HTTP from a background daemon thread."""

    def __init__(
        self,
        snapshot_source: Callable[[], Mapping[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        source = snapshot_source

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
                try:
                    if self.path in ("/metrics", "/"):
                        body = render_prometheus(source()).encode("utf-8")
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    elif self.path == "/metrics.json":
                        body = json.dumps(source(), sort_keys=True).encode("utf-8")
                        ctype = "application/json"
                    elif self.path == "/healthz":
                        body, ctype = b"ok\n", "text/plain; charset=utf-8"
                    else:
                        self.send_error(404, "unknown path")
                        return
                except Exception as exc:  # surface snapshot failures as 500s
                    self.send_error(500, f"snapshot failed: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                """Silence per-request stderr logging."""

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-obs-exposition", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is concrete even when 0 was asked."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self.address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (no trailing slash)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and join the background thread."""
        self._server.shutdown()
        self._thread.join(timeout=5)
        self._server.server_close()


_COMMENT = re.compile(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"  # labels
    r" (\S+)$"  # value
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


_ESCAPE = re.compile(r"\\(.)")


def _unescape(value: str) -> str:
    """Invert the label-value escaping of the text renderer (single pass)."""
    return _ESCAPE.sub(lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Strictly parse Prometheus text exposition format.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, {label: value}, float), ...]}}``.  Raises
    ``ValueError`` on any malformed line, a sample whose family has no
    ``# TYPE``, an unknown type, or a non-numeric value — this is the
    validator behind ``python -m repro.obs validate``.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_of(sample_name: str) -> str | None:
        for base, entry in families.items():
            if sample_name == base:
                return base
            if entry["type"] in ("histogram", "summary") and sample_name in (
                f"{base}_bucket", f"{base}_sum", f"{base}_count",
            ):
                return base
        return None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            match = _COMMENT.match(line)
            if match is None:
                raise ValueError(f"line {lineno}: malformed comment: {raw!r}")
            keyword, name, rest = match.groups()
            entry = families.setdefault(name, {"type": None, "help": "", "samples": []})
            if keyword == "TYPE":
                if rest not in _TYPES:
                    raise ValueError(f"line {lineno}: unknown metric type {rest!r}")
                entry["type"] = rest
            else:
                entry["help"] = rest or ""
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        sample_name, label_blob, value_text = match.groups()
        base = family_of(sample_name)
        if base is None or families[base]["type"] is None:
            raise ValueError(f"line {lineno}: sample {sample_name!r} has no # TYPE")
        labels = (
            {name: _unescape(value) for name, value in _LABEL.findall(label_blob)}
            if label_blob
            else {}
        )
        if value_text == "+Inf":
            value = float("inf")
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value {value_text!r}"
                ) from None
        families[base]["samples"].append((sample_name, labels, value))
    return families
