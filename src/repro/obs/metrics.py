"""Thread-safe metric primitives and the registry that holds them.

This is the telemetry core of the observability plane: counters, gauges,
and fixed-bucket histograms grouped into labelled families inside a
:class:`MetricsRegistry`.  Design constraints, in order:

1. **Exactness under concurrency.**  Every child metric guards its state
   with its own ``threading.Lock`` — attribute ``+=`` is *not* atomic in
   CPython once callbacks or tracing are involved — so counters and
   histograms exercised from all shard worker threads merge exactly.
2. **Cheap when hot.**  Call sites cache the *child* metric (not the
   family), so the hot path is one lock acquire plus one add.  Latency
   timers are additionally gated by a deterministic 1-in-N
   :class:`Sampler` so the compiled dispatch path stays within the CI
   perf gate.
3. **Boundary-safe.**  :meth:`MetricsRegistry.snapshot` emits plain
   JSON-safe dicts; :func:`merge_snapshots` folds snapshots from other
   threads or processes exactly; :func:`render_prometheus` turns any
   snapshot into Prometheus text exposition format.

Snapshot schema (one entry per family)::

    {name: {"kind": "counter"|"gauge"|"histogram",
            "help": str,
            "labels": [label_name, ...],
            "series": [[[label_value, ...], value], ...]}}

where ``value`` is a number for counters/gauges and, for histograms,
``{"bounds": [...], "counts": [...], "sum": s, "count": n}`` with
``counts`` holding *per-bucket* (non-cumulative) tallies and one final
overflow bucket beyond the last bound.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Sampler",
    "MetricFamily",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

#: Default histogram bounds for durations in seconds (5 µs .. 5 s).
LATENCY_BUCKETS: tuple[float, ...] = (
    5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default histogram bounds for cardinalities (batch sizes, queue depths).
SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


class Counter:
    """Monotonically increasing count; ``inc`` is lock-exact.

    Hot single-writer call sites can avoid the per-event lock entirely
    with :meth:`add_pull`: the writer keeps its own monotonic tally (a
    plain int only it mutates) and registers a zero-argument reader.
    ``snapshot_value`` sums the pushed value with every pulled tally —
    exact whenever the writers are quiescent (post-drain snapshots, the
    case tests pin) and never torn otherwise, since a single-writer int
    read is atomic under the GIL.
    """

    __slots__ = ("value", "_lock", "_pulls")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()
        self._pulls: list[Callable[[], float]] = []

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self.value += amount

    def add_pull(self, fn: Callable[[], float]) -> None:
        """Register a monotonic single-writer tally folded in at snapshot."""
        with self._lock:
            self._pulls.append(fn)

    def snapshot_value(self) -> float:
        """The current count (pushed value plus every pulled tally)."""
        with self._lock:
            return self.value + sum(fn() for fn in self._pulls)


class Gauge:
    """A value that can go up and down (queue depths, live monitors)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the level outright."""
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        """Raise the level by ``amount`` (default 1)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Lower the level by ``amount`` (default 1)."""
        with self._lock:
            self.value -= amount

    def snapshot_value(self) -> float:
        """The current level (plain number)."""
        with self._lock:
            return self.value


class Histogram:
    """Fixed-bucket histogram with an implicit overflow bucket.

    ``bounds`` are inclusive upper bounds in ascending order; a value
    lands in the first bucket whose bound is >= the value, or in the
    final overflow bucket.  Per-bucket counts are kept raw (not
    cumulative); exposition cumulates them.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly ascending")
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def snapshot_value(self) -> dict[str, Any]:
        """Raw bucket counts, sum, and count as a plain dict."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }


class Sampler:
    """Deterministic 1-in-N sampler for hot-path timers.

    Samples the calls where ``tick % interval == phase`` with ``tick``
    counting from 0, so with ``interval=1`` every call is sampled and
    with ``phase=0`` the very first call is.  The tick update is not
    locked: samplers are owned by a single property runtime, which the
    service drives from one worker thread, so single-owner use — the
    case the determinism suite pins — is exactly periodic.  Racy use
    only skews *which* calls get timed, never the metrics themselves.
    """

    __slots__ = ("interval", "phase", "_tick")

    def __init__(self, interval: int = 128, phase: int = 0) -> None:
        if interval < 1:
            raise ValueError("sampler interval must be >= 1")
        self.interval = int(interval)
        self.phase = int(phase) % self.interval
        self._tick = 0

    def sample(self) -> bool:
        """True on the sampled 1-in-N calls; advances the tick."""
        tick = self._tick
        self._tick = tick + 1
        return tick % self.interval == self.phase

    @property
    def ticks(self) -> int:
        """Exact number of ``sample`` calls so far — a free event count,
        usable as a :meth:`Counter.add_pull` source by the call site that
        drives the sampler."""
        return self._tick


_KINDS: dict[str, Callable[..., Any]] = {
    "counter": lambda bounds: Counter(),
    "gauge": lambda bounds: Gauge(),
    "histogram": lambda bounds: Histogram(bounds),
}


class MetricFamily:
    """All series of one metric name, keyed by label-value tuples."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: tuple[str, ...] = tuple(label_names)
        self.buckets: tuple[float, ...] = tuple(float(b) for b in buckets)
        if kind == "histogram" and list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"{name}: histogram bounds must be strictly ascending")
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def labels(self, *values: str) -> Any:
        """The child metric for one label-value tuple (created on demand).

        Hot call sites should cache the returned child, not re-resolve it
        per event.
        """
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _KINDS[self.kind](self.buckets)
                    self._children[key] = child
        return child

    def snapshot(self) -> dict[str, Any]:
        """This family as one snapshot entry (see module docstring)."""
        with self._lock:
            items = list(self._children.items())
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [[list(key), child.snapshot_value()] for key, child in sorted(items)],
        }


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent declarations:
    re-declaring an existing name returns the existing family after
    checking that kind and labels agree.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float],
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labels, buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} re-declared with conflicting kind or labels"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._declare(name, "counter", help, labels, ())

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._declare(name, "gauge", help, labels, ())

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Declare (or fetch) a fixed-bucket histogram family."""
        return self._declare(name, "histogram", help, labels, buckets)

    def family(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> dict[str, Any]:
        """Every family as a plain JSON-safe dict, sorted by name."""
        with self._lock:
            families = sorted(self._families.items())
        return {name: family.snapshot() for name, family in families}


def _merge_series_value(kind: str, left: Any, right: Any) -> Any:
    if kind == "histogram":
        if left["bounds"] != right["bounds"]:
            raise ValueError("cannot merge histograms with different bounds")
        return {
            "bounds": list(left["bounds"]),
            "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }
    # Counters add exactly; gauges add too — service-level gauges are
    # per-shard levels (queue depth, live monitors) whose meaningful
    # aggregate is the sum.
    return left + right


def merge_snapshots(*snapshots: Mapping[str, Any]) -> dict[str, Any]:
    """Fold registry snapshots (threads, shards, worker processes) exactly.

    Counter and histogram series with the same name + label values add;
    gauges add as well (they represent per-shard levels whose aggregate
    is the sum).  Input snapshots are not mutated.
    """
    merged: dict[str, Any] = {}
    for snap in snapshots:
        for name, entry in snap.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "kind": entry["kind"],
                    "help": entry["help"],
                    "labels": list(entry["labels"]),
                    "series": [[list(k), _copy_value(entry["kind"], v)] for k, v in entry["series"]],
                }
                continue
            if target["kind"] != entry["kind"] or target["labels"] != list(entry["labels"]):
                raise ValueError(f"snapshot conflict for metric {name!r}")
            index = {tuple(k): i for i, (k, _) in enumerate(target["series"])}
            for key, value in entry["series"]:
                pos = index.get(tuple(key))
                if pos is None:
                    target["series"].append([list(key), _copy_value(entry["kind"], value)])
                else:
                    target["series"][pos][1] = _merge_series_value(
                        entry["kind"], target["series"][pos][1], value
                    )
    for entry in merged.values():
        entry["series"].sort(key=lambda kv: kv[0])
    return merged


def _copy_value(kind: str, value: Any) -> Any:
    if kind == "histogram":
        return {
            "bounds": list(value["bounds"]),
            "counts": list(value["counts"]),
            "sum": value["sum"],
            "count": value["count"],
        }
    return value


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_text(names: Iterable[str], values: Iterable[str], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Histograms are emitted cumulatively with ``_bucket``/``_sum``/
    ``_count`` series and a trailing ``+Inf`` bucket, per the format
    spec; the output ends with a newline as the format requires.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        label_names = entry["labels"]
        lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for values, value in entry["series"]:
            if kind == "histogram":
                cumulative = 0
                for bound, bucket in zip(
                    list(value["bounds"]) + [float("inf")], value["counts"]
                ):
                    cumulative += bucket
                    extra = f'le="{_format_number(float(bound))}"'
                    lines.append(
                        f"{name}_bucket{_label_text(label_names, values, extra)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(label_names, values)} {_format_number(value['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_text(label_names, values)} {value['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_text(label_names, values)} {_format_number(value)}"
                )
    return "\n".join(lines) + "\n"
