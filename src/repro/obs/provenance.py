"""Verdict provenance: from a reported verdict back to its WAL slice.

Every verdict fired by an engine under a :class:`~repro.persist.recovery.
DurableEngine` carries a provenance dict stamped at fire time::

    {"property": <spec name>, "formalism": <formalism>, "slot": <slot>,
     "segment": <WAL segment index>, "seq": <WAL seq of the triggering
     event>, "first_seq": <checkpoint floor at fire time>}

(the sharded service adds ``"shard"``).  Because the WAL is write-ahead
— the event is appended *before* dispatch — ``seq`` is exactly the
sequence number of the event that fired the verdict, and the half-open
range ``(first_seq, seq]`` is the WAL slice whose replay reproduces it.

This module is the time-travel-debugging side: :func:`extract_slice`
pulls that slice out of a WAL directory, :func:`replay_verdict` replays
it into a fresh engine (restoring the newest covered checkpoint first
when one exists, mirroring recovery), and :func:`verify_verdict` checks
that a verdict with the same property, category, and symbolic binding
is reproduced — the determinism-suite acceptance check.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "extract_slice",
    "replay_verdict",
    "verify_verdict",
    "binding_symbols",
]

#: Replayed-verdict tuples: (spec name, formalism, category, {param: symbol}).
ReplayedVerdict = tuple[str, str, str, dict[str, str]]


def _iter_records(directory: str, after_seq: int) -> Iterator[tuple[int, str, Any]]:
    from ..persist.wal import iter_wal_records

    return iter_wal_records(directory, after_seq)


def extract_slice(
    directory: str,
    provenance: Mapping[str, Any],
    *,
    events: set[str] | None = None,
    include_registry_ops: bool = True,
) -> list[tuple[int, str, Any]]:
    """The WAL records in the verdict's ``(first_seq, seq]`` range.

    Returns ``(seq, kind, payload)`` triples as yielded by
    :func:`~repro.persist.wal.iter_wal_records`.  ``events`` optionally
    narrows event records to an alphabet (e.g. one property's); registry
    ops are kept by default because replay must apply hot-load/unload
    ops at their original positions.
    """
    upto = int(provenance["seq"])
    after = int(provenance.get("first_seq", 0))
    out: list[tuple[int, str, Any]] = []
    for seq, kind, payload in _iter_records(directory, after):
        if seq > upto:
            break
        if kind == "event" and events is not None and payload[0] not in events:
            continue
        if kind == "registry" and not include_registry_ops:
            continue
        out.append((seq, kind, payload))
    return out


def _covering_checkpoint(directory: str, upto: int) -> tuple[int, dict] | None:
    """The newest intact checkpoint with ``seq <= upto``, or ``None``.

    Unlike ``latest_checkpoint`` this walks all checkpoints so a
    checkpoint *newer* than the verdict cannot mask an older usable one.
    """
    from ..persist.recovery import _read_checkpoint, checkpoint_files

    best: tuple[int, dict] | None = None
    for seq, path in checkpoint_files(directory):
        if seq > upto:
            break
        payload = _read_checkpoint(path)
        if payload is not None:
            best = (seq, payload)
    return best


def replay_verdict(
    directory: str,
    provenance: Mapping[str, Any],
    specs: Any,
    **engine_kwargs: Any,
) -> list[ReplayedVerdict]:
    """Replay the verdict's WAL slice into a fresh engine; return its verdicts.

    Mirrors :meth:`DurableEngine.recover`, bounded at the verdict's
    sequence: restore the newest intact checkpoint at or below
    ``provenance["seq"]`` when one exists (required once segments behind
    it were pruned), then replay the remaining records — events and
    registry ops at their original positions — up to and including the
    triggering event.  Restored/replayed parameters are
    :class:`~repro.runtime.tracelog.ReplayToken` stand-ins, so returned
    bindings are symbolic: compare with :func:`binding_symbols`.
    ``engine_kwargs`` (``gc``/``propagation``/``system``/...) configure
    the fresh engine on the no-checkpoint path.
    """
    from ..persist.codec import restore_engine
    from ..persist.recovery import DurableEngine
    from ..runtime.engine import MonitoringEngine
    from ..runtime.tracelog import replay_entries

    upto = int(provenance["seq"])
    verdicts: list[ReplayedVerdict] = []

    def on_verdict(prop: Any, verdict: str, monitor: Any) -> None:
        verdicts.append(
            (
                prop.spec_name,
                prop.formalism,
                verdict,
                {
                    name: getattr(value, "symbol", None)
                    for name, value in monitor.binding().items()
                },
            )
        )

    found = _covering_checkpoint(directory, upto)
    if found is None:
        engine = MonitoringEngine(specs, on_verdict=on_verdict, **engine_kwargs)
        tokens: dict[str, Any] = {}
        after = 0
    else:
        after, payload = found
        engine, tokens = restore_engine(payload["engine"], specs, on_verdict=on_verdict)

    pending: list[tuple[str, dict[str, str]]] = []
    for seq, kind, payload in _iter_records(directory, after):
        if seq > upto:
            break
        if kind == "event":
            pending.append(payload)
            continue
        if pending:
            replay_entries(pending, engine, tokens=tokens)
            pending = []
        DurableEngine._apply_registry_op(engine, payload)
    replay_entries(pending, engine, tokens=tokens)
    return verdicts


def binding_symbols(registry: Any, binding: Iterable | Mapping[str, Any]) -> dict[str, str]:
    """A verdict binding as ``{param name: symbol}`` under ``registry``.

    Accepts a mapping or (name, value) pairs — i.e. either a monitor's
    ``binding()`` dict or a :class:`~repro.service.aggregate.
    VerdictRecord` binding tuple — and names each parameter object with
    ``registry.symbol_for`` (a :class:`~repro.runtime.refs.
    SymbolRegistry`, typically ``DurableEngine.registry``).
    """
    items = binding.items() if hasattr(binding, "items") else binding
    return {name: registry.symbol_for(value) for name, value in items}


def verify_verdict(
    directory: str,
    provenance: Mapping[str, Any],
    specs: Any,
    category: str,
    binding: Mapping[str, str],
    **engine_kwargs: Any,
) -> bool:
    """True iff replaying the provenance slice reproduces the verdict.

    ``binding`` maps parameter names to the symbols the original run
    registered (see :func:`binding_symbols`).  The replay reproduces the
    verdict when some replayed verdict matches the provenance's property
    and formalism, the given category, and the symbolic binding exactly.
    """
    want = (
        str(provenance["property"]),
        str(provenance["formalism"]),
        category,
        dict(binding),
    )
    return want in replay_verdict(directory, provenance, specs, **engine_kwargs)
