"""The flight recorder: a bounded ring of recent history, dumped on trigger.

A :class:`FlightRecorder` keeps the last *N* interesting moments of one
engine shard — events (with their WAL coordinates when the engine writes
a write-ahead log), injected deaths, registry operations, and verdicts
(with full provenance) — in a lock-guarded ``deque``.  Nothing is ever
written anywhere until a **trigger** fires:

* ``verdict-burst`` — more than ``burst_count`` verdicts inside
  ``burst_window`` seconds (detected by the recorder itself);
* ``queue-saturation`` — a bounded shard queue forced the producer to
  block (wired by ``MonitorService``);
* ``worker-exception`` — a shard worker died with an unhandled
  exception (thread workers dump in the service; process workers dump
  in the child and ship the payload back in the error message).

A dump is a plain-JSON dict: the trigger reason and context, the ring
contents, and the deduplicated WAL references of everything in it.
Because verdict entries carry the engine's full provenance stamps,
:func:`replay_dump_verdict` can hand the triggering verdict straight to
``repro.obs.provenance.replay_verdict`` for a time-travel postmortem.

Attaching a recorder is opt-in (``engine.enable_flight_recorder()``)
and interposes per-instance wrappers exactly like telemetry does —
default-off hot paths stay byte-identical.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Mapping

__all__ = ["FlightRecorder", "replay_dump_verdict"]

#: Default bounded capacity of the ring buffer.
DEFAULT_CAPACITY = 512

#: Default verdict-burst trigger: more than this many verdicts ...
DEFAULT_BURST_COUNT = 32
#: ... within this many seconds.
DEFAULT_BURST_WINDOW = 1.0

#: Minimum seconds between two dumps for the same trigger reason.
DEFAULT_COOLDOWN = 1.0


def _safe(value: Any) -> Any:
    """A JSON-safe stand-in for an arbitrary monitored parameter value."""
    symbol = getattr(value, "symbol", None)
    if symbol is not None:
        return symbol
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return f"{type(value).__name__}@{id(value):#x}"


class FlightRecorder:
    """Bounded ring buffer of recent engine history with triggered dumps."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        burst_count: int = DEFAULT_BURST_COUNT,
        burst_window: float = DEFAULT_BURST_WINDOW,
        cooldown: float = DEFAULT_COOLDOWN,
        clock: Callable[[], float] = time.time,
        on_dump: "Callable[[dict[str, Any]], None] | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque[dict[str, Any]] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._clock = clock
        self._burst_count = int(burst_count)
        self._burst_window = float(burst_window)
        self._burst_times: deque[float] = deque(maxlen=max(1, self._burst_count))
        self._cooldown = float(cooldown)
        self._last_dump: dict[str, float] = {}
        self.on_dump = on_dump
        self.dumps: list[dict[str, Any]] = []
        self.dump_counter: Any = None  # optional repro_recorder_dumps_total family

    # -- recording -----------------------------------------------------

    def record(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one entry to the ring (oldest entries fall off)."""
        entry = {"kind": kind, "at": self._clock(), **fields}
        with self._lock:
            self._ring.append(entry)
        return entry

    def record_event(
        self,
        event: str,
        params: Mapping[str, Any],
        wal: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Record one dispatched event, with WAL coordinates when durable."""
        self.record(
            "event",
            event=event,
            params={name: _safe(value) for name, value in params.items()},
            wal=dict(wal) if wal is not None else None,
        )

    def record_deaths(self, dead: Any) -> None:
        """Record a batch of parameter deaths injected via ``note_deaths``."""
        self.record("deaths", params=[_safe(value) for value in dead])

    def record_registry_op(self, op: str, **fields: Any) -> None:
        """Record a dynamic-registry operation (attach/detach/enable)."""
        self.record("registry-op", op=op, **fields)

    def record_verdict(
        self,
        prop: Any,
        category: str,
        monitor: Any,
        wal: "Mapping[str, Any] | None" = None,
    ) -> "dict[str, Any] | None":
        """Record one verdict; returns a dump if it tripped the burst trigger.

        The entry keeps the monitor's full provenance stamp (property,
        slot, and — on durable engines — WAL segment/seq coordinates),
        which is what makes dumps replayable.
        """
        provenance = getattr(monitor, "provenance", None)
        try:
            binding = {
                name: _safe(value) for name, value in monitor.binding().items()
            }
        except Exception:
            binding = None
        entry = self.record(
            "verdict",
            property=prop.spec_name,
            formalism=prop.formalism,
            category=str(category),
            binding=binding,
            provenance=dict(provenance) if provenance is not None else None,
            wal=dict(wal) if wal is not None else None,
        )
        now = entry["at"]
        self._burst_times.append(now)
        if (
            len(self._burst_times) >= self._burst_count
            and now - self._burst_times[0] <= self._burst_window
        ):
            return self.trigger("verdict-burst", verdict=entry)
        return None

    # -- dumping -------------------------------------------------------

    def trigger(self, reason: str, **context: Any) -> "dict[str, Any] | None":
        """Take a dump now (subject to the per-reason cooldown).

        Returns the dump dict, also appended to :attr:`dumps` and passed
        to :attr:`on_dump` when set; ``None`` when the cooldown ate it.
        """
        now = self._clock()
        last = self._last_dump.get(reason)
        if last is not None and now - last < self._cooldown:
            return None
        self._last_dump[reason] = now
        dump = {
            "reason": reason,
            "at": now,
            "context": context,
            "entries": self.snapshot(),
        }
        dump["wal_refs"] = _wal_refs(dump["entries"])
        self.dumps.append(dump)
        if self.dump_counter is not None:
            self.dump_counter.labels(reason).inc()
        if self.on_dump is not None:
            self.on_dump(dump)
        return dump

    def snapshot(self) -> list[dict[str, Any]]:
        """Point-in-time copy of the ring contents (oldest first)."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def _wal_refs(entries: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Deduplicated WAL coordinates referenced by the dumped entries."""
    refs: dict[tuple[Any, Any], dict[str, Any]] = {}
    for entry in entries:
        for source in (entry.get("wal"), entry.get("provenance")):
            if source and source.get("seq") is not None:
                key = (source.get("segment"), source.get("seq"))
                refs.setdefault(
                    key,
                    {
                        "segment": source.get("segment"),
                        "seq": source.get("seq"),
                        "first_seq": source.get("first_seq"),
                    },
                )
    return [refs[key] for key in sorted(refs, key=lambda k: (str(k[0]), k[1]))]


def replay_dump_verdict(
    directory: Any,
    dump: Mapping[str, Any],
    specs: Any,
    **engine_kwargs: Any,
) -> list[tuple]:
    """Replay the dump's triggering verdict through ``repro.obs.provenance``.

    Picks the verdict that triggered the dump (the ``verdict`` context of
    a burst dump, else the newest verdict entry in the ring), requires it
    to carry WAL coordinates, and hands it to ``replay_verdict`` — the
    same time-travel path the provenance suite proves deterministic.
    """
    from .provenance import replay_verdict

    verdict = dump.get("context", {}).get("verdict")
    if verdict is None:
        candidates = [e for e in dump.get("entries", ()) if e.get("kind") == "verdict"]
        if not candidates:
            raise ValueError("dump contains no verdict entries")
        verdict = candidates[-1]
    provenance = verdict.get("provenance")
    if not provenance or provenance.get("seq") is None:
        raise ValueError("triggering verdict carries no WAL coordinates")
    return replay_verdict(directory, provenance, specs, **engine_kwargs)
