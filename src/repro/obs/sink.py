"""NDJSON metrics/trace sink — the tracelog idiom applied to telemetry.

One JSON object per line, append-only, so a long-running service can
stream periodic metric snapshots and sparse trace marks (verdicts,
checkpoints, rotations) into a file that ordinary line tools and
:func:`read_ndjson` can consume.  Record shape::

    {"kind": "metrics"|"trace", "at": <seconds>, ...payload}

``metrics`` records carry a full registry snapshot under ``"snapshot"``
(see :mod:`repro.obs.metrics` for the schema); ``trace`` records carry
an ``"event"`` name plus arbitrary JSON-safe fields.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = ["NdjsonSink", "read_ndjson"]


class NdjsonSink:
    """Append-only newline-delimited JSON writer (thread-safe)."""

    def __init__(self, path: str | Path, *, clock=time.time) -> None:
        self.path = Path(path)
        self._clock = clock
        self._lock = threading.Lock()
        self._fh: io.TextIOWrapper | None = self.path.open("a", encoding="utf-8")

    def _write(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                raise ValueError("sink is closed")
            self._fh.write(line + "\n")
            self._fh.flush()

    def write_metrics(self, snapshot: Mapping[str, Any], label: str | None = None) -> None:
        """Append one full registry snapshot."""
        record: dict[str, Any] = {"kind": "metrics", "at": self._clock(), "snapshot": dict(snapshot)}
        if label is not None:
            record["label"] = label
        self._write(record)

    def write_trace(self, event: str, **fields: Any) -> None:
        """Append one sparse trace mark (verdict, checkpoint, rotation...)."""
        self._write({"kind": "trace", "at": self._clock(), "event": event, **fields})

    def close(self) -> None:
        """Flush and close the underlying file; further writes raise."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "NdjsonSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_ndjson(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield each record of an NDJSON file; blank lines are skipped."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
