"""The :class:`Telemetry` facade every layer is wired through.

A ``Telemetry`` bundles one :class:`~repro.obs.metrics.MetricsRegistry`
with the sampling policy for hot-path timers.  Layers accept
``telemetry=None`` (the default, meaning *off*: the hot paths run the
exact pre-observability code), ``telemetry=True`` (a fresh default
``Telemetry``), or a shared ``Telemetry`` instance — normalize with
:func:`as_telemetry`.

Process boundary: a ``Telemetry`` must **not** be shared with forked
workers — the child's copy would inherit parent counts and merging its
snapshot back would double count.  Ship :meth:`Telemetry.config` (a
plain picklable dict) across instead, rebuild with
:meth:`Telemetry.from_config`, and fold worker snapshots into the
parent view with :func:`repro.obs.metrics.merge_snapshots`.

:func:`stats_to_metrics` is the stats bridge: it converts
``MonitorStats`` snapshots (the paper's E/M/FM/CM counters) into
catalogue-shaped metric series at snapshot time, so the exposition
endpoint serves Figure 10 live without touching the dispatch path.
"""

from __future__ import annotations

from typing import Any, Mapping

from .catalogue import METRICS
from .metrics import MetricsRegistry, Sampler

__all__ = [
    "Telemetry",
    "as_telemetry",
    "stats_to_metrics",
    "DEFAULT_SAMPLE_INTERVAL",
    "SHARD_PHASE_STRIDE",
]

#: Default 1-in-N sampling interval for hot-path timers.  At typical
#: per-event dispatch costs this keeps timer overhead well under the 5%
#: CI budget while still collecting hundreds of samples per bench run.
DEFAULT_SAMPLE_INTERVAL = 128

#: Per-shard sampler phase stride.  Odd (coprime with the power-of-two
#: default interval), so forked shard workers rebuilt from
#: ``Telemetry.config(shard=k)`` tick on pairwise-distinct phases instead
#: of phase-aligning and biasing sampled attribution toward whatever the
#: router happens to co-schedule.
SHARD_PHASE_STRIDE = 17


class Telemetry:
    """A metrics registry plus the sampling policy for hot-path timers."""

    __slots__ = (
        "registry",
        "sample_interval",
        "sample_phase",
        "attribution",
        "trace",
        "tracer",
    )

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
        sample_phase: int = 0,
        attribution: bool = False,
        trace: bool = False,
        trace_capacity: int | None = None,
    ) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_interval = int(sample_interval)
        self.sample_phase = int(sample_phase)
        self.attribution = bool(attribution)
        self.trace = bool(trace)
        if self.trace:
            from .catalogue import declare
            from .trace import Tracer

            counter = declare(self.registry, "repro_trace_spans_total")
            if trace_capacity is None:
                self.tracer = Tracer(counter=counter)
            else:
                self.tracer = Tracer(capacity=trace_capacity, counter=counter)
        else:
            self.tracer = None

    def sampler(self, offset: int = 0) -> Sampler:
        """A fresh deterministic sampler; ``offset`` decorrelates owners.

        Distinct owners (property slots, shards) pass their index so
        their sampled ticks interleave instead of aligning.
        """
        return Sampler(self.sample_interval, self.sample_phase + offset)

    def config(self, shard: int | None = None) -> dict[str, int]:
        """Picklable policy dict for rebuilding in a worker process.

        Pass the worker's ``shard`` index to offset the sampler phase by
        ``shard * SHARD_PHASE_STRIDE``: forked workers then sample on
        decorrelated ticks rather than all timing the same positions of
        every routed batch.
        """
        phase = self.sample_phase
        if shard is not None:
            phase += SHARD_PHASE_STRIDE * int(shard)
        return {
            "sample_interval": self.sample_interval,
            "sample_phase": phase,
            "attribution": self.attribution,
            "trace": self.trace,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, int]) -> "Telemetry":
        """Rebuild a fresh (zero-count) ``Telemetry`` from :meth:`config`."""
        return cls(
            sample_interval=int(config.get("sample_interval", DEFAULT_SAMPLE_INTERVAL)),
            sample_phase=int(config.get("sample_phase", 0)),
            attribution=bool(config.get("attribution", False)),
            trace=bool(config.get("trace", False)),
        )

    def snapshot(self) -> dict[str, Any]:
        """Shorthand for ``self.registry.snapshot()``."""
        return self.registry.snapshot()


def as_telemetry(value: "Telemetry | bool | None") -> "Telemetry | None":
    """Normalize a layer's ``telemetry`` argument.

    ``None``/``False`` → off (None); ``True`` → a fresh default
    ``Telemetry``; an existing ``Telemetry`` passes through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return Telemetry()
    return value


_STATS_COUNTERS = (
    ("repro_monitor_events_total", "events"),
    ("repro_monitor_monitors_created_total", "monitors_created"),
    ("repro_monitor_monitors_flagged_total", "monitors_flagged"),
    ("repro_monitor_monitors_collected_total", "monitors_collected"),
    ("repro_monitor_handler_fires_total", "handler_fires"),
)

_STATS_GAUGES = (
    ("repro_monitor_live_monitors", "live_monitors"),
    ("repro_monitor_peak_live_monitors", "peak_live_monitors"),
)


def stats_to_metrics(stats_snapshots: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Derive ``repro_monitor_*`` metric series from stats snapshots.

    ``stats_snapshots`` maps a property label (the engine's
    ``"<spec>/<formalism>"`` key) to a ``MonitorStats.snapshot()`` dict.
    Returns a registry-snapshot-shaped dict mergeable with live metrics
    via :func:`repro.obs.metrics.merge_snapshots`.
    """
    out: dict[str, Any] = {}

    def entry(name: str) -> dict[str, Any]:
        spec = METRICS[name]
        if name not in out:
            out[name] = {
                "kind": spec.kind,
                "help": spec.help,
                "labels": list(spec.labels),
                "series": [],
            }
        return out[name]

    for prop_label in sorted(stats_snapshots):
        snap = stats_snapshots[prop_label]
        for name, field in _STATS_COUNTERS:
            entry(name)["series"].append([[prop_label], snap.get(field, 0)])
        for name, field in _STATS_GAUGES:
            entry(name)["series"].append([[prop_label], snap.get(field, 0)])
        verdicts = snap.get("verdicts", {})
        for category in sorted(verdicts):
            entry("repro_monitor_verdicts_total")["series"].append(
                [[prop_label, category], verdicts[category]]
            )
    return out
