"""Structured spans across the service boundary, Perfetto-exportable.

A :class:`Tracer` is a bounded, thread-safe span buffer that the service
layer writes batch-scoped spans into: ``service.emit_batch`` on the
producer side, ``shard.drain`` inside each shard worker (thread workers
share the parent tracer; process workers record into their own rebuilt
tracer and ship the buffer back over the existing snapshot channel), and
``service.verdict_merge`` where the merged verdict stream is stitched
together.  Spans from many buffers are folded with :func:`merge_spans`
— the span analogue of ``merge_snapshots``.

Two exports:

* **NDJSON** — one span dict per line (:func:`write_spans_ndjson`), the
  at-rest format ``python -m repro.obs trace export`` consumes;
* **Chrome trace-event JSON** (:func:`spans_to_chrome`) — complete
  ``ph="X"`` duration events loadable in Perfetto / ``chrome://tracing``,
  checked by :func:`validate_chrome_trace` before anything is written.

Span timestamps are wall-clock (``time.time``) so buffers recorded in
different processes on the same host line up on one timeline; durations
are measured with ``perf_counter``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import IO, Any, Iterable, Mapping, Sequence

__all__ = [
    "Tracer",
    "merge_spans",
    "spans_to_chrome",
    "validate_chrome_trace",
    "write_spans_ndjson",
    "read_spans_ndjson",
]

#: Default bounded capacity of one tracer's span ring.
DEFAULT_TRACE_CAPACITY = 4096


class Tracer:
    """A bounded ring of structured spans, safe to record from any thread."""

    __slots__ = ("_spans", "_lock", "_counter")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY, counter: Any = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._spans: deque[dict[str, Any]] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._counter = counter  # optional repro_trace_spans_total family

    def record(
        self,
        name: str,
        cat: str = "repro",
        *,
        start: float,
        duration: float,
        **args: Any,
    ) -> dict[str, Any]:
        """Record one completed span.

        ``start`` is wall-clock seconds (``time.time``), ``duration`` in
        seconds; both are stored in microseconds, the trace-event unit.
        """
        span = {
            "name": name,
            "cat": cat,
            "ts": start * 1e6,
            "dur": max(0.0, duration) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
            "args": args,
        }
        with self._lock:
            self._spans.append(span)
        if self._counter is not None:
            self._counter.labels(name).inc()
        return span

    def span(self, name: str, cat: str = "repro", **args: Any) -> "_SpanContext":
        """Context manager that times its body and records it on exit."""
        return _SpanContext(self, name, cat, args)

    def snapshot(self) -> list[dict[str, Any]]:
        """Point-in-time copy of the buffered spans (oldest first)."""
        with self._lock:
            return [dict(span) for span in self._spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _SpanContext:
    """The timing body behind :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_wall", "_t0")

    def __init__(self, tracer: Tracer, name: str, cat: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer.record(
            self._name,
            self._cat,
            start=self._wall,
            duration=time.perf_counter() - self._t0,
            **self._args,
        )


def merge_spans(*buffers: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Stitch span buffers from many shards/processes onto one timeline.

    The span analogue of ``merge_snapshots``: wall-clock timestamps make
    buffers from forked workers directly comparable, so merging is a
    timestamp sort (ties broken by pid/tid for determinism).
    """
    merged = [dict(span) for buffer in buffers for span in buffer]
    merged.sort(key=lambda s: (s.get("ts", 0.0), s.get("pid", 0), s.get("tid", 0)))
    return merged


def spans_to_chrome(spans: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object (Perfetto-loadable).

    Every span becomes a complete duration event (``ph="X"``).  The
    result is validated by :func:`validate_chrome_trace` before return,
    so a payload this function hands out is loadable by construction.
    """
    events = [
        {
            "name": str(span.get("name", "")),
            "cat": str(span.get("cat", "repro")),
            "ph": "X",
            "ts": float(span.get("ts", 0.0)),
            "dur": float(span.get("dur", 0.0)),
            "pid": int(span.get("pid", 0)),
            "tid": int(span.get("tid", 0)),
            "args": dict(span.get("args", {})),
        }
        for span in spans
    ]
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    validate_chrome_trace(payload)
    return payload


def validate_chrome_trace(payload: Any) -> None:
    """Validate a Chrome trace-event payload; raise ``ValueError`` if bad.

    Checks the JSON-object container shape and, per event: required keys,
    ``ph`` in the set we emit, numeric non-negative ``ts``/``dur``,
    integer ``pid``/``tid``, and a mapping ``args``.  This is the schema
    gate the CI smoke step and the export CLI run before uploading.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
        raise ValueError("traceEvents must be an array")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            raise ValueError(f"{where}: not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where}: missing required key {key!r}")
        if event["ph"] not in ("X", "B", "E", "i", "M"):
            raise ValueError(f"{where}: unsupported phase {event['ph']!r}")
        for key in ("ts", "dur"):
            if key in event:
                value = event[key]
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"{where}: {key} must be a number")
                if value < 0:
                    raise ValueError(f"{where}: {key} must be >= 0")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int) or isinstance(event[key], bool):
                raise ValueError(f"{where}: {key} must be an integer")
        if "args" in event and not isinstance(event["args"], Mapping):
            raise ValueError(f"{where}: args must be an object")


def write_spans_ndjson(spans: Iterable[Mapping[str, Any]], target: "str | IO[str]") -> int:
    """Write spans one-per-line to a path or text stream; returns the count."""
    def _dump(stream: IO[str]) -> int:
        count = 0
        for span in spans:
            stream.write(json.dumps({"kind": "span", **span}, sort_keys=True) + "\n")
            count += 1
        return count

    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as stream:
            return _dump(stream)
    return _dump(target)


def read_spans_ndjson(source: "str | IO[str]") -> list[dict[str, Any]]:
    """Read spans written by :func:`write_spans_ndjson` (skips blank lines)."""
    def _load(stream: IO[str]) -> list[dict[str, Any]]:
        spans = []
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            record.pop("kind", None)
            spans.append(record)
        return spans

    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            return _load(stream)
    return _load(source)
