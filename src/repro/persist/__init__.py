"""Checkpoint & recovery: durable state for long-running monitors.

The paper's GC technique lets parametric monitoring run indefinitely; this
package lets the *surviving* state outlive a process.  Three layers:

* :mod:`repro.persist.codec` — a versioned snapshot codec for a full
  :class:`~repro.runtime.engine.MonitoringEngine` (compiled-property
  fingerprints, monitor instances with symbolic parameter refs, disable
  knowledge, statistics).  Guarantee: snapshot at event *k*, restore,
  replay the suffix ⇒ the verdict multiset and E/M/CM accounting equal an
  uninterrupted run (replay-equivalence, jMT-style record/replay
  validation);
* :mod:`repro.persist.wal` — a segmented write-ahead tracelog with fsync
  points, rotation, and pruning;
* :mod:`repro.persist.recovery` — :class:`DurableEngine`: WAL + periodic
  checkpoints; crash recovery = last intact snapshot + suffix replay.

The multiprocess shard backend of :mod:`repro.service` is built on the
same codec: worker-process engines are checkpointed and migrated as
snapshots.
"""

from .codec import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    materialize_tokens,
    restore_engine,
    restore_into,
    snapshot_engine,
    snapshot_from_bytes,
    snapshot_to_bytes,
    trace_symbol_of,
)
from .recovery import (
    CHECKPOINT_VERSION,
    DurableEngine,
    checkpoint_files,
    latest_checkpoint,
    read_checkpoint_file,
    write_checkpoint_file,
)
from .wal import WAL_VERSION, WalWriter, iter_wal, iter_wal_records, read_wal, wal_segments

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "WAL_VERSION",
    "CHECKPOINT_VERSION",
    "snapshot_engine",
    "restore_engine",
    "restore_into",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "materialize_tokens",
    "trace_symbol_of",
    "WalWriter",
    "read_wal",
    "iter_wal",
    "iter_wal_records",
    "wal_segments",
    "DurableEngine",
    "latest_checkpoint",
    "checkpoint_files",
    "write_checkpoint_file",
    "read_checkpoint_file",
]
