"""The engine snapshot codec: serialize/restore a full ``MonitoringEngine``.

A snapshot captures everything that determines an engine's future behavior:

* **compiled-property identity** — per-property fingerprints
  (:meth:`~repro.spec.compiler.CompiledProperty.fingerprint`); restore
  refuses a property set whose semantics differ from the snapshot's;
* **monitor instances** — FSM state / Earley chart / raw state via the
  formalism ``snapshot_state`` hooks, plus each instance's parameter
  binding as symbolic ref IDs (live objects) or ``!dead:`` markers (bound
  parameters whose object died before the snapshot);
* **disable knowledge** — the per-leaf *touched* serials driving the
  creation-validity check, with the runtimes' event/creation serials;
* **statistics** — full :class:`~repro.runtime.statistics.MonitorStats`
  snapshots, so E/M/FM/CM accounting continues exactly.

Snapshotting **flushes the engine first** (full dead-key scan): flushing
delivers every pending parameter-death notification and physically removes
flagged instances — both semantically invisible operations (flagged
instances are skipped everywhere and flag decisions are deterministic in
the monitor's last event and parameter liveness), after which the
remaining structures are exactly the behavior-determining state.  The
guarantee is **verdict equivalence**: snapshot at event *k*, restore into
a fresh engine, replay the suffix (via
:func:`repro.runtime.tracelog.replay_entries` with the restored token
table) — the verdict multiset and the final E/M/FM/CM row equal an
uninterrupted run's.

Restored parameter objects are fresh
:class:`~repro.runtime.tracelog.ReplayToken` stand-ins — a snapshot names
objects symbolically; it cannot resurrect application objects.  The
returned token table is therefore part of the restore result: whatever
feeds the restored engine must map symbols through it.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.errors import PersistError
from ..runtime.engine import MonitoringEngine, VerdictCallback
from ..runtime.refs import SymbolRegistry
from ..runtime.statistics import MonitorStats
from ..runtime.tracelog import ReplayToken
from ..spec.compiler import CompiledProperty
from ..spec.registry import PropertyRegistry, normalize_properties

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "trace_symbol_of",
    "materialize_tokens",
    "snapshot_engine",
    "restore_engine",
    "restore_into",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
]

SNAPSHOT_FORMAT = "repro-engine-snapshot"
#: Version 2 added the dynamic property registry: epoch, per-slot
#: fingerprints/enabled state/origins, tombstoned (removed) slots, and the
#: retired statistics folded into the engine totals at detach time.
SNAPSHOT_VERSION = 2

#: Binary container magic: ``RPSNAP`` + 2-digit container version + newline.
_MAGIC = b"RPSNAP01\n"


def trace_symbol_of(registry: SymbolRegistry | None = None) -> Callable[[Any], str]:
    """A ``symbol_of`` function that preserves trace identities.

    Objects that *are* replay/trace stand-ins keep their existing names —
    a :class:`~repro.runtime.tracelog.ReplayToken` is named by its own
    symbol and a canonicalized ``v:`` literal by its text — so an engine
    fed from a symbolic trace snapshots under the trace's namespace and
    the suffix replay lines up with the restored tokens.

    :meth:`SymbolRegistry.symbol_for` itself implements this adoption (so
    the write-ahead log and every other consumer of one registry agree);
    this helper just supplies a fresh registry when the caller has none.
    """
    if registry is None:
        registry = SymbolRegistry()
    return registry.symbol_for


def snapshot_engine(
    engine: MonitoringEngine,
    symbol_of: Callable[[Any], str] | None = None,
) -> dict:
    """Serialize ``engine`` into a versioned, JSON-safe snapshot dict.

    Flushes the engine first (see module docstring); the engine remains
    fully usable afterwards.  ``symbol_of`` supplies symbolic ref IDs for
    live parameter objects — pass one registry's ``symbol_for`` (or
    :func:`trace_symbol_of` over one registry) when snapshotting several
    engines (service shards) whose states share objects, so a given object
    is named consistently; the default is a fresh :func:`trace_symbol_of`.
    """
    if symbol_of is None:
        symbol_of = trace_symbol_of()
    engine.flush_gc()
    try:
        runtimes = [
            None if runtime is None else runtime.export_persist_state(symbol_of)
            for runtime in engine.runtimes
        ]
    except PersistError:
        raise
    except TypeError as exc:
        raise PersistError(f"engine state is not snapshot-serializable: {exc}") from exc
    snapshot = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "engine": engine.config(),
        "registry": engine.registry.snapshot(),
        "properties": [
            {
                "spec": entry.spec_name,
                "formalism": entry.formalism,
                "fingerprint": entry.fingerprint,
                "removed": entry.removed,
            }
            for entry in engine.registry.entries
        ],
        "runtimes": runtimes,
        # Final statistics of detached slots, folded into the totals at
        # detach time — E/M/FM/CM accounting must survive the snapshot.
        "retired": {
            str(index): stats.snapshot()
            for index, (_spec, _formalism, stats) in engine._retired.items()
        },
    }
    # Fail at snapshot time, not restore time, on non-JSON monitor state.
    try:
        json.dumps(snapshot)
    except (TypeError, ValueError) as exc:
        raise PersistError(f"snapshot payload is not JSON-serializable: {exc}") from exc
    return snapshot


def _check_header(snapshot: Mapping[str, Any]) -> None:
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise PersistError(
            f"not an engine snapshot (format={snapshot.get('format')!r})"
        )
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise PersistError(
            f"unsupported snapshot version {version!r} (this build reads "
            f"version {SNAPSHOT_VERSION})"
        )


def _check_registry(snapshot: Mapping[str, Any], engine: MonitoringEngine) -> None:
    """The restore target's registry must mean what the snapshot's meant:
    same slot count, same removal tombstones, same per-slot fingerprints."""
    recorded = snapshot.get("registry", {}).get("entries", ())
    entries = engine.registry.entries
    if len(recorded) != len(entries):
        raise PersistError(
            f"snapshot holds {len(recorded)} properties, restore target has "
            f"{len(entries)}"
        )
    for index, (record, entry) in enumerate(zip(recorded, entries)):
        if bool(record.get("removed")) != entry.removed:
            raise PersistError(
                f"property slot {index} ({record.get('name')!r}) "
                f"{'is' if record.get('removed') else 'is not'} removed in "
                "the snapshot but the restore target disagrees"
            )
        if record["fingerprint"] != entry.fingerprint:
            raise PersistError(
                f"property {index} ({record['spec']}/{record['formalism']}) does "
                f"not match the snapshot: fingerprint {entry.fingerprint} != "
                f"{record['fingerprint']} — the specification semantics changed"
            )


def _collect_symbols(snapshot: Mapping[str, Any]) -> set[str]:
    symbols: set[str] = set()
    for runtime in snapshot["runtimes"]:
        if runtime is None:
            continue
        for record in runtime["touched"]:
            symbols.update(record["params"].values())
        for monitor in runtime["monitors"]:
            for symbol in monitor["params"].values():
                if not symbol.startswith("!dead:"):
                    symbols.add(symbol)
    return symbols


def materialize_tokens(
    symbols: Iterable[str], tokens: "dict[str, Any] | None" = None
) -> dict[str, Any]:
    """Fresh stand-in objects for ``symbols``, merged into ``tokens``.

    ``oN`` symbols get :class:`~repro.runtime.tracelog.ReplayToken`
    identities; ``v:`` symbols canonicalize to their own text (immortal
    literals compare by value).  Existing entries are kept, so several
    restores can share one table.
    """
    if tokens is None:
        tokens = {}
    for symbol in symbols:
        if symbol not in tokens:
            tokens[symbol] = symbol if symbol.startswith("v:") else ReplayToken(symbol)
    return tokens


def restore_into(
    engine: MonitoringEngine,
    snapshot: Mapping[str, Any],
    tokens: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Populate a **virgin** engine from a snapshot; returns the token table.

    The engine must have been built over the same compiled properties (by
    fingerprint) and the same configuration the snapshot records, and must
    not have processed any events.  Service restore uses this form to fill
    shard engines it already constructed; ``tokens`` lets shards share one
    symbol table.
    """
    _check_header(snapshot)
    _check_registry(snapshot, engine)
    config = engine.config()
    if config != snapshot["engine"]:
        raise PersistError(
            f"engine configuration {config} does not match snapshot "
            f"{snapshot['engine']}"
        )
    for runtime in engine.runtimes:
        if runtime is not None and (runtime._event_serial or runtime._serial):
            raise PersistError("restore target engine has already processed events")
    tokens = materialize_tokens(_collect_symbols(snapshot), tokens)
    registry_payload = snapshot.get("registry", {})
    for runtime, payload in zip(engine.runtimes, snapshot["runtimes"]):
        if runtime is None or payload is None:
            continue  # removed slot (tombstone alignment checked above)
        runtime.import_persist_state(payload, tokens)
    # Per-slot enabled state, the retired-slot statistics, and the registry
    # epoch round-trip with the snapshot.
    enabled_changed = False
    for record, entry in zip(registry_payload.get("entries", ()), engine.registry.entries):
        if entry.removed:
            continue
        enabled = record.get("enabled", True)
        if entry.enabled != enabled:
            entry.enabled = enabled
            engine.runtimes[entry.index].enabled = enabled
            enabled_changed = True
    if enabled_changed:
        engine._rebuild_event_index()
    for key, stats_payload in snapshot.get("retired", {}).items():
        index = int(key)
        entry = engine.registry.entries[index]
        engine._retired[index] = (
            entry.spec_name,
            entry.formalism,
            MonitorStats.from_snapshot(stats_payload),
        )
    engine.registry.restore_epoch(registry_payload.get("epoch", engine.registry.epoch))
    return tokens


def restore_engine(
    snapshot: Mapping[str, Any],
    properties: Sequence[CompiledProperty] | Any,
    on_verdict: VerdictCallback | None = None,
    tokens: "dict[str, Any] | None" = None,
) -> tuple[MonitoringEngine, dict[str, Any]]:
    """Build a fresh engine from ``snapshot`` over ``properties``.

    ``properties`` is anything :class:`MonitoringEngine` accepts (compiled
    specs/properties or sequences thereof) — snapshots store no code, so
    the caller must supply the same compiled semantics; fingerprints are
    verified.  Slots the caller does not cover are re-materialized from
    the registry's recorded origins (hot-loaded source text / paper keys),
    and removed slots are restored as tombstones carrying their retired
    statistics.  Returns ``(engine, tokens)`` where ``tokens`` maps every
    live symbol in the snapshot to its restored stand-in object.
    """
    _check_header(snapshot)
    config = snapshot["engine"]
    registry = PropertyRegistry.from_snapshot(
        snapshot.get("registry", {}),
        normalize_properties(properties) if properties is not None else None,
    )
    engine = MonitoringEngine(
        registry,
        gc=config["gc"],
        propagation=config["propagation"],
        scan_budget=config["scan_budget"],
        on_verdict=on_verdict,
    )
    tokens = restore_into(engine, snapshot, tokens)
    return engine, tokens


def snapshot_to_bytes(snapshot: Mapping[str, Any]) -> bytes:
    """Encode a snapshot dict as compressed, magic-tagged bytes."""
    payload = json.dumps(snapshot, separators=(",", ":"), sort_keys=True)
    return _MAGIC + zlib.compress(payload.encode("utf-8"), level=6)


def snapshot_from_bytes(data: bytes) -> dict:
    """Decode :func:`snapshot_to_bytes` output (with integrity checks)."""
    if not data.startswith(_MAGIC):
        raise PersistError("not a repro snapshot (bad magic)")
    try:
        payload = zlib.decompress(data[len(_MAGIC):])
        snapshot = json.loads(payload)
    except (zlib.error, ValueError) as exc:
        raise PersistError(f"corrupt snapshot payload: {exc}") from exc
    _check_header(snapshot)
    return snapshot
