"""Durable monitoring: checkpoints + write-ahead log = crash recovery.

:class:`DurableEngine` wraps a :class:`~repro.runtime.engine.MonitoringEngine`
with the two persistence halves of this package:

* every emitted event is appended to the :class:`~repro.persist.wal.WalWriter`
  *before* dispatch (write-ahead: a crash mid-dispatch replays the event);
* :meth:`checkpoint` writes a CRC-guarded snapshot file
  (``checkpoint-<seq>.ckpt``) of the engine at the current WAL sequence,
  then prunes fully covered segments.

Recovery (:meth:`DurableEngine.recover`) = **last intact snapshot +
suffix replay**: load the newest checkpoint whose CRC verifies (a crash
mid-checkpoint-write leaves a torn file, which is skipped), restore the
engine, then re-emit every WAL entry after the checkpoint's sequence.  The
restored parameter objects are fresh
:class:`~repro.runtime.tracelog.ReplayToken` stand-ins registered under
their original symbols, so the continued log stays consistent.  By the
codec's replay-equivalence guarantee, the recovered engine's verdict
multiset and E/M/CM accounting equal an uninterrupted run over the same
events (flag counts can differ by lazy-scan phase).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from time import perf_counter
from typing import Any

from ..core.errors import PersistError, RegistryError
from ..obs.catalogue import declare as _declare_metric
from ..obs.telemetry import as_telemetry
from ..runtime.engine import MonitoringEngine, VerdictCallback
from ..runtime.refs import SymbolRegistry
from ..runtime.tracelog import replay_entries
from ..spec.registry import (
    PORTABLE_ORIGIN_KINDS,
    materialize_origin,
    normalize_properties,
)
from .codec import restore_engine, snapshot_engine, trace_symbol_of
from .wal import WalWriter, iter_wal_records

__all__ = [
    "CHECKPOINT_VERSION",
    "DurableEngine",
    "latest_checkpoint",
    "checkpoint_files",
    "write_checkpoint_file",
    "read_checkpoint_file",
]

CHECKPOINT_VERSION = 1

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.ckpt$")


def _checkpoint_name(seq: int) -> str:
    return f"checkpoint-{seq:012d}.ckpt"


def checkpoint_files(directory: str) -> list[tuple[int, str]]:
    """Sorted ``(seq, path)`` pairs of the checkpoints in ``directory``."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def _write_checkpoint(path: str, payload: dict) -> None:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    record = json.dumps({"crc": zlib.crc32(body)}).encode("utf-8") + b"\n" + body
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(record)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)  # atomic publish: readers see whole files only


def _read_checkpoint(path: str) -> dict | None:
    """The checkpoint payload, or ``None`` when torn/corrupt (skippable)."""
    try:
        with open(path, "rb") as handle:
            header_line = handle.readline()
            body = handle.read()
        header = json.loads(header_line)
        if zlib.crc32(body) != header["crc"]:
            return None
        payload = json.loads(body)
    except (OSError, ValueError, KeyError):
        return None
    if payload.get("checkpoint_version") != CHECKPOINT_VERSION:
        return None
    return payload


def write_checkpoint_file(directory: str, seq: int, payload: dict) -> str:
    """Write one CRC-guarded checkpoint file; returns its path.

    The public form of the :class:`DurableEngine` checkpoint write — the
    shard supervisor stores its per-shard checkpoints in the same torn-
    tolerant format.  ``payload`` gains ``checkpoint_version`` so
    :func:`read_checkpoint_file` / :func:`latest_checkpoint` accept it.
    """
    payload = {"checkpoint_version": CHECKPOINT_VERSION, **payload}
    path = os.path.join(directory, _checkpoint_name(seq))
    _write_checkpoint(path, payload)
    return path


def read_checkpoint_file(path: str) -> dict | None:
    """The checkpoint payload at ``path``, or ``None`` when torn/corrupt."""
    return _read_checkpoint(path)


def latest_checkpoint(directory: str) -> tuple[int, dict] | None:
    """The newest *intact* checkpoint as ``(seq, payload)``, or ``None``."""
    for seq, path in reversed(checkpoint_files(directory)):
        payload = _read_checkpoint(path)
        if payload is not None:
            return seq, payload
    return None


class DurableEngine:
    """A monitoring engine whose state survives process death.

    ``specs`` is anything :class:`MonitoringEngine` accepts.  All events
    must flow through :meth:`emit` (or the engine's own ``emit`` — the
    WAL is attached as the engine's emission tap, so both paths log).

    ``checkpoint_every`` (optional) auto-checkpoints after that many
    events; explicit :meth:`checkpoint` calls are always allowed.
    """

    def __init__(
        self,
        specs: Any,
        directory: str,
        *,
        gc: str | None = None,
        propagation: str | None = None,
        system: str | None = None,
        scan_budget: int = 2,
        on_verdict: VerdictCallback | None = None,
        segment_events: int = 10_000,
        fsync_interval: int = 256,
        checkpoint_every: int | None = None,
        prune_on_checkpoint: bool = True,
        telemetry: Any = None,
        _engine: MonitoringEngine | None = None,
        _registry: SymbolRegistry | None = None,
        _start_seq: int = 0,
    ):
        self.telemetry = as_telemetry(telemetry)
        if _engine is not None:
            self.engine = _engine
        else:
            self.engine = MonitoringEngine(
                specs,
                gc=gc,
                propagation=propagation,
                system=system,
                scan_budget=scan_budget,
                on_verdict=on_verdict,
                telemetry=self.telemetry,
            )
        self.directory = directory
        self.registry = _registry if _registry is not None else SymbolRegistry()
        self.wal = WalWriter(
            directory,
            self.registry,
            segment_events=segment_events,
            fsync_interval=fsync_interval,
            start_seq=_start_seq,
            telemetry=self.telemetry,
        )
        self.checkpoint_every = checkpoint_every
        self.prune_on_checkpoint = prune_on_checkpoint
        self._events_since_checkpoint = 0
        self._closed = False
        self.engine.on_emit = self._on_emit
        #: Checkpoint floor carried in verdict provenance (0 = the whole
        #: log reproduces the verdict without restoring a snapshot first).
        self._provenance_floor = 0
        # Verdicts fired under this engine carry the WAL coordinates of
        # the triggering event: the WAL is write-ahead, so at dispatch
        # time ``wal.seq`` IS the current event's sequence number.
        self.engine.provenance_source = self._provenance_coords
        if self.telemetry is not None:
            self._m_checkpoint = _declare_metric(
                self.telemetry.registry, "repro_persist_checkpoint_seconds"
            ).labels()
        else:
            self._m_checkpoint = None

    def _provenance_coords(self) -> dict[str, int]:
        """WAL coordinates of the event currently being dispatched."""
        return {
            "segment": self.wal.segment_index,
            "seq": self.wal.seq,
            "first_seq": self._provenance_floor,
        }

    # -- ingestion -----------------------------------------------------------

    def _on_emit(self, event: str, params: dict[str, Any]) -> None:
        self.wal.append(event, params)
        self._events_since_checkpoint += 1

    def emit(self, event: str, _strict: bool = True, **params: Any) -> None:
        """Log, dispatch, and auto-checkpoint when the interval elapses."""
        if self._closed:
            raise PersistError("emit on a closed DurableEngine")
        self.engine.emit(event, _strict=_strict, **params)
        if (
            self.checkpoint_every is not None
            and self._events_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    def enable_flight_recorder(self, recorder: Any = None) -> Any:
        """Attach a flight recorder to the inner engine.

        On a durable engine the recorder's entries carry WAL coordinates
        (via ``provenance_source``), so a triggered dump is replayable:
        hand it to :func:`repro.obs.recorder.replay_dump_verdict` with
        this engine's directory after a :meth:`repro.persist.wal.WalWriter.sync`.
        """
        return self.engine.enable_flight_recorder(recorder)

    # -- dynamic property registry -------------------------------------------

    def register_property(self, item: Any, name: str | None = None) -> list[int]:
        """Hot-load properties durably: write-ahead log the registry op,
        then attach at the current event boundary.

        Only properties re-materializable from data (specification source
        text or a paper-property key) can be registered on a durable
        engine — recovery must be able to re-compile them from the log
        alone.  Returns the new slot indexes.

        Every precondition is validated *before* the op is logged: a
        failing operation must never reach the WAL, or recovery would
        replay the failure and refuse the whole log suffix.
        """
        if self._closed:
            raise PersistError("register_property on a closed DurableEngine")
        normalized = normalize_properties(item)
        if name is not None and len(normalized) != 1:
            raise RegistryError(
                f"cannot register {len(normalized)} properties under one "
                f"name {name!r}"
            )
        if name is not None and self.engine.registry.has_name(name):
            raise RegistryError(f"property name {name!r} is already registered")
        for _prop, origin in normalized:
            if origin.get("kind") not in PORTABLE_ORIGIN_KINDS:
                raise PersistError(
                    "a durable engine can only register properties that are "
                    "re-materializable from data: pass specification source "
                    "text or a PaperProperty"
                )
        indexes: list[int] = []
        for prop, origin in normalized:
            self.wal.append_registry_op(
                {"op": "add", "name": name, "origin": origin}
            )
            indexes.extend(
                self.engine.attach_property(prop, name=name, origin=origin)
            )
        return indexes

    def unregister_property(self, ref: Any) -> None:
        """Durably hot-unload one property (validated, logged, detached)."""
        if self._closed:
            raise PersistError("unregister_property on a closed DurableEngine")
        entry = self.engine.registry.entry(ref)
        if entry.removed:
            raise RegistryError(f"property {entry.name!r} is already removed")
        self.wal.append_registry_op({"op": "remove", "index": entry.index})
        self.engine.detach_property(entry.index)

    def set_property_enabled(self, ref: Any, enabled: bool) -> None:
        """Durably pause/resume one property (validated, logged, applied)."""
        if self._closed:
            raise PersistError("set_property_enabled on a closed DurableEngine")
        entry = self.engine.registry.entry(ref)
        if entry.removed:
            raise RegistryError(f"property {entry.name!r} has been removed")
        self.wal.append_registry_op(
            {"op": "enable" if enabled else "disable", "index": entry.index}
        )
        self.engine.set_property_enabled(entry.index, enabled)

    @staticmethod
    def _apply_registry_op(engine: MonitoringEngine, op: "dict") -> None:
        kind = op.get("op")
        if kind == "add":
            prop = materialize_origin(op["origin"])
            engine.attach_property(prop, name=op.get("name"), origin=op["origin"])
        elif kind == "remove":
            engine.detach_property(op["index"])
        elif kind == "enable":
            engine.set_property_enabled(op["index"], True)
        elif kind == "disable":
            engine.set_property_enabled(op["index"], False)
        else:
            raise PersistError(f"unknown WAL registry op {kind!r}")

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> str:
        """Write a durable snapshot at the current WAL sequence.

        Returns the checkpoint path.  The WAL is fsynced first, so the
        snapshot never claims a sequence the log has not persisted; crash
        mid-write leaves a torn ``.tmp`` the recovery scan ignores.
        """
        if self._closed:
            raise PersistError("checkpoint on a closed DurableEngine")
        start = perf_counter()
        self.wal.sync()
        seq = self.wal.seq
        payload = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "seq": seq,
            "registry_counter": self.registry.counter,
            "engine": snapshot_engine(self.engine, trace_symbol_of(self.registry)),
        }
        path = os.path.join(self.directory, _checkpoint_name(seq))
        _write_checkpoint(path, payload)
        if self.prune_on_checkpoint:
            self.wal.prune(seq)
        self._events_since_checkpoint = 0
        self._provenance_floor = seq
        if self._m_checkpoint is not None:
            self._m_checkpoint.observe(perf_counter() - start)
        return path

    def close(self) -> None:
        """Idempotent: final fsync, then release the log handle."""
        if not self._closed:
            self._closed = True
            self.wal.close()

    def __enter__(self) -> "DurableEngine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        specs: Any,
        directory: str,
        *,
        on_verdict: VerdictCallback | None = None,
        gc: str | None = None,
        propagation: str | None = None,
        system: str | None = None,
        scan_budget: int = 2,
        segment_events: int = 10_000,
        fsync_interval: int = 256,
        checkpoint_every: int | None = None,
        telemetry: Any = None,
    ) -> tuple["DurableEngine", dict[str, Any]]:
        """Rebuild from ``directory``: last intact snapshot + WAL suffix.

        Returns ``(durable, tokens)`` — ``tokens`` maps every symbol that
        is still live after the replay to its restored stand-in object
        (callers that keep feeding real traffic can ignore it; callers
        resuming a symbolic stream route through it).  With no checkpoint
        on disk the whole log is replayed into a fresh engine built from
        the ``gc``/``propagation``/``system`` arguments; with a checkpoint
        the engine configuration comes from the snapshot.
        """
        start = perf_counter()
        telemetry = as_telemetry(telemetry)
        found = latest_checkpoint(directory)
        registry = SymbolRegistry()
        if found is None:
            engine = MonitoringEngine(
                specs,
                gc=gc,
                propagation=propagation,
                system=system,
                scan_budget=scan_budget,
                on_verdict=on_verdict,
                telemetry=telemetry,
            )
            tokens: dict[str, Any] = {}
            after = 0
        else:
            seq, payload = found
            engine, tokens = restore_engine(
                payload["engine"], specs, on_verdict=on_verdict
            )
            if telemetry is not None:
                engine.enable_telemetry(telemetry)
            after = payload["seq"]
        # One pass over the log: collect the replay suffix (events *and*
        # registry ops, in sequence order), the last durable sequence, and
        # the highest numeric symbol ever used (so post-recovery minting
        # cannot collide with pre-crash names).
        records: list[tuple[str, Any]] = []
        last_seq = after
        highest = registry.counter
        for seq2, kind, payload in iter_wal_records(directory, 0):
            last_seq = max(last_seq, seq2)
            if kind == "event":
                for symbol in payload[1].values():
                    if symbol.startswith("o") and symbol[1:].isdigit():
                        highest = max(highest, int(symbol[1:]))
            if seq2 > after:
                records.append((kind, payload))
        # Replay the suffix with registry ops applied at exactly the trace
        # positions they originally happened — a property hot-loaded at
        # event k sees events k..n and nothing earlier, as in the original
        # run.  The token table is shared across chunks so identities are
        # continuous.
        pending: list[tuple[str, dict[str, str]]] = []
        for kind, payload in records:
            if kind == "event":
                pending.append(payload)
                continue
            if pending:
                replay_entries(pending, engine, tokens=tokens)
                pending = []
            cls._apply_registry_op(engine, payload)
        replay_entries(pending, engine, tokens=tokens)
        for symbol, token in tokens.items():
            registry.register(token, symbol)
        if found is not None:
            highest = max(highest, int(found[1].get("registry_counter", 0)))
        registry.ensure_counter(highest)
        durable = cls(
            None,
            directory,
            _engine=engine,
            _registry=registry,
            _start_seq=last_seq,
            segment_events=segment_events,
            fsync_interval=fsync_interval,
            checkpoint_every=checkpoint_every,
            telemetry=telemetry,
        )
        durable._provenance_floor = after
        if telemetry is not None:
            _declare_metric(
                telemetry.registry, "repro_persist_restore_seconds"
            ).labels().observe(perf_counter() - start)
        return durable, tokens
