"""A segmented write-ahead tracelog (WAL) for parametric event streams.

Layered on the symbolic trace format of :mod:`repro.runtime.tracelog`: one
JSON line per event, parameters named by symbolic ref IDs from one
:class:`~repro.runtime.refs.SymbolRegistry`.  On top of the plain recorder
the WAL adds what crash recovery needs:

* **global sequence numbers** — every entry carries ``seq``; recovery
  replays exactly the entries after a checkpoint's sequence;
* **segment rotation** — ``wal-<n>.log`` files of bounded entry count, so
  retention is bounded and segments fully covered by a checkpoint can be
  pruned;
* **fsync points** — the file is flushed+fsynced every ``fsync_interval``
  appends and at every :meth:`sync`; a crash loses at most the tail after
  the last fsync point;
* **torn-tail tolerance** — a crash can leave a truncated last line; the
  reader stops at the first undecodable line of the final segment instead
  of failing (mid-log corruption, by contrast, raises).

The WAL records *events*, not object deaths — the caveat documented by
:mod:`repro.runtime.tracelog` applies to recovery replays as well.
"""

from __future__ import annotations

import json
import os
import re
from time import perf_counter
from typing import Any, Iterator, Mapping, Sequence

from ..core.errors import PersistError, WalWriteError
from ..obs.catalogue import declare as _declare_metric
from ..obs.telemetry import as_telemetry
from ..runtime.refs import SymbolRegistry

__all__ = [
    "WAL_VERSION",
    "WalWriter",
    "read_wal",
    "iter_wal",
    "iter_wal_records",
    "wal_segments",
    "repair_tail",
]

WAL_VERSION = 1

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.log"


def wal_segments(directory: str) -> list[tuple[int, str]]:
    """Sorted ``(segment index, path)`` pairs of the WAL segments in
    ``directory``."""
    segments = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            segments.append((int(match.group(1)), os.path.join(directory, name)))
    segments.sort()
    return segments


class WalWriter:
    """Append parametric events durably; rotate; prune behind checkpoints.

    ``registry`` supplies the symbolic ref IDs — share it with the
    checkpoint codec (see :class:`repro.persist.recovery.DurableEngine`)
    so snapshots and log entries name objects consistently.
    """

    def __init__(
        self,
        directory: str,
        registry: SymbolRegistry | None = None,
        *,
        segment_events: int = 10_000,
        fsync_interval: int = 256,
        start_seq: int = 0,
        telemetry: Any = None,
        on_write_error: "Any | None" = None,
        fault_hook: "Any | None" = None,
    ):
        if segment_events < 1:
            raise PersistError("segment_events must be >= 1")
        if fsync_interval < 1:
            raise PersistError("fsync_interval must be >= 1")
        #: Set once any I/O failed; the writer refuses further appends.
        self.failed = False
        #: Supervisor-visible failure signal: called with the
        #: :class:`~repro.core.errors.WalWriteError` before it is raised.
        self.on_write_error = on_write_error
        #: Deterministic fault injection point: called with the operation
        #: name ("append" / "rotate" / "sync") before the real I/O.
        self._fault_hook = fault_hook
        os.makedirs(directory, exist_ok=True)
        # A previous crash may have left a torn trailing line in the last
        # segment.  Readers tolerate it only while that segment is last —
        # this writer is about to open a new one, so cut the tear off now
        # or every future read of the directory would fail on it.
        repair_tail(directory)
        self.directory = directory
        self.registry = registry if registry is not None else SymbolRegistry()
        self.segment_events = segment_events
        self.fsync_interval = fsync_interval
        self.seq = start_seq
        self._since_fsync = 0
        self._segment_entries = 0
        self.fsyncs = 0
        existing = wal_segments(directory)
        self._segment_index = existing[-1][0] + 1 if existing else 1
        #: first_seq per written segment index (prune decisions).
        self._first_seqs: dict[int, int] = {}
        self._handle = None
        self._open_segment()
        self.telemetry = as_telemetry(telemetry)
        if self.telemetry is not None:
            self._wire_telemetry(self.telemetry)

    @property
    def segment_index(self) -> int:
        """Index of the segment currently being written (provenance)."""
        return self._segment_index

    def _wire_telemetry(self, telemetry: Any) -> None:
        """Interpose append/fsync/rotation instrumentation (off by default).

        Appends get an exact counter plus a 1-in-N sampled latency
        histogram (they sit on the durable ingest hot path); fsyncs and
        rotations are rare boundary operations and are timed unsampled.
        """
        registry = telemetry.registry
        appends = _declare_metric(registry, "repro_wal_appends_total").labels()
        append_time = _declare_metric(registry, "repro_wal_append_seconds").labels()
        fsync_time = _declare_metric(registry, "repro_wal_fsync_seconds").labels()
        rotate_time = _declare_metric(registry, "repro_wal_rotation_seconds").labels()
        sampler = telemetry.sampler()
        inner_append = self.append
        inner_sync = self.sync
        inner_rotate = self._rotate

        def append(event: str, params: Mapping[str, Any]) -> int:
            appends.inc()
            if not sampler.sample():
                return inner_append(event, params)
            start = perf_counter()
            try:
                return inner_append(event, params)
            finally:
                append_time.observe(perf_counter() - start)

        def sync() -> None:
            start = perf_counter()
            try:
                inner_sync()
            finally:
                fsync_time.observe(perf_counter() - start)

        def _rotate() -> None:
            start = perf_counter()
            try:
                inner_rotate()
            finally:
                rotate_time.observe(perf_counter() - start)

        self.append = append  # type: ignore[method-assign]
        self.sync = sync  # type: ignore[method-assign]
        self._rotate = _rotate  # type: ignore[method-assign]

    # -- the tap side --------------------------------------------------------

    def attach(self, engine: Any) -> "WalWriter":
        """Register as an engine's emission tap (like a TraceRecorder)."""
        engine.on_emit = self.append
        return self

    def _write_failed(self, op: str, exc: OSError) -> None:
        """Convert an ``OSError`` into the typed, supervisor-visible failure.

        Marks the writer failed (further appends refuse immediately — a
        half-written log must not keep growing past the failure point),
        notifies :attr:`on_write_error`, and raises
        :class:`~repro.core.errors.WalWriteError` carrying the errno.
        """
        self.failed = True
        error = WalWriteError(
            f"WAL {op} failed in {self.directory}: {exc}",
            errno=getattr(exc, "errno", None),
        )
        callback = self.on_write_error
        if callback is not None:
            try:
                callback(error)
            except Exception:  # pragma: no cover - observer must not mask
                pass
        raise error from exc

    def _write_record(self, entry: dict, op: str) -> None:
        try:
            # The injection point sits inside the conversion so a
            # simulated ENOSPC takes the exact path a real one does.
            if self._fault_hook is not None:
                self._fault_hook(op)
            self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        except OSError as exc:
            self._write_failed(op, exc)
        self._segment_entries += 1

    def _check_writable(self, op: str) -> None:
        if self._handle is None:
            raise PersistError(f"{op} on a closed WalWriter")
        if self.failed:
            raise WalWriteError(
                f"{op} on a failed WalWriter in {self.directory}"
            )

    def append(self, event: str, params: Mapping[str, Any]) -> int:
        """Durably record one parametric event; returns its sequence number."""
        self._check_writable("append")
        if self._segment_entries >= self.segment_events:
            self._rotate()
        # The sequence counter commits only after the write lands: a
        # failed append must not consume a number, or the replacement
        # writer seeded from ``seq`` would leave a permanent gap that
        # poisons every future recovery read of the directory.
        seq = self.seq + 1
        symbol_for = self.registry.symbol_for
        entry = {
            "q": seq,
            "e": event,
            "p": {name: symbol_for(value) for name, value in params.items()},
        }
        self._write_record(entry, "append")
        self.seq = seq
        self._since_fsync += 1
        if self._since_fsync >= self.fsync_interval:
            self.sync()
        return self.seq

    def append_delivery(
        self, event: str, symbols: Mapping[str, str], plan: Any
    ) -> int:
        """Record one routed shard delivery for supervised crash recovery.

        ``symbols`` is the already-symbolized parameter binding and
        ``plan`` a JSON-safe encoding of the router's per-shard delivery
        plan — recovery replays the plan verbatim, bypassing the router,
        whose sticky state has moved on since the original routing.
        """
        self._check_writable("append_delivery")
        if self._segment_entries >= self.segment_events:
            self._rotate()
        seq = self.seq + 1
        entry = {"q": seq, "e": event, "p": dict(symbols), "d": plan}
        self._write_record(entry, "append")
        self.seq = seq
        self._since_fsync += 1
        if self._since_fsync >= self.fsync_interval:
            self.sync()
        return self.seq

    def append_deaths(self, symbols: "Sequence[str] | list[str]") -> int:
        """Record a batch of parameter deaths (retire broadcast) in order.

        Death positions matter for recovery exactness: a replayed shard
        must drop its tokens between the same two deliveries the live
        worker did, because verdict bindings omit dead parameters.
        """
        self._check_writable("append_deaths")
        if self._segment_entries >= self.segment_events:
            self._rotate()
        seq = self.seq + 1
        entry = {"q": seq, "x": list(symbols)}
        self._write_record(entry, "append")
        self.seq = seq
        self._since_fsync += 1
        if self._since_fsync >= self.fsync_interval:
            self.sync()
        return self.seq

    def append_registry_op(self, op: Mapping[str, Any]) -> int:
        """Durably record one property-registry operation in stream order.

        Registry ops (property add / remove / enable / disable) take a
        sequence number like events do, so recovery replays them at
        exactly the trace position they originally happened; they are
        fsynced immediately — a lost registry op would silently change the
        meaning of every event after it.
        """
        self._check_writable("append_registry_op")
        if self._segment_entries >= self.segment_events:
            self._rotate()
        seq = self.seq + 1
        entry = {"q": seq, "r": dict(op)}
        self._write_record(entry, "append")
        self.seq = seq
        self.sync()
        return self.seq

    def sync(self) -> None:
        """An explicit fsync point: everything appended so far is durable."""
        if self._handle is None:
            return
        try:
            if self._fault_hook is not None:
                self._fault_hook("sync")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            self._write_failed("sync", exc)
        self._since_fsync = 0
        self.fsyncs += 1

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- segments ------------------------------------------------------------

    def _open_segment(self) -> None:
        index = self._segment_index
        path = os.path.join(self.directory, _segment_name(index))
        try:
            self._handle = open(path, "a", encoding="utf-8")
            if self._handle.tell() == 0:
                header = {
                    "wal": WAL_VERSION, "segment": index, "first_seq": self.seq + 1,
                }
                self._handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        except OSError as exc:
            self._write_failed("rotate", exc)
        self._first_seqs[index] = self.seq + 1
        self._segment_entries = 0

    def _rotate(self) -> None:
        try:
            if self._fault_hook is not None:
                self._fault_hook("rotate")
        except OSError as exc:
            self._write_failed("rotate", exc)
        self.sync()
        self._handle.close()
        self._segment_index += 1
        self._open_segment()

    def prune(self, checkpoint_seq: int) -> list[str]:
        """Remove segments fully covered by a checkpoint at
        ``checkpoint_seq``; returns the removed paths.

        A segment is removable when a *later* segment starts at or before
        ``checkpoint_seq + 1`` — every entry recovery could need lives in
        the later segments.
        """
        segments = wal_segments(self.directory)
        removed = []
        for position, (index, path) in enumerate(segments[:-1]):
            next_index, next_path = segments[position + 1]
            next_first = self._first_seqs.get(next_index)
            if next_first is None:
                next_first = self._first_seq_of(next_path)
            if next_first is not None and next_first <= checkpoint_seq + 1:
                os.remove(path)
                removed.append(path)
                self._first_seqs.pop(index, None)
            else:
                break
        return removed

    @staticmethod
    def _first_seq_of(path: str) -> int | None:
        try:
            with open(path, encoding="utf-8") as handle:
                header = json.loads(handle.readline())
            return int(header["first_seq"])
        except (OSError, ValueError, KeyError, TypeError):
            return None


def repair_tail(directory: str) -> int:
    """Truncate a torn trailing line off the *last* WAL segment.

    Keeps **exactly** what :func:`iter_wal` would replay — a final line
    that decodes to a complete record counts even without its trailing
    newline (the crash hit between the payload and the ``\\n``); it is
    kept and the newline is restored.  Anything else past the last intact
    record is cut.  Returns how many bytes were removed.  Idempotent;
    called by :class:`WalWriter` before it opens a fresh segment on an
    existing directory, because readers only tolerate a torn tail while
    its segment is still the last one.
    """
    segments = wal_segments(directory)
    if not segments:
        return 0
    _index, path = segments[-1]
    good = 0
    missing_newline = False
    with open(path, "rb") as handle:
        for line_number, line in enumerate(handle):
            try:
                record = json.loads(line)
            except ValueError:
                break
            if line_number == 0:
                if not (isinstance(record, dict) and "wal" in record):
                    break
            elif not (
                isinstance(record, dict)
                and (
                    {"q", "e", "p"} <= record.keys()
                    or {"q", "r"} <= record.keys()
                    or {"q", "x"} <= record.keys()
                )
            ):
                break
            good += len(line)
            missing_newline = not line.endswith(b"\n")
    size = os.path.getsize(path)
    if good < size or missing_newline:
        with open(path, "r+b") as handle:
            handle.truncate(good)
            if missing_newline:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
    return size - good


def read_wal(
    directory: str, after_seq: int = 0
) -> list[tuple[str, dict[str, str]]]:
    """Entries with ``seq > after_seq``, ordered — the replay suffix.

    Tolerates a torn tail (truncated/corrupt trailing line of the *last*
    segment: the crash case); corruption anywhere else raises
    :class:`~repro.core.errors.PersistError`.
    """
    return [entry for _seq, entry in iter_wal(directory, after_seq)]


def iter_wal(
    directory: str, after_seq: int = 0
) -> Iterator[tuple[int, tuple[str, dict[str, str]]]]:
    """Like :func:`read_wal` but yielding ``(seq, (event, params))``.

    Registry-op records are skipped (their sequence numbers still
    participate in the gap check); use :func:`iter_wal_records` to see the
    full interleaved stream.
    """
    for seq, kind, payload in iter_wal_records(directory, after_seq):
        if kind == "event":
            yield seq, payload


def iter_wal_records(
    directory: str, after_seq: int = 0
) -> Iterator[tuple[int, str, Any]]:
    """The full WAL stream: ``(seq, kind, payload)`` triples in order.

    ``kind`` is ``"event"`` (payload ``(event, {param: symbol})``),
    ``"registry"`` (payload: the registry-op dict recorded by
    :meth:`WalWriter.append_registry_op`), ``"delivery"`` (payload
    ``(event, {param: symbol}, encoded plan)`` from
    :meth:`WalWriter.append_delivery` — the shard supervisor's journal
    records), or ``"deaths"`` (payload: the symbol list recorded by
    :meth:`WalWriter.append_deaths`).  Recovery consumes this form so
    property adds/removes — and supervised replays' retire points —
    replay at exactly the trace positions they originally happened.
    """
    segments = wal_segments(directory)
    last_index = segments[-1][0] if segments else None
    expected = None
    for index, path in segments:
        with open(path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                if line_number == 0:
                    # The final segment's header may itself be the torn
                    # tail (rotation writes it buffered): treat it as an
                    # empty tail segment rather than corruption.
                    header = _decode(line, path, 1, tolerate=index == last_index)
                    if header is None:
                        return
                    if header.get("wal") != WAL_VERSION:
                        raise PersistError(
                            f"{path}: unsupported WAL version {header.get('wal')!r}"
                        )
                    continue
                tolerate = index == last_index
                entry = _decode(line, path, line_number + 1, tolerate)
                if entry is None:
                    return  # torn tail: stop cleanly at the last fsynced state
                try:
                    seq = entry["q"]
                    if "r" in entry:
                        kind, payload = "registry", entry["r"]
                    elif "x" in entry:
                        kind, payload = "deaths", entry["x"]
                    elif "d" in entry:
                        kind, payload = "delivery", (entry["e"], entry["p"], entry["d"])
                    else:
                        kind, payload = "event", (entry["e"], entry["p"])
                except (KeyError, TypeError):
                    if tolerate:
                        return
                    raise PersistError(f"{path}:{line_number + 1}: malformed entry")
                if expected is not None and seq != expected:
                    raise PersistError(
                        f"{path}:{line_number + 1}: sequence gap (got {seq}, "
                        f"expected {expected})"
                    )
                expected = seq + 1
                if seq > after_seq:
                    yield seq, kind, payload


def _decode(line: str, path: str, line_number: int, tolerate: bool):
    try:
        return json.loads(line)
    except ValueError:
        if tolerate:
            return None
        raise PersistError(f"{path}:{line_number}: corrupt WAL line") from None
