"""The property library: the paper's ten properties + live-resource ones.

The five iterator-family properties drive the evaluation's tables; the
five non-iterator properties are the ones the paper reports as producing
under 5% overhead everywhere; the five live-resource properties
(:mod:`repro.properties.live_resources`) monitor real Python programs
through the live instrumentation layer.

:data:`CATALOGUE` is the **single source of truth** for what ships: every
property key, everywhere — the benchmark CLI's ``--properties``, live
sessions' key lookup, registry origin re-materialization, and the
documentation's property table (asserted against it in
``tests/docs/test_property_table.py``) — resolves through it.
"""

from .base import PaperProperty
from .iterators import HASNEXT, UNSAFEITER, UNSAFEMAPITER, UNSAFESYNCCOLL, UNSAFESYNCMAP
from .live_resources import (
    CURSORSAFE,
    EXECUTOR,
    LIVE_PROPERTIES,
    SOCKETUSE,
    TASKLOOP,
    TEMPDIR,
    LiveProperty,
)
from .locks_files import HASHSET, SAFEENUM, SAFEFILE, SAFEFILEWRITER, SAFELOCK
from .protocol import CONNREUSE, HANDLERLEAK, PROTOCOL_PROPERTIES, REQLIFE

#: The properties of Figures 9 and 10, in table order.
EVALUATED_PROPERTIES: tuple[PaperProperty, ...] = (
    HASNEXT,
    UNSAFEITER,
    UNSAFEMAPITER,
    UNSAFESYNCCOLL,
    UNSAFESYNCMAP,
)

#: The paper's ten properties (the shim-substrate ones), keyed by short name.
ALL_PROPERTIES: dict[str, PaperProperty] = {
    prop.key: prop
    for prop in (
        HASNEXT,
        UNSAFEITER,
        UNSAFEMAPITER,
        UNSAFESYNCCOLL,
        UNSAFESYNCMAP,
        SAFELOCK,
        SAFEENUM,
        SAFEFILE,
        SAFEFILEWRITER,
        HASHSET,
    )
}

#: The complete property catalogue — the single source of truth for every
#: shipped property key (paper substrate properties + live-resource ones +
#: the protocol-level properties of the app scenario suite).
CATALOGUE: "dict[str, PaperProperty | LiveProperty]" = {
    **ALL_PROPERTIES,
    **LIVE_PROPERTIES,
    **PROTOCOL_PROPERTIES,
}

def property_registry(keys: "tuple[str, ...] | list[str] | None" = None):
    """A :class:`~repro.spec.registry.PropertyRegistry` over the catalogue.

    Every selected property is compiled (silenced — registry consumers
    monitor programmatically) and registered under ``<key>:<formalism>``
    with a portable ``paper`` origin, so anything built from this registry
    can be checkpointed, recovered, and hot-reloaded by key.  ``keys``
    selects any subset of :data:`CATALOGUE`; the default is the paper's
    ten (the set the Figure 9/10 harness evaluates — live-resource
    properties are selected explicitly by key).  The benchmark CLI
    resolves its ``--properties`` flag through this registry.
    """
    from ..spec.registry import PropertyRegistry

    registry = PropertyRegistry()
    selected = list(ALL_PROPERTIES) if keys is None else list(keys)
    for key in selected:
        if key not in CATALOGUE:
            from ..core.errors import RegistryError

            raise RegistryError(
                f"unknown property key {key!r} (known: {sorted(CATALOGUE)})"
            )
        prop = CATALOGUE[key]
        for logic, compiled in enumerate(prop.make().silence().properties):
            registry.add(
                compiled,
                name=f"{key}:{compiled.formalism}",
                origin={"kind": "paper", "key": key, "logic": logic,
                        "silent": True},
            )
    return registry


__all__ = [
    "PaperProperty",
    "LiveProperty",
    "property_registry",
    "HASNEXT",
    "UNSAFEITER",
    "UNSAFEMAPITER",
    "UNSAFESYNCCOLL",
    "UNSAFESYNCMAP",
    "SAFELOCK",
    "SAFEENUM",
    "SAFEFILE",
    "SAFEFILEWRITER",
    "HASHSET",
    "SOCKETUSE",
    "TASKLOOP",
    "CURSORSAFE",
    "TEMPDIR",
    "EXECUTOR",
    "REQLIFE",
    "CONNREUSE",
    "HANDLERLEAK",
    "EVALUATED_PROPERTIES",
    "ALL_PROPERTIES",
    "LIVE_PROPERTIES",
    "PROTOCOL_PROPERTIES",
    "CATALOGUE",
]
