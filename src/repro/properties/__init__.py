"""The paper's property library (Section 5.1).

The five iterator-family properties drive the evaluation's tables; the
five non-iterator properties are the ones the paper reports as producing
under 5% overhead everywhere.
"""

from .base import PaperProperty
from .iterators import HASNEXT, UNSAFEITER, UNSAFEMAPITER, UNSAFESYNCCOLL, UNSAFESYNCMAP
from .locks_files import HASHSET, SAFEENUM, SAFEFILE, SAFEFILEWRITER, SAFELOCK

#: The properties of Figures 9 and 10, in table order.
EVALUATED_PROPERTIES: tuple[PaperProperty, ...] = (
    HASNEXT,
    UNSAFEITER,
    UNSAFEMAPITER,
    UNSAFESYNCCOLL,
    UNSAFESYNCMAP,
)

#: Every property shipped with the library, keyed by short name.
ALL_PROPERTIES: dict[str, PaperProperty] = {
    prop.key: prop
    for prop in (
        HASNEXT,
        UNSAFEITER,
        UNSAFEMAPITER,
        UNSAFESYNCCOLL,
        UNSAFESYNCMAP,
        SAFELOCK,
        SAFEENUM,
        SAFEFILE,
        SAFEFILEWRITER,
        HASHSET,
    )
}

__all__ = [
    "PaperProperty",
    "HASNEXT",
    "UNSAFEITER",
    "UNSAFEMAPITER",
    "UNSAFESYNCCOLL",
    "UNSAFESYNCMAP",
    "SAFELOCK",
    "SAFEENUM",
    "SAFEFILE",
    "SAFEFILEWRITER",
    "HASHSET",
    "EVALUATED_PROPERTIES",
    "ALL_PROPERTIES",
]
