"""The paper's property library (Section 5.1).

The five iterator-family properties drive the evaluation's tables; the
five non-iterator properties are the ones the paper reports as producing
under 5% overhead everywhere.
"""

from .base import PaperProperty
from .iterators import HASNEXT, UNSAFEITER, UNSAFEMAPITER, UNSAFESYNCCOLL, UNSAFESYNCMAP
from .locks_files import HASHSET, SAFEENUM, SAFEFILE, SAFEFILEWRITER, SAFELOCK

#: The properties of Figures 9 and 10, in table order.
EVALUATED_PROPERTIES: tuple[PaperProperty, ...] = (
    HASNEXT,
    UNSAFEITER,
    UNSAFEMAPITER,
    UNSAFESYNCCOLL,
    UNSAFESYNCMAP,
)

#: Every property shipped with the library, keyed by short name.
ALL_PROPERTIES: dict[str, PaperProperty] = {
    prop.key: prop
    for prop in (
        HASNEXT,
        UNSAFEITER,
        UNSAFEMAPITER,
        UNSAFESYNCCOLL,
        UNSAFESYNCMAP,
        SAFELOCK,
        SAFEENUM,
        SAFEFILE,
        SAFEFILEWRITER,
        HASHSET,
    )
}

def property_registry(keys: "tuple[str, ...] | list[str] | None" = None):
    """A :class:`~repro.spec.registry.PropertyRegistry` over the library.

    Every selected paper property is compiled (silenced — registry
    consumers monitor programmatically) and registered under
    ``<key>:<formalism>`` with a portable ``paper`` origin, so anything
    built from this registry can be checkpointed, recovered, and hot-
    reloaded by key.  ``keys`` selects a subset (default: all ten); the
    benchmark CLI resolves its ``--properties`` flag through this registry.
    """
    from ..spec.registry import PropertyRegistry

    registry = PropertyRegistry()
    selected = list(ALL_PROPERTIES) if keys is None else list(keys)
    for key in selected:
        if key not in ALL_PROPERTIES:
            from ..core.errors import RegistryError

            raise RegistryError(
                f"unknown property key {key!r} (known: {sorted(ALL_PROPERTIES)})"
            )
        prop = ALL_PROPERTIES[key]
        for logic, compiled in enumerate(prop.make().silence().properties):
            registry.add(
                compiled,
                name=f"{key}:{compiled.formalism}",
                origin={"kind": "paper", "key": key, "logic": logic,
                        "silent": True},
            )
    return registry


__all__ = [
    "PaperProperty",
    "property_registry",
    "HASNEXT",
    "UNSAFEITER",
    "UNSAFEMAPITER",
    "UNSAFESYNCCOLL",
    "UNSAFESYNCMAP",
    "SAFELOCK",
    "SAFEENUM",
    "SAFEFILE",
    "SAFEFILEWRITER",
    "HASHSET",
    "EVALUATED_PROPERTIES",
    "ALL_PROPERTIES",
]
