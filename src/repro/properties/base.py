"""Property-library plumbing.

Each paper property is a :class:`PaperProperty`: the RV-language
specification text plus a pointcut factory wiring its events onto the
monitored-program substrate of
:mod:`repro.instrument.collections_shim`.  ``make()`` compiles a *fresh*
:class:`~repro.spec.compiler.CompiledSpec` (so tests and benchmarks never
share handler registrations), and ``instrument(engine)`` weaves the
pointcuts and returns the :class:`~repro.instrument.aspects.Weaver` for
later un-weaving.

Event names are global observations, deliberately shared across
specifications where the observed program behavior is the same (e.g. the
``next`` of HASNEXT and of UNSAFEITER): one woven join point feeds every
specification that declares the event, exactly as one AspectJ advice feeds
every matching JavaMOP specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..instrument.aspects import Pointcut, Weaver
from ..runtime.engine import MonitoringEngine
from ..spec.compiler import CompiledSpec, compile_spec

__all__ = ["PaperProperty"]


@dataclass(frozen=True)
class PaperProperty:
    """One of the paper's monitored properties, ready to compile and weave."""

    key: str
    title: str
    spec_text: str
    pointcut_factory: Callable[[], list[Pointcut]]
    description: str

    def make(self) -> CompiledSpec:
        """Compile a fresh specification instance."""
        return compile_spec(self.spec_text)

    def pointcuts(self) -> list[Pointcut]:
        return self.pointcut_factory()

    def instrument(self, engine: MonitoringEngine, weaver: Weaver | None = None) -> Weaver:
        """Weave this property's events into the shim classes.

        Pass an existing ``weaver`` to co-instrument several properties
        through one weaver — required when properties share observations
        (the weaver deduplicates identical pointcuts so shared events are
        emitted once).
        """
        if weaver is None:
            weaver = Weaver(engine)
        return weaver.weave(self.pointcuts())

    def __str__(self) -> str:
        return self.title
