"""The five iterator-family properties of the paper's evaluation (Section 5.1).

HASNEXT, UNSAFEITER, UNSAFEMAPITER, UNSAFESYNCCOLL and UNSAFESYNCMAP —
"all properties in this evaluation are intended to monitor iterators" and
they are the ones that stress monitor garbage collection, because
iterators die young while their collections live on.
"""

from __future__ import annotations

from ..instrument.aspects import CallContext, Pointcut, after_returning, before
from ..instrument.collections_shim import (
    MonitoredCollection,
    MonitoredIterator,
    MonitoredMap,
    SynchronizedCollection,
    SynchronizedMap,
    SynchronizedMapView,
)
from .base import PaperProperty

__all__ = ["HASNEXT", "UNSAFEITER", "UNSAFEMAPITER", "UNSAFESYNCCOLL", "UNSAFESYNCMAP"]


# ---------------------------------------------------------------------------
# HASNEXT (Figures 1 and 2) — both formalisms, exactly as in the paper.
# ---------------------------------------------------------------------------

_HASNEXT_SPEC = """
HasNext(i) {
  event hasnexttrue(i)
  event hasnextfalse(i)
  event next(i)

  fsm:
    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    none    [ hasnextfalse -> none  next -> error ]
    error   [ ]
  @error "improper Iterator use found!"

  ltl: [](next => (*)hasnexttrue)
  @violation "improper Iterator use found!"
}
"""


def _hasnext_pointcuts() -> list[Pointcut]:
    return [
        after_returning(
            MonitoredIterator,
            "has_next",
            event="hasnexttrue",
            bind={"i": "target"},
            condition=lambda ctx: ctx.result is True,
        ),
        after_returning(
            MonitoredIterator,
            "has_next",
            event="hasnextfalse",
            bind={"i": "target"},
            condition=lambda ctx: ctx.result is False,
        ),
        before(MonitoredIterator, "next", event="next", bind={"i": "target"}),
    ]


HASNEXT = PaperProperty(
    key="hasnext",
    title="HASNEXT",
    spec_text=_HASNEXT_SPEC,
    pointcut_factory=_hasnext_pointcuts,
    description=(
        "Do not call next() on an Iterator without hasNext() having just "
        "returned true (the typestate of Figure 1)."
    ),
)


# ---------------------------------------------------------------------------
# UNSAFEITER (Figure 3).
# ---------------------------------------------------------------------------

_UNSAFEITER_SPEC = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)

  ere: update* create next* update+ next
  @match "improper Concurrent Modification found!"
}
"""


def _unsafeiter_pointcuts() -> list[Pointcut]:
    return [
        after_returning(
            MonitoredCollection,
            "iterator",
            event="create",
            bind={"c": "target", "i": "result"},
        ),
        before(MonitoredCollection, "add", event="update", bind={"c": "target"}),
        before(MonitoredCollection, "remove", event="update", bind={"c": "target"}),
        before(MonitoredCollection, "clear", event="update", bind={"c": "target"}),
        before(MonitoredIterator, "next", event="next", bind={"i": "target"}),
    ]


UNSAFEITER = PaperProperty(
    key="unsafeiter",
    title="UNSAFEITER",
    spec_text=_UNSAFEITER_SPEC,
    pointcut_factory=_unsafeiter_pointcuts,
    description=(
        "Do not update a Collection while iterating it: an Iterator used "
        "after its Collection changed is a concurrent-modification error."
    ),
)


# ---------------------------------------------------------------------------
# UNSAFEMAPITER — iterating a Map view while the Map is updated.
# ---------------------------------------------------------------------------

_UNSAFEMAPITER_SPEC = """
UnsafeMapIter(m, c, i) {
  event createcoll(m, c)
  event createiter(c, i)
  event updatemap(m)
  event useiter(i)

  ere: updatemap* createcoll updatemap* createiter useiter* updatemap+ useiter
  @match "improper Map iteration found!"
}
"""


def _unsafemapiter_pointcuts() -> list[Pointcut]:
    return [
        after_returning(
            MonitoredMap,
            "key_set",
            event="createcoll",
            bind={"m": "target", "c": "result"},
        ),
        after_returning(
            MonitoredMap,
            "values",
            event="createcoll",
            bind={"m": "target", "c": "result"},
        ),
        after_returning(
            MonitoredCollection,
            "iterator",
            event="createiter",
            bind={"c": "target", "i": "result"},
        ),
        before(MonitoredMap, "put", event="updatemap", bind={"m": "target"}),
        before(MonitoredMap, "remove", event="updatemap", bind={"m": "target"}),
        before(MonitoredMap, "clear", event="updatemap", bind={"m": "target"}),
        before(MonitoredIterator, "next", event="useiter", bind={"i": "target"}),
    ]


UNSAFEMAPITER = PaperProperty(
    key="unsafemapiter",
    title="UNSAFEMAPITER",
    spec_text=_UNSAFEMAPITER_SPEC,
    pointcut_factory=_unsafemapiter_pointcuts,
    description=(
        "Do not update a Map while iterating one of its key/value views "
        "(three parameters: map, view collection, iterator)."
    ),
)


# ---------------------------------------------------------------------------
# UNSAFESYNCCOLL — synchronized collections must be iterated under their lock.
# ---------------------------------------------------------------------------


def _is_unsynchronized_view(ctx: CallContext) -> bool:
    target = ctx.target
    return hasattr(target, "holds_lock") and not target.holds_lock()


def _is_synchronized_view(ctx: CallContext) -> bool:
    target = ctx.target
    return hasattr(target, "holds_lock") and target.holds_lock()


def _iterator_accessed_unsynchronized(ctx: CallContext) -> bool:
    source = ctx.target.source
    return hasattr(source, "holds_lock") and not source.holds_lock()


_UNSAFESYNCCOLL_SPEC = """
UnsafeSyncColl(c, i) {
  event sync(c)
  event asynciter(c, i)
  event synciter(c, i)
  event access(i)

  ere: sync (asynciter | synciter access)
  @match "unsynchronized Iterator on synchronized Collection!"
}
"""


def _unsafesynccoll_pointcuts() -> list[Pointcut]:
    return [
        after_returning(
            SynchronizedCollection,
            "__init__",
            event="sync",
            bind={"c": "target"},
        ),
        after_returning(
            SynchronizedCollection,
            "iterator",
            event="asynciter",
            bind={"c": "target", "i": "result"},
            condition=_is_unsynchronized_view,
        ),
        after_returning(
            SynchronizedCollection,
            "iterator",
            event="synciter",
            bind={"c": "target", "i": "result"},
            condition=_is_synchronized_view,
        ),
        before(
            MonitoredIterator,
            "next",
            event="access",
            bind={"i": "target"},
            condition=_iterator_accessed_unsynchronized,
        ),
    ]


UNSAFESYNCCOLL = PaperProperty(
    key="unsafesynccoll",
    title="UNSAFESYNCCOLL",
    spec_text=_UNSAFESYNCCOLL_SPEC,
    pointcut_factory=_unsafesynccoll_pointcuts,
    description=(
        "If a Collection is synchronized, its iterators must be created and "
        "accessed while holding the collection's lock."
    ),
)


# ---------------------------------------------------------------------------
# UNSAFESYNCMAP — same discipline for synchronized maps' key/value views.
# ---------------------------------------------------------------------------

_UNSAFESYNCMAP_SPEC = """
UnsafeSyncMap(m, c, i) {
  event syncmap(m)
  event createset(m, c)
  event asynciter(c, i)
  event synciter(c, i)
  event access(i)

  ere: syncmap createset (asynciter | synciter access)
  @match "unsynchronized Iterator on synchronized Map view!"
}
"""


def _unsafesyncmap_pointcuts() -> list[Pointcut]:
    return [
        after_returning(
            SynchronizedMap,
            "__init__",
            event="syncmap",
            bind={"m": "target"},
        ),
        after_returning(
            SynchronizedMap,
            "key_set",
            event="createset",
            bind={"m": "target", "c": "result"},
        ),
        after_returning(
            SynchronizedMap,
            "values",
            event="createset",
            bind={"m": "target", "c": "result"},
        ),
        after_returning(
            SynchronizedMapView,
            "iterator",
            event="asynciter",
            bind={"c": "target", "i": "result"},
            condition=_is_unsynchronized_view,
        ),
        after_returning(
            SynchronizedMapView,
            "iterator",
            event="synciter",
            bind={"c": "target", "i": "result"},
            condition=_is_synchronized_view,
        ),
        before(
            MonitoredIterator,
            "next",
            event="access",
            bind={"i": "target"},
            condition=_iterator_accessed_unsynchronized,
        ),
    ]


UNSAFESYNCMAP = PaperProperty(
    key="unsafesyncmap",
    title="UNSAFESYNCMAP",
    spec_text=_UNSAFESYNCMAP_SPEC,
    pointcut_factory=_unsafesyncmap_pointcuts,
    description=(
        "If a Map is synchronized, iterators over its key/value views must "
        "be created and accessed while holding the map's lock."
    ),
)
