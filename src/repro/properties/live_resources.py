"""Parametric properties over *real* Python resources.

Where :mod:`repro.properties.iterators` and
:mod:`repro.properties.locks_files` monitor the Java-collections substrate
of the paper's evaluation, the properties here monitor live Python
programs: sockets, asyncio tasks, DB cursors, temporary directories and
thread-pool executors.  They are the workloads the live instrumentation
layer (:mod:`repro.instrument.live`) exists for — the parameter objects
are real interpreter objects whose deaths the host garbage collector
reports through ``weakref`` callbacks.

Each property is a :class:`LiveProperty`: the specification text plus its
*default instrumentation* — class pointcuts where the resource's seams are
pure-Python classes (``socket.socket``, ``tempfile.TemporaryDirectory``,
``concurrent.futures.ThreadPoolExecutor``), or a ``weave_hook(session)``
where declarative pointcuts cannot express the hookup (asyncio task
completion callbacks).  Resources implemented in C (``sqlite3``) carry no
default weaving: their events come from user code annotated with
:func:`repro.instrument.live.emits` or woven with
:class:`~repro.instrument.live.TraceWeaver` — see
``examples/live_dbcursor_demo.py``.

Event names are prefixed per resource family so any subset of these
properties can be co-monitored in one engine without binding conflicts.
"""

from __future__ import annotations

import socket
import tempfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

from ..instrument.aspects import Pointcut, after_returning, before
from ..spec.compiler import CompiledSpec, compile_spec

__all__ = [
    "LiveProperty",
    "SOCKETUSE",
    "TASKLOOP",
    "CURSORSAFE",
    "TEMPDIR",
    "EXECUTOR",
    "LIVE_PROPERTIES",
]


@dataclass(frozen=True)
class LiveProperty:
    """One live-resource property, ready to compile and weave.

    Mirrors :class:`~repro.properties.base.PaperProperty` (``key`` /
    ``make()`` make it registry- and catalogue-compatible), but its
    instrumentation targets real interpreter objects: ``pointcut_factory``
    (optional) yields class pointcuts for pure-Python seams, and
    ``weave_hook`` (optional) receives the active
    :class:`~repro.instrument.live.LiveSession` for instrumentation that
    needs more than a declarative pointcut.
    """

    key: str
    title: str
    spec_text: str
    description: str
    pointcut_factory: Callable[[], list[Pointcut]] | None = None
    weave_hook: Callable[[Any], None] | None = None

    def make(self) -> CompiledSpec:
        """Compile a fresh specification instance."""
        return compile_spec(self.spec_text)

    def pointcuts(self) -> list[Pointcut]:
        """The default class pointcuts (empty for hook/user-code weaving)."""
        return self.pointcut_factory() if self.pointcut_factory is not None else []

    def __str__(self) -> str:
        return self.title


# ---------------------------------------------------------------------------
# SOCKETUSE — no socket I/O after close.
# ---------------------------------------------------------------------------

_SOCKETUSE_SPEC = """
SocketUse(s) {
  event sock_create(s)
  event sock_use(s)
  event sock_close(s)

  fsm:
    fresh  [ sock_create -> open ]
    open   [ sock_use -> open  sock_close -> closed ]
    closed [ sock_close -> closed  sock_use -> error ]
    error  [ ]
  @error "socket used after close!"
}
"""


def _socketuse_pointcuts() -> list[Pointcut]:
    return [
        after_returning(socket.socket, "__init__", event="sock_create",
                        bind={"s": "target"}),
        before(socket.socket, "send", event="sock_use", bind={"s": "target"}),
        before(socket.socket, "sendall", event="sock_use", bind={"s": "target"}),
        before(socket.socket, "recv", event="sock_use", bind={"s": "target"}),
        before(socket.socket, "close", event="sock_close", bind={"s": "target"}),
    ]


SOCKETUSE = LiveProperty(
    key="socketuse",
    title="SOCKETUSE",
    spec_text=_SOCKETUSE_SPEC,
    pointcut_factory=_socketuse_pointcuts,
    description=(
        "Do not send/recv on a socket after close() — the typestate a "
        "closed file descriptor enforces with an OSError at runtime."
    ),
)


# ---------------------------------------------------------------------------
# TASKLOOP — every spawned asyncio task completes before its loop closes.
# ---------------------------------------------------------------------------

_TASKLOOP_SPEC = """
TaskLoop(l, t) {
  event task_spawn(l, t)
  event task_done(t)
  event task_cancelled(t)
  event loop_close(l)

  ere: task_spawn task_cancelled* loop_close
  @match "task abandoned: never completed before its event loop closed!"
}
"""


def _weave_taskloop(session: Any) -> None:
    """Patch the event-loop seams (create_task / close) for one session.

    ``create_task`` is the single funnel every task construction flows
    through (``asyncio.create_task``, ``ensure_future``, ``gather``), and
    completion is observed with a per-task done callback — exactly the
    instrumentation a declarative pointcut cannot express, hence a weave
    hook.  Cancelled completions are distinguished so the abandoned-task
    pattern survives ``asyncio.run``'s cancel-pending-tasks shutdown.
    """
    import asyncio.base_events as base_events

    def around_create_task(original, loop, coro, **kwargs):
        task = original(loop, coro, **kwargs)
        session.emit("task_spawn", l=loop, t=task)

        def on_done(finished):
            session.emit(
                "task_cancelled" if finished.cancelled() else "task_done",
                t=finished,
            )

        task.add_done_callback(on_done)
        return task

    def around_close(original, loop):
        session.emit("loop_close", l=loop)
        return original(loop)

    session.patch_method(base_events.BaseEventLoop, "create_task", around_create_task)
    session.patch_method(base_events.BaseEventLoop, "close", around_close)


TASKLOOP = LiveProperty(
    key="taskloop",
    title="TASKLOOP",
    spec_text=_TASKLOOP_SPEC,
    description=(
        "Every asyncio task spawned on a loop must run to completion "
        "before the loop closes; a task still pending (or killed by the "
        "shutdown cancellation sweep) was fire-and-forgotten."
    ),
    weave_hook=_weave_taskloop,
)


# ---------------------------------------------------------------------------
# CURSORSAFE — no execute on a closed DB cursor / closed connection.
# ---------------------------------------------------------------------------

_CURSORSAFE_SPEC = """
CursorSafe(c, k) {
  event cur_open(c, k)
  event cur_exec(k)
  event cur_close(k)
  event conn_close(c)

  fsm:
    fresh [ cur_open -> live ]
    live  [ cur_exec -> live  cur_close -> dead  conn_close -> dead ]
    dead  [ cur_close -> dead  conn_close -> dead  cur_exec -> error ]
    error [ ]
  @error "cursor executed after close (cursor or its connection)!"
}
"""


CURSORSAFE = LiveProperty(
    key="cursorsafe",
    title="CURSORSAFE",
    spec_text=_CURSORSAFE_SPEC,
    description=(
        "Do not execute on a DB cursor after the cursor — or the "
        "connection that produced it — was closed.  sqlite3's classes are "
        "C types, so events come from user-code weaving (emits decorators "
        "or TraceWeaver function pointcuts on the data-access layer)."
    ),
)


# ---------------------------------------------------------------------------
# TEMPDIR — no use (or second cleanup) of a cleaned-up TemporaryDirectory.
# ---------------------------------------------------------------------------

_TEMPDIR_SPEC = """
TempDirSafe(d) {
  event dir_create(d)
  event dir_use(d)
  event dir_cleanup(d)

  fsm:
    fresh [ dir_create -> live ]
    live  [ dir_use -> live  dir_cleanup -> done ]
    done  [ dir_use -> error  dir_cleanup -> error ]
    error [ ]
  @error "temporary directory used (or cleaned up) after cleanup!"
}
"""


def _tempdir_pointcuts() -> list[Pointcut]:
    return [
        after_returning(tempfile.TemporaryDirectory, "__init__",
                        event="dir_create", bind={"d": "target"}),
        before(tempfile.TemporaryDirectory, "cleanup", event="dir_cleanup",
               bind={"d": "target"}),
    ]


TEMPDIR = LiveProperty(
    key="tempdir",
    title="TEMPDIR",
    spec_text=_TEMPDIR_SPEC,
    pointcut_factory=_tempdir_pointcuts,
    description=(
        "A TemporaryDirectory must not be resolved into paths (dir_use, "
        "emitted by user code) or cleaned up again after cleanup() ran — "
        "the with-statement exit counts as cleanup."
    ),
)


# ---------------------------------------------------------------------------
# EXECUTOR — no submit to a shut-down ThreadPoolExecutor.
# ---------------------------------------------------------------------------

_EXECUTOR_SPEC = """
ExecutorSafe(x) {
  event exec_create(x)
  event exec_submit(x)
  event exec_shutdown(x)

  fsm:
    fresh [ exec_create -> live ]
    live  [ exec_submit -> live  exec_shutdown -> down ]
    down  [ exec_shutdown -> down  exec_submit -> error ]
    error [ ]
  @error "work submitted to a shut-down executor!"
}
"""


def _executor_pointcuts() -> list[Pointcut]:
    return [
        after_returning(ThreadPoolExecutor, "__init__", event="exec_create",
                        bind={"x": "target"}),
        before(ThreadPoolExecutor, "submit", event="exec_submit",
               bind={"x": "target"}),
        before(ThreadPoolExecutor, "shutdown", event="exec_shutdown",
               bind={"x": "target"}),
    ]


EXECUTOR = LiveProperty(
    key="executor",
    title="EXECUTOR",
    spec_text=_EXECUTOR_SPEC,
    pointcut_factory=_executor_pointcuts,
    description=(
        "Do not submit work to a ThreadPoolExecutor after shutdown() — "
        "including the implicit shutdown of a with-statement exit."
    ),
)


#: The live-resource properties, keyed by short name (catalogue order).
LIVE_PROPERTIES: dict[str, LiveProperty] = {
    prop.key: prop
    for prop in (SOCKETUSE, TASKLOOP, CURSORSAFE, TEMPDIR, EXECUTOR)
}
