"""The non-iterator properties: SAFELOCK, SAFEENUM, SAFEFILE,
SAFEFILEWRITER and HASHSET.

SAFELOCK (Figure 4) is the paper's context-free example — balanced
``acquire``/``release`` nested properly within method ``begin``/``end``
boundaries, per (Lock, Thread) pair; the others come from the evaluation's
"several non-Iterator based properties" list (Section 5.1), which the paper
reports as producing under 5% overhead everywhere.
"""

from __future__ import annotations

from ..instrument.aspects import Pointcut, after_returning, before
from ..instrument.collections_shim import (
    HashedObject,
    MethodBody,
    MonitoredCollection,
    MonitoredFile,
    MonitoredHashSet,
    MonitoredIterator,
    MonitoredLock,
)
from .base import PaperProperty

__all__ = ["SAFELOCK", "SAFEENUM", "SAFEFILE", "SAFEFILEWRITER", "HASHSET"]


# ---------------------------------------------------------------------------
# SAFELOCK (Figure 4) — the CFG plugin.
# ---------------------------------------------------------------------------

_SAFELOCK_SPEC = """
SafeLock(l, t) {
  event acquire(l, t)
  event release(l, t)
  event begin(t)
  event end(t)

  cfg: S -> S begin S end | S acquire S release | epsilon
  @fail "improper Lock use found!"
}
"""


def _safelock_pointcuts() -> list[Pointcut]:
    return [
        before(
            MonitoredLock,
            "acquire",
            event="acquire",
            bind={"l": "target", "t": "thread"},
        ),
        before(
            MonitoredLock,
            "release",
            event="release",
            bind={"l": "target", "t": "thread"},
        ),
        before(MethodBody, "enter", event="begin", bind={"t": "thread"}),
        before(MethodBody, "exit", event="end", bind={"t": "thread"}),
    ]


SAFELOCK = PaperProperty(
    key="safelock",
    title="SAFELOCK",
    spec_text=_SAFELOCK_SPEC,
    pointcut_factory=_safelock_pointcuts,
    description=(
        "acquire()/release() calls on each Lock must balance and nest "
        "properly within method begin/end boundaries, per thread (CFG)."
    ),
)


# ---------------------------------------------------------------------------
# SAFEENUM — do not use an Enumeration after its Vector changed.
# ---------------------------------------------------------------------------

_SAFEENUM_SPEC = """
SafeEnum(v, e) {
  event createenum(v, e)
  event updatesource(v)
  event nextelem(e)

  ere: createenum nextelem* updatesource+ nextelem
  @match "Enumeration used after Vector update!"
}
"""


def _safeenum_pointcuts() -> list[Pointcut]:
    return [
        after_returning(
            MonitoredCollection,
            "elements",
            event="createenum",
            bind={"v": "target", "e": "result"},
        ),
        before(MonitoredCollection, "add", event="updatesource", bind={"v": "target"}),
        before(MonitoredCollection, "remove", event="updatesource", bind={"v": "target"}),
        before(MonitoredCollection, "clear", event="updatesource", bind={"v": "target"}),
        before(MonitoredIterator, "next", event="nextelem", bind={"e": "target"}),
    ]


SAFEENUM = PaperProperty(
    key="safeenum",
    title="SAFEENUM",
    spec_text=_SAFEENUM_SPEC,
    pointcut_factory=_safeenum_pointcuts,
    description="Do not advance an Enumeration after its Vector was updated.",
)


# ---------------------------------------------------------------------------
# SAFEFILE — open before read/write, never touch a closed file.
# ---------------------------------------------------------------------------

_SAFEFILE_SPEC = """
SafeFile(f) {
  event open(f)
  event read(f)
  event write(f)
  event close(f)

  ere: (open (read | write)* close)*
  @fail "improper File use found!"
}
"""


def _safefile_pointcuts() -> list[Pointcut]:
    return [
        before(MonitoredFile, "open", event="open", bind={"f": "target"}),
        before(MonitoredFile, "read", event="read", bind={"f": "target"}),
        before(MonitoredFile, "write", event="write", bind={"f": "target"}),
        before(MonitoredFile, "close", event="close", bind={"f": "target"}),
    ]


SAFEFILE = PaperProperty(
    key="safefile",
    title="SAFEFILE",
    spec_text=_SAFEFILE_SPEC,
    pointcut_factory=_safefile_pointcuts,
    description=(
        "Every read/write must happen between open and close; the verdict "
        "fails on use-after-close or use-before-open."
    ),
)


# ---------------------------------------------------------------------------
# SAFEFILEWRITER — writes only between open and close.
# ---------------------------------------------------------------------------

_SAFEFILEWRITER_SPEC = """
SafeFileWriter(w) {
  event open(w)
  event write(w)
  event close(w)

  ere: (open write* close)*
  @fail "improper FileWriter use found!"
}
"""


def _safefilewriter_pointcuts() -> list[Pointcut]:
    return [
        before(MonitoredFile, "open", event="open", bind={"w": "target"}),
        before(MonitoredFile, "write", event="write", bind={"w": "target"}),
        before(MonitoredFile, "close", event="close", bind={"w": "target"}),
    ]


SAFEFILEWRITER = PaperProperty(
    key="safefilewriter",
    title="SAFEFILEWRITER",
    spec_text=_SAFEFILEWRITER_SPEC,
    pointcut_factory=_safefilewriter_pointcuts,
    description="A FileWriter may only write between open and close.",
)


# ---------------------------------------------------------------------------
# HASHSET — do not mutate an object's hash while it sits in a hash set.
# ---------------------------------------------------------------------------

_HASHSET_SPEC = """
HashSet(s, o) {
  event add(s, o)
  event mutate(o)
  event find(s, o)

  ere: add mutate+ find
  @match "object mutated while in HashSet!"
}
"""


def _hashset_pointcuts() -> list[Pointcut]:
    return [
        before(
            MonitoredHashSet,
            "add",
            event="add",
            bind={"s": "target", "o": "arg0"},
        ),
        before(HashedObject, "mutate", event="mutate", bind={"o": "target"}),
        before(
            MonitoredHashSet,
            "contains",
            event="find",
            bind={"s": "target", "o": "arg0"},
        ),
        before(
            MonitoredHashSet,
            "remove",
            event="find",
            bind={"s": "target", "o": "arg0"},
        ),
    ]


HASHSET = PaperProperty(
    key="hashset",
    title="HASHSET",
    spec_text=_HASHSET_SPEC,
    pointcut_factory=_hashset_pointcuts,
    description=(
        "Looking up an object whose hash changed after insertion will miss "
        "it; flags add → mutate → find sequences."
    ),
)
