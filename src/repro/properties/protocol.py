"""Protocol-level parametric properties over a live HTTP server.

Where :mod:`repro.properties.live_resources` monitors generic interpreter
resources (sockets, tasks, cursors, tempdirs, executors), the properties
here monitor *application protocol discipline* — the invariants an HTTP
server must keep per request and per connection.  They are the
specification side of the heavy-traffic scenario suite: the reference
application in :mod:`repro.app` is woven **unmodified** (function
pointcuts on its parsing/response seams, see ``src/repro/app/weave.py``)
and these properties are checked online while a seeded load driver holds
thousands of concurrent connections open.

The parameter objects are real interpreter objects of the running server
(`repro.app.server.Request` / `Connection` instances and the handler
``asyncio.Task`` objects), so the monitor-GC story is exactly the paper's:
a request object dying at the end of its exchange is what retires its
lifecycle monitor.

Event names are prefixed per family (``req_*``, ``resp_*``, ``task_*`` /
``conn_end``) so any subset of these properties co-monitors with the
resource catalogue without binding conflicts (the live-resource
``conn_close`` of CURSORSAFE names a *database* connection and stays
distinct from ``conn_end`` here).

None of the three carries default weaving: the events come from
:func:`repro.app.weave.app_pointcuts`, or from any other program that
chooses to emit the same protocol alphabet.
"""

from __future__ import annotations

from .live_resources import LiveProperty

__all__ = [
    "REQLIFE",
    "CONNREUSE",
    "HANDLERLEAK",
    "PROTOCOL_PROPERTIES",
]


# ---------------------------------------------------------------------------
# REQLIFE — request lifecycle ordering per request id.
# ---------------------------------------------------------------------------

_REQLIFE_SPEC = """
ReqLife(r) {
  event req_start(r)
  event req_headers(r)
  event req_body(r)
  event req_close(r)

  fsm:
    fresh   [ req_start -> started ]
    started [ req_headers -> headed  req_close -> closed
              req_start -> error  req_body -> error ]
    headed  [ req_body -> headed  req_close -> closed
              req_start -> error  req_headers -> error ]
    closed  [ req_start -> error  req_headers -> error
              req_body -> error  req_close -> error ]
    error   [ ]
  @error "request lifecycle order violated (or request finished twice)!"
}
"""


REQLIFE = LiveProperty(
    key="reqlife",
    title="REQLIFE",
    spec_text=_REQLIFE_SPEC,
    description=(
        "Every request advances start -> headers -> body* -> close, once: "
        "no body before headers, no events after close, no double close.  "
        "Aborting after start or headers (client disconnect, read timeout) "
        "is a legal early close."
    ),
)


# ---------------------------------------------------------------------------
# CONNREUSE — keep-alive reuse discipline: one response at a time.
# ---------------------------------------------------------------------------

_CONNREUSE_SPEC = """
ConnReuse(c) {
  event resp_start(c)
  event resp_end(c)

  fsm:
    fresh [ resp_start -> busy  resp_end -> error ]
    busy  [ resp_end -> idle  resp_start -> error ]
    idle  [ resp_start -> busy  resp_end -> error ]
    error [ ]
  @error "interleaved or unmatched responses on one connection!"
}
"""


CONNREUSE = LiveProperty(
    key="connreuse",
    title="CONNREUSE",
    spec_text=_CONNREUSE_SPEC,
    description=(
        "On a keep-alive connection responses must strictly alternate "
        "start/end: starting a second response before the previous one "
        "ended interleaves bytes of two exchanges on one socket."
    ),
)


# ---------------------------------------------------------------------------
# HANDLERLEAK — every tracked handler task retired before its connection ends.
# ---------------------------------------------------------------------------

_HANDLERLEAK_SPEC = """
HandlerLeak(c, t) {
  event task_track(c, t)
  event task_retire(t)
  event conn_end(c)

  ere: task_track conn_end
  @match "connection closed with a handler task still running!"
}
"""


HANDLERLEAK = LiveProperty(
    key="handlerleak",
    title="HANDLERLEAK",
    spec_text=_HANDLERLEAK_SPEC,
    description=(
        "A task spawned on behalf of a connection must complete "
        "(task_retire) before that connection ends; a connection closing "
        "with the pair still in its tracked state is a leaked handler — "
        "the TASKLOOP shape, at per-connection granularity."
    ),
)


#: The protocol-level properties, keyed by short name (catalogue order).
PROTOCOL_PROPERTIES: dict[str, LiveProperty] = {
    prop.key: prop for prop in (REQLIFE, CONNREUSE, HANDLERLEAK)
}
