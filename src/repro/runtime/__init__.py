"""The RV runtime: weak-keyed indexing trees, lazy monitor GC, dispatch."""

from .engine import SYSTEMS, MonitoringEngine, PropertyRuntime
from .gc_strategies import (
    STRATEGY_NAMES,
    AllParamsDead,
    CoenableGc,
    GcStrategy,
    NoGc,
    StateBasedGc,
    make_strategy,
)
from .indexing import IndexingTree, JoinIndex, Leaf
from .instance import MonitorInstance
from .refs import ParamRef
from .rvmap import RVMap
from .rvset import RVSet
from .statistics import MonitorStats
from .tracelog import ReplayToken, TraceRecorder, replay

__all__ = [
    "SYSTEMS",
    "MonitoringEngine",
    "PropertyRuntime",
    "STRATEGY_NAMES",
    "AllParamsDead",
    "CoenableGc",
    "GcStrategy",
    "NoGc",
    "StateBasedGc",
    "make_strategy",
    "IndexingTree",
    "JoinIndex",
    "Leaf",
    "MonitorInstance",
    "ParamRef",
    "RVMap",
    "RVSet",
    "MonitorStats",
    "ReplayToken",
    "TraceRecorder",
    "replay",
]
