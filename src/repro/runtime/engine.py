"""The monitoring engine: event dispatch, monitor creation, and lazy GC.

This is the production counterpart of the abstract Algorithm MONITOR
(Figure 5), engineered as in Section 4 of the paper:

* **Indexing trees** (Figure 6): per event-parameter-subset trees locate, in
  a couple of weak-map lookups, every monitor instance more informative
  than the event's binding.
* **Compiled dispatch** (the default): every ``(property, event)`` pair is
  specialized at property-compile time into a
  :class:`~repro.spec.dispatch.DispatchPlan` — interned event ids, slot
  indices so hot-path bindings are plain value tuples in tree order, the
  complete creation/join strategy, and validity checks as static
  ``(tree, extraction)`` lists.  Finite-state formalisms step through flat
  :class:`~repro.formalism.fsm.FSMTable` rows — two array reads per monitor
  per event.  Rich :class:`~repro.core.params.Binding` objects appear only
  at creation and verdict boundaries.  ``dispatch="reference"`` selects the
  retained dict-based interpretation of the same semantics; the
  dispatch-equivalence suite asserts both produce identical verdicts.
* **Enable-set creation pruning** (Chen et al., ASE'09; the companion of
  coenable sets): a monitor for a new parameter instance is created only if
  the *knowledge* it would start from — the maximal defined sub-instance,
  or a compatible instance found through a join index — has a parameter
  domain in the event's ENABLE set.  A "touched bindings" record (the
  role JavaMOP's disable timestamps play) makes skipping sound: a creation
  that would silently lose previously-skipped events is suppressed, because
  such a slice provably cannot reach the goal.
* **Lazy monitor GC** (Section 4.2): RVMaps detect dead parameter keys
  while being accessed, notify the monitors below, the GC strategy decides
  necessity via ALIVENESS/state formulas, unnecessary monitors are flagged,
  and flagged monitors are physically dropped when the structures holding
  them are next touched.  A monitor is reclaimed by the host GC when the
  last structure lets go — counted via ``weakref.finalize`` as the paper's
  CM column.

``propagation="eager"`` switches to the eager scheme the paper warns about
(Section 4.2: "eager garbage collection ... introduces a very large amount
of runtime overhead"): parameter deaths are coalesced per event boundary
and propagated *before* the next event.  The propagation is targeted — only
the indexing trees whose domain contains a dead parameter's position are
rescanned, and only the buckets of the known-dead ids; monitors flagged by
the propagation are evicted from every remaining structure immediately
(the Tracematches cost profile, minus the full-scan pathology).
``propagation="eager_full"`` keeps the historical full-scan-per-boundary
behavior for the ablation benchmark.

The property set is **dynamic**: the engine consumes a versioned
:class:`~repro.spec.registry.PropertyRegistry` (built implicitly from the
constructor's specs) and supports hot load/unload at event boundaries —
:meth:`MonitoringEngine.attach_property` compiles a fresh dispatch plan
into a fresh slot, :meth:`MonitoringEngine.detach_property` quiesces a
runtime, folds its statistics into the engine totals, and releases its
indexing structures; removal tombstones the slot so indexes held by the
sharded service's routing layer stay valid.
"""

from __future__ import annotations

import threading
import weakref
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.errors import InconsistentEventError, RegistryError, UnknownEventError
from ..core.params import Binding
from ..obs.catalogue import declare as _declare_metric
from ..obs.telemetry import Telemetry, as_telemetry
from ..spec.compiler import CompiledProperty, CompiledSpec
from ..spec.dispatch import DispatchPlan
from ..spec.registry import PropertyRegistry, normalize_properties
from .gc_strategies import GcStrategy, make_strategy
from .indexing import IndexingTree, JoinIndex, Leaf
from .instance import MonitorInstance
from .refs import ParamRef
from .statistics import MonitorStats

__all__ = ["MonitoringEngine", "PropertyRuntime", "SYSTEMS"]

#: Named system presets mapping to (gc strategy, propagation) — the three
#: systems of the paper's evaluation (Section 5).
SYSTEMS: dict[str, tuple[str, str]] = {
    "rv": ("coenable", "lazy"),
    "mop": ("alldead", "lazy"),
    "tm": ("statebased", "eager"),
    "none": ("none", "lazy"),
}

#: Propagation regimes: the paper's lazy design, targeted eager, and the
#: historical full-scan eager (ablation only).
PROPAGATIONS = ("lazy", "eager", "eager_full")

#: Verdict callback signature: (property, category, monitor instance).
VerdictCallback = Callable[[CompiledProperty, str, MonitorInstance], None]


class _CreationPlan:
    """Static per-event creation strategy for the *reference* dispatch path.

    ``self_domains`` — enable domains ``K ⊊ D(e)``, largest first: the
    defineTo sources among sub-instances of the event binding.
    ``allows_fresh`` — whether ``∅`` is an enable domain (the event can open
    a goal trace, so it may create a monitor from scratch).
    ``joins`` — ``(K, key_domain, index)`` triples for enable domains
    incomparable with ``D(e)``: instances of domain ``K`` compatible with
    the event join into instances of domain ``K ∪ D(e)``.

    The compiled path precomputes the same strategy (plus slot extractions)
    in :mod:`repro.spec.dispatch`.
    """

    __slots__ = ("self_domains", "allows_fresh", "joins")

    def __init__(self) -> None:
        self.self_domains: list[frozenset[str]] = []
        self.allows_fresh = False
        self.joins: list[tuple[frozenset[str], tuple[str, ...], JoinIndex]] = []


class _ResolvedCheck:
    """A creation-validity probe bound to its tree."""

    __slots__ = ("domain", "tree", "extract")

    def __init__(self, domain: frozenset, tree: IndexingTree, extract: tuple[int, ...]):
        self.domain = domain
        self.tree = tree
        self.extract = extract


class _ResolvedSource:
    """A defineTo source domain bound to its tree."""

    __slots__ = ("tree", "extract", "checks")

    def __init__(self, tree, extract, checks):
        self.tree = tree
        self.extract = extract
        self.checks = checks


class _ResolvedInsert:
    """Registration schedule for freshly created monitors of one domain."""

    __slots__ = ("params", "own_tree", "own_is_event_domain", "ext_entries", "join_entries")

    def __init__(self, params, own_tree, own_is_event_domain, ext_entries, join_entries):
        self.params = params
        self.own_tree = own_tree
        self.own_is_event_domain = own_is_event_domain
        self.ext_entries = ext_entries
        self.join_entries = join_entries


class _ResolvedJoin:
    """A join plan bound to its index, target tree and insert schedule."""

    __slots__ = (
        "join_domain",
        "join_params",
        "index",
        "key_extract",
        "target_tree",
        "merge",
        "checks",
        "check_target",
        "insert",
    )

    def __init__(self, join_domain, join_params, index, key_extract, target_tree, merge, checks, check_target, insert):
        self.join_domain = join_domain
        self.join_params = join_params
        self.index = index
        self.key_extract = key_extract
        self.target_tree = target_tree
        self.merge = merge
        self.checks = checks
        self.check_target = check_target
        self.insert = insert


class _EventDispatch:
    """One event's fully resolved fast-path strategy."""

    __slots__ = (
        "event",
        "event_id",
        "domain",
        "params",
        "tree",
        "self_sources",
        "allows_fresh",
        "fresh_checks",
        "joins",
        "has_creation",
        "check_event_leaf",
        "insert",
    )

    def __init__(self, event, event_id, domain, params, tree):
        self.event = event
        self.event_id = event_id
        self.domain = domain
        self.params = params
        self.tree = tree
        self.self_sources: tuple[_ResolvedSource, ...] = ()
        self.allows_fresh = False
        self.fresh_checks: tuple[_ResolvedCheck, ...] = ()
        self.joins: tuple[_ResolvedJoin, ...] = ()
        self.has_creation = False
        self.check_event_leaf = True
        self.insert: _ResolvedInsert | None = None


class PropertyRuntime:
    """Everything the engine maintains for one compiled property."""

    #: Disabled runtimes keep their state but receive no events (the engine
    #: drops them from its event index and the selected-dispatch paths).
    enabled = True

    def __init__(
        self,
        prop: CompiledProperty,
        gc: str,
        scan_budget: int,
        on_verdict: VerdictCallback | None,
        on_param_registered: Callable[[str, Any], None] | None,
        dispatch: str = "compiled",
        slot: int = -1,
        telemetry: "Telemetry | None" = None,
        provenance_get: Callable[[], Any] | None = None,
        attribution: Any = None,
    ):
        self.prop = prop
        self.slot = slot
        self._provenance_get = provenance_get
        self.stats = MonitorStats()
        self.strategy: GcStrategy = make_strategy(gc, prop)
        self._on_verdict = on_verdict
        self._on_param_registered = on_param_registered
        self._serial = 0
        self._event_serial = 0
        #: Collector of monitors flagged during a targeted eager purge
        #: (None outside :meth:`collect_deaths`).
        self._flag_sink: list[MonitorInstance] | None = None

        definition = prop.definition
        plan: DispatchPlan = prop.dispatch_plan()
        self.plan = plan
        self.event_domains: dict[str, frozenset[str]] = {
            event: definition.params_of(event) for event in definition.alphabet
        }
        self._event_domain_set = set(self.event_domains.values())
        self._enable_domains: dict[str, frozenset[frozenset[str]]] = dict(
            prop.param_enable
        )
        self.monitor_domains = prop.monitor_domains()
        # One tree per domain of interest; extensions are tracked only where
        # dispatch needs them (domains that are some event's D(e)).
        self.trees: dict[frozenset[str], IndexingTree] = {}
        for domain in self.monitor_domains | self._event_domain_set:
            self.trees[domain] = IndexingTree(
                params=tuple(sorted(domain)),
                tracks_extensions=domain in self._event_domain_set,
                notify=self._notify_monitor,
                scan_budget=scan_budget,
            )
        # Join indices are statically known (the compiled plan lists them);
        # both dispatch paths share the same structures.
        self._join_indices: dict[tuple[frozenset[str], frozenset[str]], JoinIndex] = {
            (join_domain, key_domain): JoinIndex(
                key_params=tuple(sorted(key_domain)),
                notify=self._notify_monitor,
                scan_budget=scan_budget,
            )
            for join_domain, key_domain in plan.join_index_keys
        }
        self._plans: dict[str, _CreationPlan] = {
            event: self._build_plan(event) for event in definition.alphabet
        }
        # Flat-table stepping for finite-state formalisms (two array reads
        # per monitor per event); None → virtual BaseMonitor.step.
        fsm = prop.fsm_dispatch()
        if fsm is not None:
            self._fsm_rows, self._fsm_goal, self._fsm_verdicts = fsm
        else:
            self._fsm_rows = self._fsm_goal = self._fsm_verdicts = None
        self._dispatch = self._resolve_dispatch(plan)
        #: Keeps the generated kernels' collection-watch weak references
        #: alive until their monitors are reclaimed (the codegen stand-in
        #: for ``weakref.finalize``'s global registry).
        self._collection_refs: set[Any] = set()
        #: Generated per-event kernels (codegen dispatch only; empty dicts
        #: otherwise so the engine's batch fast path can probe cheaply).
        self._kernels: dict[str, Any] = {}
        self._batch_kernels: dict[str, Any] = {}
        self._kernel_module = None
        if dispatch == "compiled":
            self.handle = self._handle_compiled  # type: ignore[method-assign]
        elif dispatch == "codegen":
            from ..spec.codegen import bind_kernels

            kernels, batch_kernels, module = bind_kernels(self)
            self._kernels = kernels
            self._batch_kernels = batch_kernels
            self._kernel_module = module

            def _codegen_handle(
                event, values, record=True, pretouched=None, _kernels=kernels
            ):
                return _kernels[event](values, record, pretouched)

            self.handle = _codegen_handle  # type: ignore[method-assign]
        else:
            self.handle = self._handle_reference  # type: ignore[method-assign]
        #: The raw (unwrapped) handle: the engine's codegen batch fast path
        #: may only call kernels directly while ``handle`` is still this
        #: object — telemetry/attribution wrappers must not be bypassed.
        self._unwrapped_handle = self.handle
        # Telemetry interposes on the per-instance entry points only when
        # enabled: with telemetry=None (the default) every hot path above
        # is byte-identical to the un-instrumented build.  Attribution
        # wraps first (closest to the raw handle) so the sampled latency
        # timer above it still brackets the whole call.
        if attribution is not None:
            self._wire_attribution(attribution, dispatch in ("compiled", "codegen"))
        if telemetry is not None:
            self._wire_telemetry(telemetry)

    def _wire_telemetry(self, telemetry: "Telemetry") -> None:
        """Wrap the hot entry points with exact counters and sampled timers.

        ``handle`` gains an exact per-property handled counter plus a
        1-in-N sampled latency histogram labelled (property, event);
        ``collect_deaths`` gains a sampled purge timer (death boundaries
        can be per-event under retire-on-last-use, so it is gated like a
        hot path) and ``scan_all`` an unsampled one (budgeted sweeps are
        rare; sampling them would record nothing).  The handled count
        rides the sampler tick through :meth:`Counter.add_pull` — the
        steady-state per-event cost is one wrapper call and one sampler
        tick, no lock.
        """
        registry = telemetry.registry
        # Label with spec/formalism, matching the stats bridge: two
        # formalisms compiled from one spec are distinct properties.
        spec = f"{self.prop.spec_name}/{self.prop.formalism}"
        latency = _declare_metric(registry, "repro_engine_event_seconds")
        handled = _declare_metric(registry, "repro_engine_handled_total").labels(spec)
        pause = _declare_metric(registry, "repro_engine_gc_pause_seconds")
        offset = self.slot if self.slot >= 0 else 0
        sampler = telemetry.sampler(offset)
        handled.add_pull(lambda: sampler.ticks)
        inner_handle = self.handle
        children: dict[str, Any] = {}

        def handle(event, values, record=True, pretouched=None):
            if not sampler.sample():
                return inner_handle(event, values, record, pretouched)
            start = perf_counter()
            try:
                return inner_handle(event, values, record, pretouched)
            finally:
                child = children.get(event)
                if child is None:
                    child = children[event] = latency.labels(spec, event)
                child.observe(perf_counter() - start)

        self.handle = handle  # type: ignore[method-assign]

        purge_pause = pause.labels(spec, "purge")
        scan_pause = pause.labels(spec, "scan")
        purge_sampler = telemetry.sampler(offset + 1)
        inner_collect = self.collect_deaths
        inner_scan = self.scan_all

        def collect_deaths(dead):
            if not purge_sampler.sample():
                return inner_collect(dead)
            start = perf_counter()
            try:
                inner_collect(dead)
            finally:
                purge_pause.observe(perf_counter() - start)

        def scan_all():
            start = perf_counter()
            try:
                inner_scan()
            finally:
                scan_pause.observe(perf_counter() - start)

        self.collect_deaths = collect_deaths  # type: ignore[method-assign]
        self.scan_all = scan_all  # type: ignore[method-assign]

    def _wire_attribution(self, plane: Any, compiled: bool) -> None:
        """Wrap the entry points with per-stage attribution (see obs docs).

        Outside a sampled emit (``plane.active`` false — the engine's
        boundary wrapper owns that flag) every call falls straight
        through to the raw path; inside one, the compiled handle runs
        the timed decomposed clone and GC entry points charge the ``gc``
        stage.  Each wrapper also adds its elapsed time to
        ``plane.charged`` so the boundary can attribute the remainder of
        the emit call to the engine-level ``emit-batch`` stage.

        ``compiled`` is true for both the ``"compiled"`` and
        ``"codegen"`` dispatch modes: the generated kernels are
        semantically identical to :meth:`_handle_compiled`, so a sampled
        emit runs the decomposed compiled clone and keeps the
        ``dispatch`` / ``tree-walk`` / ``fsm-step`` stage labels exact
        (see docs/dispatch-kernels.md for the one caveat: attributed
        samples measure the interpreted plan, not the generated code).
        """
        from ..obs.attribution import prop_label

        label = prop_label(self.slot, self.prop.spec_name, self.prop.formalism)
        tree_cell = plane.cell(label, "tree-walk")
        fsm_cell = plane.cell(label, "fsm-step")
        dispatch_cell = plane.cell(label, "dispatch")
        gc_cell = plane.cell(label, "gc")
        inner_handle = self.handle

        if compiled:
            attributed = self._handle_compiled_attributed

            def handle(event, values, record=True, pretouched=None):
                if not plane.active:
                    return inner_handle(event, values, record, pretouched)
                start = perf_counter()
                try:
                    return attributed(
                        event, values, record, pretouched,
                        tree_cell, fsm_cell, dispatch_cell,
                    )
                finally:
                    plane.charged += perf_counter() - start
        else:

            def handle(event, values, record=True, pretouched=None):
                if not plane.active:
                    return inner_handle(event, values, record, pretouched)
                start = perf_counter()
                try:
                    return inner_handle(event, values, record, pretouched)
                finally:
                    elapsed = perf_counter() - start
                    dispatch_cell.add(elapsed)
                    plane.charged += elapsed

        self.handle = handle  # type: ignore[method-assign]

        inner_collect = self.collect_deaths
        inner_scan = self.scan_all

        def collect_deaths(dead):
            if not plane.active:
                return inner_collect(dead)
            start = perf_counter()
            try:
                inner_collect(dead)
            finally:
                elapsed = perf_counter() - start
                gc_cell.add(elapsed)
                plane.charged += elapsed

        def scan_all():
            if not plane.active:
                return inner_scan()
            start = perf_counter()
            try:
                inner_scan()
            finally:
                elapsed = perf_counter() - start
                gc_cell.add(elapsed)
                plane.charged += elapsed

        self.collect_deaths = collect_deaths  # type: ignore[method-assign]
        self.scan_all = scan_all  # type: ignore[method-assign]

    # -- static precomputation ---------------------------------------------

    def _build_plan(self, event: str) -> _CreationPlan:
        """Reference-path creation plan (mirrored by the compiled plan)."""
        plan = _CreationPlan()
        event_domain = self.event_domains[event]
        seen_self: set[frozenset[str]] = set()
        for enable_domain in self._enable_domains.get(event, ()):
            if not enable_domain:
                plan.allows_fresh = True
            elif enable_domain < event_domain:
                # A sub-domain source can only hold instances if it is a
                # monitor or event domain (has a tree); the compiled path
                # applies the same filter, keeping both paths equivalent
                # even for plans with unrealizable enable domains.
                if enable_domain in self.trees:
                    seen_self.add(enable_domain)
            elif enable_domain <= event_domain or event_domain <= enable_domain:
                # K == D(e): the exact instance already exists if it ever will;
                # K ⊃ D(e): instances of domain K are updated, never created here.
                continue
            elif enable_domain in self.monitor_domains:
                key_domain = enable_domain & event_domain
                index = self._join_indices[(enable_domain, key_domain)]
                plan.joins.append((enable_domain, tuple(sorted(key_domain)), index))
        plan.self_domains = sorted(
            seen_self, key=lambda domain: (-len(domain), tuple(sorted(domain)))
        )
        plan.joins.sort(key=lambda item: (-len(item[0]), tuple(sorted(item[0]))))
        return plan

    def _resolve_dispatch(self, plan: DispatchPlan) -> dict[str, _EventDispatch]:
        """Bind the static plan to this runtime's trees and indices."""

        def resolve_checks(checks) -> tuple[_ResolvedCheck, ...]:
            return tuple(
                _ResolvedCheck(check.domain, self.trees[check.domain], check.extract)
                for check in checks
            )

        inserts: dict[frozenset, _ResolvedInsert] = {}
        for domain, ip in plan.insert_plans.items():
            inserts[domain] = _ResolvedInsert(
                params=ip.params,
                own_tree=self.trees[domain],
                own_is_event_domain=ip.own_is_event_domain,
                ext_entries=tuple(
                    (self.trees[ext_domain], extract)
                    for ext_domain, extract in ip.extension_entries
                ),
                join_entries=tuple(
                    (self._join_indices[key], extract)
                    for key, extract in ip.join_entries
                ),
            )
        resolved: dict[str, _EventDispatch] = {}
        for event, ep in plan.event_plans.items():
            ed = _EventDispatch(
                event, ep.event_id, ep.domain, ep.params, self.trees[ep.domain]
            )
            ed.self_sources = tuple(
                _ResolvedSource(
                    self.trees[src.domain], src.extract, resolve_checks(src.checks)
                )
                for src in ep.self_sources
                if src.domain in self.trees
            )
            ed.allows_fresh = ep.allows_fresh
            ed.fresh_checks = resolve_checks(ep.fresh_checks)
            ed.joins = tuple(
                _ResolvedJoin(
                    join_domain=jp.join_domain,
                    join_params=jp.join_params,
                    index=self._join_indices[(jp.join_domain, frozenset(jp.key_params))],
                    key_extract=jp.key_extract,
                    target_tree=self.trees[jp.target_domain],
                    merge=jp.merge,
                    checks=resolve_checks(jp.checks),
                    check_target=jp.check_target,
                    insert=inserts[jp.target_domain],
                )
                for jp in ep.joins
            )
            ed.has_creation = ep.has_creation
            ed.check_event_leaf = ep.check_event_leaf
            ed.insert = inserts.get(ep.domain)
            resolved[event] = ed
        return resolved

    # -- GC plumbing -----------------------------------------------------------

    def _notify_monitor(self, monitor: MonitorInstance) -> None:
        """Figure 7A notification: a parameter object below died."""
        if monitor.flagged:
            return
        if self.strategy.is_unnecessary(monitor):
            monitor.flagged = True
            self.stats.record_flag()
            sink = self._flag_sink
            if sink is not None:
                sink.append(monitor)

    def scan_all(self) -> None:
        """Full dead-key scan of every structure (eager_full mode / flush)."""
        for tree in self.trees.values():
            tree.scan_all()
        for index in self._join_indices.values():
            index.scan_all()

    def release(self) -> None:
        """Drop every indexing structure this runtime owns.

        The trees' ``notify`` callbacks are bound methods, so runtime and
        trees form reference cycles; clearing the containers here lets
        plain reference counting reclaim the monitors the moment the
        engine detaches the runtime — a detach must not depend on the
        cyclic GC ever running (shard worker processes may not trigger
        it), or "unloaded" monitors would linger indefinitely.
        """
        for tree in self.trees.values():
            tree.release()
        for index in self._join_indices.values():
            index.release()
        self.trees.clear()
        self._join_indices.clear()
        self._dispatch.clear()
        self._plans.clear()
        # Generated kernels close over this runtime (and it over them, via
        # these dicts) — clear them for the same refcount-only guarantee.
        self._kernels.clear()
        self._batch_kernels.clear()

    def collect_deaths(self, dead: Mapping[str, set[int]]) -> None:
        """Targeted eager propagation of coalesced parameter deaths.

        ``dead`` maps parameter names to the ids of objects that died bound
        under that name.  Only structures whose domain contains a dead
        name are touched, and within them only the buckets of the dead ids
        are scanned (the notification work a full scan would do for these
        keys, without walking live state).  Monitors the notifications flag
        are then evicted from every structure still holding them, so the
        eager regime keeps its collect-at-boundary semantics.
        """
        flagged: list[MonitorInstance] = []
        self._flag_sink = flagged
        try:
            for tree in self.trees.values():
                ids_by_depth = {
                    depth: dead[param]
                    for depth, param in enumerate(tree.params)
                    if param in dead
                }
                if ids_by_depth:
                    tree.purge_ids(ids_by_depth)
            for index in self._join_indices.values():
                ids_by_depth = {
                    depth: dead[param]
                    for depth, param in enumerate(index.params)
                    if param in dead
                }
                if ids_by_depth:
                    index.purge_ids(ids_by_depth)
        finally:
            self._flag_sink = None
        for monitor in flagged:
            self._evict_flagged(monitor)

    def _evict_flagged(self, monitor: MonitorInstance) -> None:
        """Drop one freshly flagged monitor from every remaining structure.

        Structures whose key path contains the dead object were already
        purged; the survivors are reachable through the monitor's still-live
        parameters, so eviction is a handful of direct lookups instead of
        a full second scan pass.
        """
        live: dict[str, Any] = {}
        for name, ref in monitor.params.items():
            value = ref.get()
            if value is not None:
                live[name] = value
        domain = monitor.domain
        for event_domain in self._event_domain_set:
            if event_domain <= domain and all(name in live for name in event_domain):
                leaf = self.trees[event_domain].lookup(
                    {name: live[name] for name in event_domain}, create=False
                )
                if leaf is not None:
                    if leaf.own is monitor:
                        leaf.own = None
                    if leaf.extensions is not None:
                        leaf.extensions.compact()
        if all(name in live for name in domain) and domain not in self._event_domain_set:
            own_leaf = self.trees[domain].lookup(live, create=False)
            if own_leaf is not None and own_leaf.own is monitor:
                own_leaf.own = None
        for (join_domain, key_domain), index in self._join_indices.items():
            if join_domain == domain and all(name in live for name in key_domain):
                bucket = index.lookup(
                    {name: live[name] for name in key_domain}, create=False
                )
                if bucket is not None:
                    bucket.compact()

    # -- event processing (compiled fast path) -----------------------------------

    def _handle_compiled(
        self,
        event: str,
        values: Mapping[str, Any],
        record: bool = True,
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> None:
        """Process one parametric event through the compiled dispatch plan.

        See :meth:`_handle_reference` for the semantics (they are
        identical); this path works on slot tuples and flat FSM tables.
        """
        if record:
            self.stats.events += 1
        self._event_serial += 1
        ed = self._dispatch[event]
        try:
            vals = tuple([values[param] for param in ed.params])
        except KeyError as exc:
            raise InconsistentEventError(
                f"event {event!r} of {self.prop.spec_name} requires parameter "
                f"{exc.args[0]!r}"
            ) from None
        leaf = ed.tree.lookup_vals(vals, True)
        if leaf.touched is None:
            leaf.touched = self._event_serial
        extensions = leaf.extensions
        if extensions is not None and extensions._items:
            rows = self._fsm_rows
            if rows is not None:
                event_id = ed.event_id
                goal = self._fsm_goal
                for monitor in extensions.iter_active():
                    base = monitor.base
                    state_id = rows[base._state_id][event_id]
                    base._state_id = state_id
                    monitor.last_event = event
                    if goal[state_id]:
                        self._fire_goal(monitor, self._fsm_verdicts[state_id])
            else:
                for monitor in extensions.iter_active():
                    self._step(monitor, event)
        if ed.has_creation:
            self._create_compiled(ed, vals, leaf, pretouched)

    def _handle_compiled_attributed(
        self,
        event: str,
        values: Mapping[str, Any],
        record: bool,
        pretouched: frozenset[frozenset[str]] | None,
        tree_cell: Any,
        fsm_cell: Any,
        dispatch_cell: Any,
    ) -> None:
        """Timed clone of :meth:`_handle_compiled`, identical semantics.

        Runs only inside a sampled emit call: the indexing-tree lookup is
        charged to ``tree-walk``, the monitor-stepping loop (including
        any verdicts it fires) to ``fsm-step``, and the remainder of the
        call (binding extraction, creation, bookkeeping) to ``dispatch``.
        """
        start = perf_counter()
        if record:
            self.stats.events += 1
        self._event_serial += 1
        ed = self._dispatch[event]
        try:
            vals = tuple([values[param] for param in ed.params])
        except KeyError as exc:
            raise InconsistentEventError(
                f"event {event!r} of {self.prop.spec_name} requires parameter "
                f"{exc.args[0]!r}"
            ) from None
        t0 = perf_counter()
        leaf = ed.tree.lookup_vals(vals, True)
        tree_seconds = perf_counter() - t0
        if leaf.touched is None:
            leaf.touched = self._event_serial
        fsm_seconds = 0.0
        extensions = leaf.extensions
        if extensions is not None and extensions._items:
            t0 = perf_counter()
            rows = self._fsm_rows
            if rows is not None:
                event_id = ed.event_id
                goal = self._fsm_goal
                for monitor in extensions.iter_active():
                    base = monitor.base
                    state_id = rows[base._state_id][event_id]
                    base._state_id = state_id
                    monitor.last_event = event
                    if goal[state_id]:
                        self._fire_goal(monitor, self._fsm_verdicts[state_id])
            else:
                for monitor in extensions.iter_active():
                    self._step(monitor, event)
            fsm_seconds = perf_counter() - t0
        if ed.has_creation:
            self._create_compiled(ed, vals, leaf, pretouched)
        tree_cell.add(tree_seconds)
        fsm_cell.add(fsm_seconds)
        dispatch_cell.add(
            max(0.0, perf_counter() - start - tree_seconds - fsm_seconds)
        )

    def _create_compiled(
        self,
        ed: _EventDispatch,
        vals: tuple,
        leaf: Leaf,
        pretouched: frozenset[frozenset[str]] | None,
    ) -> None:
        # Target = the event binding itself (defineTo from a sub-instance or
        # from scratch).  The target's own touch stamp gates every
        # self-creation identically (D(e) ⊄ K for K ⊊ D(e)), so it is
        # tested directly on the event leaf before any source probing.
        sources = ed.self_sources
        if (
            (sources or ed.allows_fresh)
            and (leaf.own is None or leaf.own.flagged)
            and (
                not ed.check_event_leaf
                or (
                    leaf.touched == self._event_serial
                    and (pretouched is None or ed.domain not in pretouched)
                )
            )
        ):
            source: MonitorInstance | None = None
            checks = ed.fresh_checks
            found = False
            for src in sources:
                sub_leaf = src.tree.lookup_vals(
                    tuple([vals[i] for i in src.extract]), False
                )
                if (
                    sub_leaf is not None
                    and sub_leaf.own is not None
                    and not sub_leaf.own.flagged
                ):
                    source, checks, found = sub_leaf.own, src.checks, True
                    break
            if (found or ed.allows_fresh) and self._valid_compiled(
                checks, vals, pretouched
            ):
                self._materialize(ed, ed.insert, vals, source, leaf)
        # Join targets: compatible instances of incomparable enable domains.
        for jp in ed.joins:
            bucket = jp.index.lookup_vals(
                tuple([vals[i] for i in jp.key_extract]), False
            )
            if bucket is None:
                continue
            for candidate in bucket.iter_active():
                if candidate.domain != jp.join_domain:
                    continue
                candidate_vals: list | None = []
                for name in jp.join_params:
                    value = candidate.params[name].get()
                    if value is None:
                        candidate_vals = None
                        break
                    candidate_vals.append(value)
                if candidate_vals is None:
                    continue
                target_vals = tuple([
                    candidate_vals[i] if from_candidate else vals[i]
                    for from_candidate, i in jp.merge
                ])
                target_leaf = jp.target_tree.lookup_vals(target_vals, False)
                if target_leaf is not None:
                    if target_leaf.own is not None and not target_leaf.own.flagged:
                        continue
                    if (
                        jp.check_target
                        and target_leaf.touched is not None
                        and target_leaf.touched < self._event_serial
                    ):
                        continue
                if self._valid_compiled(jp.checks, target_vals, None):
                    self._materialize(ed, jp.insert, target_vals, candidate, None)

    def _valid_compiled(
        self,
        checks: tuple[_ResolvedCheck, ...],
        target_vals: tuple,
        pretouched: frozenset[frozenset[str]] | None,
    ) -> bool:
        """Compiled :meth:`_creation_is_valid`: the relevant event domains
        and their extraction indices were computed at property-compile time."""
        serial = self._event_serial
        for check in checks:
            if pretouched is not None and check.domain in pretouched:
                # The router vouches that this sub-binding received events
                # on another shard before now (sticky routing's stand-in
                # for a local touch stamp).
                return False
            sub_leaf = check.tree.lookup_vals(
                tuple([target_vals[i] for i in check.extract]), False
            )
            if (
                sub_leaf is not None
                and sub_leaf.touched is not None
                and sub_leaf.touched < serial
            ):
                return False
        return True

    def _materialize(
        self,
        ed: _EventDispatch,
        insert: _ResolvedInsert,
        vals: tuple,
        source: MonitorInstance | None,
        own_leaf: Leaf | None,
    ) -> None:
        """Create, register, watch, and step one new monitor instance."""
        base = source.base.clone() if source is not None else self.prop.template.create()
        params = {
            name: ParamRef(value) for name, value in zip(insert.params, vals)
        }
        self._serial += 1
        monitor = MonitorInstance(self.prop, base, params, self._serial)
        if own_leaf is None:
            own_leaf = insert.own_tree.lookup_vals(vals, True)
        own_leaf.own = monitor
        if insert.own_is_event_domain and own_leaf.extensions is not None:
            own_leaf.extensions.add(monitor)
        for tree, extract in insert.ext_entries:
            sub_leaf = tree.lookup_vals(tuple([vals[i] for i in extract]), True)
            if sub_leaf.extensions is not None:
                sub_leaf.extensions.add(monitor)
        for index, extract in insert.join_entries:
            index.add_vals(tuple([vals[i] for i in extract]), monitor)
        self.stats.record_creation()
        weakref.finalize(monitor, self.stats.record_collection)
        watch = self._on_param_registered
        if watch is not None:
            for name, value in zip(insert.params, vals):
                watch(name, value)
        rows = self._fsm_rows
        if rows is not None:
            state_id = rows[base._state_id][ed.event_id]
            base._state_id = state_id
            monitor.last_event = ed.event
            if self._fsm_goal[state_id]:
                self._fire_goal(monitor, self._fsm_verdicts[state_id])
        else:
            self._step(monitor, ed.event)

    # -- event processing (reference path) ----------------------------------------

    def _handle_reference(
        self,
        event: str,
        values: Mapping[str, Any],
        record: bool = True,
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> None:
        """Process one parametric event ``event<values>``.

        ``record=False`` processes without counting the event in the stats:
        the sharded service may deliver one event to several shards but
        designates exactly one to account for it, so merged statistics stay
        equal to a single engine's.

        ``pretouched`` names event domains whose sub-binding of this event
        must be treated as *touched before now* even though no local leaf
        says so — the sharded router's stand-in for touch stamps that were
        delivered to other shards (see ``repro.service.router``).
        """
        if record:
            self.stats.record_event()
        self._event_serial += 1
        event_domain = self.event_domains[event]
        try:
            jvalues = {param: values[param] for param in event_domain}
        except KeyError as exc:
            raise InconsistentEventError(
                f"event {event!r} of {self.prop.spec_name} requires parameter "
                f"{exc.args[0]!r}"
            ) from None
        tree = self.trees[event_domain]
        leaf = tree.lookup(jvalues, create=True)
        # Record that this exact binding has seen an event — the disable
        # knowledge used by the creation-validity check.  Stamping the
        # *first* touch serial up front also pins the fresh leaf against
        # concurrent lazy reclamation (see Leaf.touched).
        if leaf.touched is None:
            leaf.touched = self._event_serial
        # 1. Update every instance more informative than the event binding.
        if leaf.extensions is not None:
            for monitor in leaf.extensions.iter_active():
                self._step(monitor, event)
        # 2. Create newly-relevant instances (enable-pruned defineTo / joins).
        self._create_instances(event, event_domain, jvalues, leaf, pretouched)

    #: The default entry point; ``__init__`` rebinds it per instance to the
    #: selected dispatch implementation.
    handle = _handle_compiled

    def _step(self, monitor: MonitorInstance, event: str) -> None:
        verdict = monitor.base.step(event)
        monitor.last_event = event
        if verdict in self.prop.goal:
            self._fire_goal(monitor, verdict)

    def _fire_goal(self, monitor: MonitorInstance, verdict: str) -> None:
        self.stats.record_verdict(verdict)
        self.stats.record_handler()
        # Stamp provenance before handlers run so both the property's own
        # handler and the service's verdict callback can read it.  Under a
        # DurableEngine the getter resolves to the WAL's current (segment,
        # seq) coordinates — the WAL is write-ahead, so that seq IS the
        # triggering event's sequence number (see repro.obs.provenance).
        provenance: dict[str, Any] = {
            "property": self.prop.spec_name,
            "formalism": self.prop.formalism,
            "slot": self.slot,
        }
        getter = self._provenance_get
        if getter is not None:
            source = getter()
            if source is not None:
                provenance.update(source())
        monitor.provenance = provenance
        self.prop.fire(verdict, monitor.binding())
        if self._on_verdict is not None:
            self._on_verdict(self.prop, verdict, monitor)

    # -- creation (reference path) -------------------------------------------------

    def _create_instances(
        self,
        event: str,
        event_domain: frozenset[str],
        jvalues: dict[str, Any],
        leaf: Leaf,
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> None:
        plan = self._plans[event]
        # Target = the event binding itself (defineTo from a sub-instance or
        # from scratch).
        own_alive = leaf.own is not None and not leaf.own.flagged
        if not own_alive and (plan.self_domains or plan.allows_fresh):
            source: MonitorInstance | None = None
            source_domain: frozenset[str] = frozenset()
            found = False
            for domain in plan.self_domains:
                sub_leaf = self.trees[domain].lookup(
                    {param: jvalues[param] for param in domain}, create=False
                )
                if sub_leaf is not None and sub_leaf.own is not None and not sub_leaf.own.flagged:
                    source, source_domain, found = sub_leaf.own, domain, True
                    break
            if found or plan.allows_fresh:
                if self._creation_is_valid(jvalues, source_domain, pretouched):
                    self._create(event, jvalues, source)
        # Join targets: compatible instances of incomparable enable domains.
        for join_domain, key_params, index in plan.joins:
            key_values = {param: jvalues[param] for param in key_params}
            for candidate in index.candidates(key_values):
                candidate_values: dict[str, Any] = {}
                dead = False
                for name, ref in candidate.params.items():
                    value = ref.get()
                    if value is None:
                        dead = True
                        break
                    candidate_values[name] = value
                if dead or candidate.domain != join_domain:
                    continue
                target_values = {**candidate_values, **jvalues}
                target_domain = frozenset(target_values)
                target_leaf = self.trees[target_domain].lookup(target_values, create=False)
                if (
                    target_leaf is not None
                    and target_leaf.own is not None
                    and not target_leaf.own.flagged
                ):
                    continue
                if self._creation_is_valid(target_values, join_domain):
                    self._create(event, target_values, candidate)

    def _creation_is_valid(
        self,
        target_values: Mapping[str, Any],
        source_domain: frozenset[str],
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> bool:
        """No past event would be silently lost by creating from the source.

        Invalid when some event binding ``theta_d ⊑ target`` with
        ``dom(theta_d) ⊄ source`` was *touched before the current event*:
        the target's true slice then contains events the source never saw,
        and — by the enable-set theorem — such a slice cannot reach the
        goal, so the instance must not be created at all (JavaMOP's
        disable-timestamp rule).  A touch stamped by the current event does
        not invalidate: the new monitor receives that event itself.
        """
        target_domain = frozenset(target_values)
        for event_domain in self._event_domain_set:
            if not event_domain or not event_domain <= target_domain:
                continue
            if event_domain <= source_domain:
                continue
            if pretouched is not None and event_domain in pretouched:
                # The router vouches that this sub-binding received events
                # on another shard before now (sticky routing's stand-in
                # for a local touch stamp).
                return False
            sub_leaf = self.trees[event_domain].lookup(
                {param: target_values[param] for param in event_domain}, create=False
            )
            if (
                sub_leaf is not None
                and sub_leaf.touched is not None
                and sub_leaf.touched < self._event_serial
            ):
                return False
        return True

    def _create(
        self,
        event: str,
        target_values: Mapping[str, Any],
        source: MonitorInstance | None,
    ) -> None:
        base = source.base.clone() if source is not None else self.prop.template.create()
        params = {name: ParamRef(value) for name, value in target_values.items()}
        self._serial += 1
        monitor = MonitorInstance(self.prop, base, params, self._serial)
        self._insert(monitor, target_values)
        self.stats.record_creation()
        weakref.finalize(monitor, self.stats.record_collection)
        if self._on_param_registered is not None:
            for name, value in target_values.items():
                self._on_param_registered(name, value)
        self._step(monitor, event)

    def _insert(self, monitor: MonitorInstance, values: Mapping[str, Any]) -> None:
        domain = frozenset(values)
        own_leaf = self.trees[domain].lookup(values, create=True)
        own_leaf.own = monitor
        for event_domain in self._event_domain_set:
            if event_domain <= domain:
                leaf = self.trees[event_domain].lookup(
                    {param: values[param] for param in event_domain}, create=True
                )
                if leaf.extensions is not None:
                    leaf.extensions.add(monitor)
        for (join_domain, key_domain), index in self._join_indices.items():
            if join_domain == domain:
                index.add(
                    {param: values[param] for param in key_domain}, monitor
                )

    # -- introspection -------------------------------------------------------------

    def live_instances(self) -> list[MonitorInstance]:
        """Unflagged instances currently reachable through the trees."""
        seen: dict[int, MonitorInstance] = {}
        for tree in self.trees.values():
            for leaf in tree.walk_leaves():
                for monitor in leaf.monitors():
                    if not monitor.flagged:
                        seen[id(monitor)] = monitor
        return list(seen.values())

    # -- persistence (the checkpoint codec's view) -------------------------------

    def iter_reachable_instances(self) -> Iterable[MonitorInstance]:
        """Every unflagged instance held by any structure, deduplicated.

        Beyond :meth:`live_instances` this walks the join indices too: an
        instance whose tree paths all died can survive in a join bucket
        under its live key sub-binding, and the codec must capture it there
        or the restored run would under-count its eventual collection.
        """
        seen: dict[int, MonitorInstance] = {}
        for tree in self.trees.values():
            for leaf in tree.walk_leaves():
                for monitor in leaf.monitors():
                    if not monitor.flagged:
                        seen.setdefault(id(monitor), monitor)
        for index in self._join_indices.values():
            for bucket in index.walk_leaves():
                for monitor in bucket:
                    if not monitor.flagged:
                        seen.setdefault(id(monitor), monitor)
        return list(seen.values())

    def export_persist_state(self, symbol_of: Callable[[Any], str]) -> dict:
        """Serialize this runtime's dynamic state (codec payload).

        Call only on a freshly flushed engine (see
        :func:`repro.persist.codec.snapshot_engine`): flushing delivers all
        pending dead-key notifications and physically removes flagged
        instances, so the remaining state is exactly the
        behavior-determining part.
        """
        monitors = sorted(
            self.iter_reachable_instances(), key=lambda monitor: monitor.serial
        )
        touched = []
        for domain, tree in self.trees.items():
            for values, leaf in tree.walk_items():
                if leaf.touched is not None:
                    touched.append(
                        {
                            "params": {
                                name: symbol_of(value) for name, value in values.items()
                            },
                            "serial": leaf.touched,
                        }
                    )
        return {
            "serial": self._serial,
            "event_serial": self._event_serial,
            "stats": self.stats.snapshot(),
            "monitors": [monitor.snapshot_payload(symbol_of) for monitor in monitors],
            "touched": touched,
        }

    def import_persist_state(self, payload: Mapping[str, Any], tokens: Mapping[str, Any]) -> None:
        """Rebuild dynamic state from :meth:`export_persist_state` output.

        Must run on a virgin runtime (no events processed).  ``tokens``
        maps live symbols to their restored stand-in objects; insertion
        order follows monitor serials, reproducing the live engine's
        creation-ordered set contents.
        """
        self._serial = payload["serial"]
        self._event_serial = payload["event_serial"]
        self.stats = MonitorStats.from_snapshot(payload["stats"])
        for record in payload["touched"]:
            values = {name: tokens[symbol] for name, symbol in record["params"].items()}
            leaf = self.trees[frozenset(values)].lookup(values, create=True)
            leaf.touched = record["serial"]
        for monitor_payload in payload["monitors"]:
            monitor = MonitorInstance.from_payload(self.prop, monitor_payload, tokens)
            self._restore_insert(monitor)
            weakref.finalize(monitor, self.stats.record_collection)
            if self._on_param_registered is not None:
                for name, ref in monitor.params.items():
                    value = ref.get()
                    if value is not None:
                        self._on_param_registered(name, value)

    def _restore_insert(self, monitor: MonitorInstance) -> None:
        """Dead-aware :meth:`_insert`: entries are re-created only along
        all-live key paths — the paths a freshly flushed live engine still
        holds (dead-keyed entries were purged before the snapshot)."""
        live: dict[str, Any] = {}
        dead: set[str] = set()
        for name, ref in monitor.params.items():
            value = ref.get()
            if value is None:
                dead.add(name)
            else:
                live[name] = value
        domain = monitor.domain
        if not dead:
            own_leaf = self.trees[domain].lookup(live, create=True)
            own_leaf.own = monitor
        for event_domain in self._event_domain_set:
            if event_domain <= domain and not (event_domain & dead):
                leaf = self.trees[event_domain].lookup(
                    {name: live[name] for name in event_domain}, create=True
                )
                if leaf.extensions is not None:
                    leaf.extensions.add(monitor)
        for (join_domain, key_domain), index in self._join_indices.items():
            if join_domain == domain and not (key_domain & dead):
                index.add({name: live[name] for name in key_domain}, monitor)


class MonitoringEngine:
    """Hosts any number of compiled specifications over one event stream.

    ``gc`` selects the monitor-collection strategy (``none`` / ``alldead`` /
    ``coenable`` / ``statebased``), ``propagation`` is ``lazy`` (the paper's
    design), ``eager`` (targeted boundary propagation — the Tracematches
    profile) or ``eager_full`` (the historical full-scan ablation);
    ``system`` is a convenience preset: ``rv`` / ``mop`` / ``tm`` /
    ``none`` (see :data:`SYSTEMS`).  ``dispatch`` selects the compiled
    fast path (default), the retained ``"reference"`` interpretation, or
    ``"codegen"`` — per-(property, event) kernels generated and
    ``exec``-compiled from the dispatch plan (:mod:`repro.spec.codegen`)
    plus a grouped batch-stepping path in :meth:`emit_batch` — all three
    produce bit-identical verdicts and creation counts.
    """

    def __init__(
        self,
        specs: Iterable[CompiledSpec | CompiledProperty] | CompiledSpec | CompiledProperty,
        gc: str | None = None,
        propagation: str | None = None,
        system: str | None = None,
        scan_budget: int = 2,
        on_verdict: VerdictCallback | None = None,
        dispatch: str = "compiled",
        telemetry: "Telemetry | bool | None" = None,
    ):
        if system is not None:
            if gc is not None or propagation is not None:
                raise ValueError("pass either system= or gc=/propagation=, not both")
            gc, propagation = SYSTEMS[system]
        gc = gc if gc is not None else "coenable"
        propagation = propagation if propagation is not None else "lazy"
        if propagation not in PROPAGATIONS:
            raise ValueError(f"unknown propagation {propagation!r}")
        if dispatch not in ("compiled", "reference", "codegen"):
            raise ValueError(f"unknown dispatch {dispatch!r}")
        self.gc = gc
        self.propagation = propagation
        self.scan_budget = scan_budget
        self.dispatch = dispatch
        self._on_verdict = on_verdict
        #: Telemetry plane (None = off: hot paths identical to the
        #: un-instrumented build).  See :mod:`repro.obs`.
        self.telemetry = as_telemetry(telemetry)
        #: Set by a persistence wrapper (DurableEngine) to a zero-argument
        #: callable returning the WAL coordinates of the event currently
        #: being dispatched; runtimes merge it into verdict provenance.
        self.provenance_source: Callable[[], Mapping[str, Any]] | None = None
        self._batch_emit = self._batch_selected = None
        if self.telemetry is not None:
            batch = _declare_metric(self.telemetry.registry, "repro_engine_batch_size")
            self._batch_emit = batch.labels("emit")
            self._batch_selected = batch.labels("selected")
        #: Per-stage overhead attribution plane (``repro.obs.attribution``),
        #: built only when the telemetry policy asks for it; None otherwise
        #: (no wrappers installed, hot paths untouched).
        self.attribution = None
        if self.telemetry is not None and self.telemetry.attribution:
            from ..obs.attribution import AttributionPlane

            self.attribution = AttributionPlane(self.telemetry)
        #: Optional flight recorder (``enable_flight_recorder``); None by
        #: default, in which case no recording wrappers exist.
        self.flight_recorder = None

        #: The engine's own property registry.  A registry argument is
        #: cloned (shard engines mirror the service's registry operations
        #: on independent copies); any other accepted form builds a fresh
        #: one, so an engine constructed from a plain property list behaves
        #: exactly as before.
        if isinstance(specs, PropertyRegistry):
            self.registry = specs.clone()
        else:
            self.registry = PropertyRegistry.from_specs(specs)
        self.properties: list[CompiledProperty | None] = self.registry.properties()

        self._eager = propagation != "lazy"
        #: Coalesced parameter deaths since the last event boundary:
        #: (runtime index, parameter name, dead object id).
        self._pending_dead: list[tuple[int, str, int]] = []
        #: Guards every _pending_dead mutation: weakref death callbacks
        #: (any thread), external note_deaths (emitter threads), and the
        #: boundary swap in _propagate_deaths (shard worker threads) may
        #: all touch it concurrently; an unguarded swap would strand
        #: appends on the orphaned list and leak their dead-id buckets.
        self._dead_lock = threading.Lock()
        #: id -> (weakref guard, positions the object is registered under).
        self._watched: dict[int, tuple[weakref.ref, set[tuple[int, str]]]] = {}
        #: Optional tap invoked as ``on_emit(event, params)`` for every
        #: emitted event, before dispatch (used by runtime.tracelog).
        self.on_emit = None
        #: Statistics of detached properties, folded into the engine totals
        #: (slot -> (spec name, formalism, final stats)).
        self._retired: dict[int, tuple[str, str, MonitorStats]] = {}
        self.runtimes: list[PropertyRuntime | None] = []
        for entry in self.registry.entries:
            if entry.removed:
                self.runtimes.append(None)
                self._retired[entry.index] = (
                    entry.spec_name, entry.formalism, MonitorStats()
                )
                continue
            runtime = self._build_runtime(entry.index, entry.prop)
            runtime.enabled = entry.enabled
            self.runtimes.append(runtime)
        self._by_event: dict[str, list[PropertyRuntime]] = {}
        self._rebuild_event_index()
        if self.attribution is not None:
            self._wire_attribution_boundary()

    def enable_telemetry(self, telemetry: "Telemetry | bool") -> "Telemetry":
        """Attach a telemetry plane to an already-built engine.

        Used when the engine was constructed by a path that cannot thread
        the ``telemetry`` argument (checkpoint restore); wires every live
        runtime exactly as construction-time wiring would.  Raises if
        telemetry is already attached.
        """
        if self.telemetry is not None:
            raise ValueError("telemetry is already attached to this engine")
        resolved = as_telemetry(telemetry)
        if resolved is None:
            raise ValueError("enable_telemetry requires a Telemetry (or True)")
        self.telemetry = resolved
        batch = _declare_metric(resolved.registry, "repro_engine_batch_size")
        self._batch_emit = batch.labels("emit")
        self._batch_selected = batch.labels("selected")
        if resolved.attribution:
            from ..obs.attribution import AttributionPlane

            self.attribution = AttributionPlane(resolved)
        for runtime in self.runtimes:
            if runtime is not None:
                if self.attribution is not None:
                    runtime._wire_attribution(
                        self.attribution,
                        self.dispatch in ("compiled", "codegen"),
                    )
                runtime._wire_telemetry(resolved)
        if self.attribution is not None:
            self._wire_attribution_boundary()
        # Wrapped handles invalidate the codegen direct-kernel routes.
        self._rebuild_event_index()
        return resolved

    def _wire_attribution_boundary(self) -> None:
        """Interpose the sampled attribution boundary on the emit paths.

        One deterministic sampler tick per emit/batch call decides
        whether the *entire* call is attributed: while it runs,
        ``plane.active`` makes every runtime wrapper take the timed
        decomposed path, and whatever wall time the runtimes did not
        charge (routing, taps, death propagation bookkeeping, loop
        overhead) lands on the engine-level ``emit-batch`` stage.
        Unsampled calls pay a single sampler tick and fall through.
        """
        from ..obs.attribution import ENGINE_LABEL

        plane = self.attribution
        batch_cell = plane.cell(ENGINE_LABEL, "emit-batch")
        sampler = plane.sampler
        inner_emit = self.emit
        inner_emit_values = self.emit_values
        inner_emit_batch = self.emit_batch
        inner_selected = self.emit_selected
        inner_selected_batch = self.emit_selected_batch

        def attributed(call, args, kwargs):
            plane.active = True
            plane.charged = 0.0
            start = perf_counter()
            try:
                return call(*args, **kwargs)
            finally:
                total = perf_counter() - start
                plane.active = False
                batch_cell.add(max(0.0, total - plane.charged))

        def emit(event, _strict=True, **params):
            if not sampler.sample():
                return inner_emit(event, _strict, **params)
            return attributed(inner_emit, (event, _strict), params)

        def emit_values(event, values, _strict=True):
            # Rebinding this alongside ``emit`` keeps the replay hot loop
            # (``tracelog.replay_entries``) on its repack-free entry: the
            # loop trusts an instance-level ``emit_values`` to observe
            # events exactly as the wrapped ``emit`` would.
            if not sampler.sample():
                return inner_emit_values(event, values, _strict)
            return attributed(inner_emit_values, (event, values, _strict), {})

        def emit_batch(events, _strict=True):
            if not sampler.sample():
                return inner_emit_batch(events, _strict)
            return attributed(inner_emit_batch, (events, _strict), {})

        def emit_selected(*args, **kwargs):
            if not sampler.sample():
                return inner_selected(*args, **kwargs)
            return attributed(inner_selected, args, kwargs)

        def emit_selected_batch(deliveries):
            if not sampler.sample():
                return inner_selected_batch(deliveries)
            return attributed(inner_selected_batch, (deliveries,), {})

        self.emit = emit  # type: ignore[method-assign]
        self.emit_values = emit_values  # type: ignore[method-assign]
        self.emit_batch = emit_batch  # type: ignore[method-assign]
        self.emit_selected = emit_selected  # type: ignore[method-assign]
        self.emit_selected_batch = emit_selected_batch  # type: ignore[method-assign]

    def enable_flight_recorder(self, recorder: Any = None) -> Any:
        """Attach a flight recorder (``repro.obs.recorder``) to this engine.

        Interposes recording wrappers on the emit paths, ``note_deaths``,
        and the registry operations, and taps the verdict callback —
        per-instance rebinding, exactly like telemetry, so engines
        without a recorder keep byte-identical hot paths.  Events are
        recorded with the WAL coordinates of ``provenance_source`` when a
        persistence wrapper set one.  Returns the attached recorder.
        """
        from ..obs.recorder import FlightRecorder

        if self.flight_recorder is not None:
            raise ValueError("a flight recorder is already attached to this engine")
        if recorder is None:
            recorder = FlightRecorder()
        if self.telemetry is not None and recorder.dump_counter is None:
            recorder.dump_counter = _declare_metric(
                self.telemetry.registry, "repro_recorder_dumps_total"
            )
        self.flight_recorder = recorder

        def wal_coords():
            source = self.provenance_source
            return source() if source is not None else None

        previous_on_verdict = self._on_verdict

        def on_verdict(prop, category, monitor):
            recorder.record_verdict(prop, category, monitor)
            if previous_on_verdict is not None:
                previous_on_verdict(prop, category, monitor)

        self._on_verdict = on_verdict
        for runtime in self.runtimes:
            if runtime is not None:
                runtime._on_verdict = on_verdict

        inner_emit = self.emit
        inner_emit_values = self.emit_values
        inner_emit_batch = self.emit_batch
        inner_selected = self.emit_selected
        inner_selected_batch = self.emit_selected_batch
        inner_note_deaths = self.note_deaths
        inner_attach = self.attach_property
        inner_detach = self.detach_property
        inner_set_enabled = self.set_property_enabled

        def emit(event, _strict=True, **params):
            try:
                return inner_emit(event, _strict, **params)
            finally:
                recorder.record_event(event, params, wal_coords())

        def emit_values(event, values, _strict=True):
            # Rebound alongside ``emit`` so replay's repack-free entry
            # (which trusts an instance-level ``emit_values``) records too.
            try:
                return inner_emit_values(event, values, _strict)
            finally:
                recorder.record_event(event, values, wal_coords())

        def _record_batch(events):
            # The WAL (when present) assigned consecutive sequence numbers
            # ending at the post-batch cursor; back-count so every recorded
            # event carries its own coordinates.
            coords = wal_coords()
            if coords is None or coords.get("seq") is None:
                for event, params in events:
                    recorder.record_event(event, params, None)
                return
            last = coords["seq"]
            first = last - len(events) + 1
            for offset, (event, params) in enumerate(events):
                recorder.record_event(
                    event, params, {**coords, "seq": first + offset}
                )

        def emit_batch(events, _strict=True):
            events = list(events)
            try:
                return inner_emit_batch(events, _strict)
            finally:
                _record_batch([(event, params) for event, params in events])

        def emit_selected(event, params, *args, **kwargs):
            try:
                return inner_selected(event, params, *args, **kwargs)
            finally:
                recorder.record_event(event, params, wal_coords())

        def emit_selected_batch(deliveries):
            deliveries = list(deliveries)
            try:
                return inner_selected_batch(deliveries)
            finally:
                _record_batch(
                    [(event, params) for event, params, _ in deliveries]
                )

        def note_deaths(dead):
            dead = {
                param: list(ids) for param, ids in dict(dead).items()
            }
            recorder.record("deaths", params=sorted(dead))
            return inner_note_deaths(dead)

        def attach_property(item, name=None, origin=None, enabled=True):
            indexes = inner_attach(item, name=name, origin=origin, enabled=enabled)
            recorder.record_registry_op(
                "attach", name=name, slots=list(indexes), enabled=enabled
            )
            return indexes

        def detach_property(ref):
            stats = inner_detach(ref)
            recorder.record_registry_op("detach", ref=str(ref))
            return stats

        def set_property_enabled(ref, enabled):
            inner_set_enabled(ref, enabled)
            recorder.record_registry_op("enable", ref=str(ref), enabled=enabled)

        self.emit = emit  # type: ignore[method-assign]
        self.emit_values = emit_values  # type: ignore[method-assign]
        self.emit_batch = emit_batch  # type: ignore[method-assign]
        self.emit_selected = emit_selected  # type: ignore[method-assign]
        self.emit_selected_batch = emit_selected_batch  # type: ignore[method-assign]
        self.note_deaths = note_deaths  # type: ignore[method-assign]
        self.attach_property = attach_property  # type: ignore[method-assign]
        self.detach_property = detach_property  # type: ignore[method-assign]
        self.set_property_enabled = set_property_enabled  # type: ignore[method-assign]
        return recorder

    def _build_runtime(self, index: int, prop: CompiledProperty) -> PropertyRuntime:
        return PropertyRuntime(
            prop,
            gc=self.gc,
            scan_budget=self.scan_budget,
            on_verdict=self._on_verdict,
            on_param_registered=(
                (lambda name, value, _index=index: self._watch_param(_index, name, value))
                if self._eager
                else None
            ),
            dispatch=self.dispatch,
            slot=index,
            telemetry=self.telemetry,
            provenance_get=lambda: self.provenance_source,
            attribution=self.attribution,
        )

    def _rebuild_event_index(self) -> None:
        """Recompute the event -> runtimes map over enabled slots.

        Runs only at registry boundaries (attach / detach / enable /
        disable), so the per-event hot path stays exactly one dict lookup.
        Events declared only by *disabled* runtimes are remembered
        separately: a paused property's events are silently dropped, never
        reported as undeclared — pausing must be transparent to emitters.
        """
        by_event: dict[str, list[PropertyRuntime]] = {}
        declared: set[str] = set()
        for runtime in self.runtimes:
            if runtime is None:
                continue
            for event in runtime.prop.definition.alphabet:
                declared.add(event)
                if runtime.enabled:
                    by_event.setdefault(event, []).append(runtime)
        self._by_event = by_event
        self._paused_events = declared - set(by_event)
        # Codegen batch routing: per event, (runtime, kernel, batch kernel).
        # Kernels are entered directly only while the runtime's handle is
        # still unwrapped — telemetry/attribution/recording wrappers must
        # see every call, so wrapped runtimes degrade to ``handle``.
        routes: dict[str, list[tuple[PropertyRuntime, Any, Any]]] = {}
        singles: dict[str, Any] = {}
        if self.dispatch == "codegen":
            for event, runtimes in by_event.items():
                entries = []
                for runtime in runtimes:
                    direct = runtime.handle is runtime._unwrapped_handle
                    entries.append((
                        runtime,
                        runtime._kernels.get(event) if direct else None,
                        runtime._batch_kernels.get(event) if direct else None,
                    ))
                routes[event] = entries
                # Single-receiver events skip even the route loop: the
                # emit surface calls the kernel through one dict lookup.
                if len(entries) == 1 and entries[0][1] is not None:
                    singles[event] = entries[0][1]
        self._codegen_routes = routes
        self._codegen_single = singles

    # -- dynamic property lifecycle ----------------------------------------------

    @property
    def registry_epoch(self) -> int:
        """Monotonic version of the property set (bumped by every hot op)."""
        return self.registry.epoch

    def attach_property(
        self,
        item: Any,
        name: str | None = None,
        origin: "Mapping[str, Any] | None" = None,
        enabled: bool = True,
    ) -> list[int]:
        """Hot-load properties at the current event boundary.

        ``item`` is anything the constructor accepts (source text, compiled
        specs/properties, paper-property providers); each resulting
        property gets a fresh slot, a freshly compiled
        :class:`~repro.spec.dispatch.DispatchPlan` resolved against new
        indexing trees, and re-interned event ids.  Returns the new slot
        indexes.  ``origin`` overrides the recorded re-materialization
        origin (the service passes its own through so process-mode workers
        and snapshots agree).
        """
        normalized = normalize_properties(item)
        if name is not None and len(normalized) != 1:
            raise RegistryError(
                f"cannot attach {len(normalized)} properties under one name "
                f"{name!r}"
            )
        indexes: list[int] = []
        for prop, derived_origin in normalized:
            entry = self.registry.add(
                prop,
                name=name,
                origin=origin if origin is not None else derived_origin,
                enabled=enabled,
            )
            runtime = self._build_runtime(entry.index, prop)
            runtime.enabled = enabled
            self.runtimes.append(runtime)
            self.properties.append(prop)
            indexes.append(entry.index)
        self._rebuild_event_index()
        return indexes

    def detach_property(self, ref: Any) -> MonitorStats:
        """Hot-unload one property at the current event boundary.

        The runtime is quiesced first: its share of any coalesced pending
        deaths is delivered through the targeted ``purge_ids`` machinery,
        then a two-pass full scan flags and sweeps everything a boundary
        propagation would have.  Its final statistics are folded into the
        engine totals (and returned); dropping the runtime releases its
        indexing trees and join indices wholesale.
        """
        entry = self.registry.entry(ref)
        index = entry.index
        runtime = self.runtimes[index]
        if runtime is None:
            raise RegistryError(f"property {entry.name!r} is already detached")
        if self._eager and self._pending_dead:
            mine: dict[str, set[int]] = {}
            with self._dead_lock:
                keep: list[tuple[int, str, int]] = []
                for runtime_index, param, dead_id in self._pending_dead:
                    if runtime_index == index:
                        mine.setdefault(param, set()).add(dead_id)
                    else:
                        keep.append((runtime_index, param, dead_id))
                self._pending_dead = keep
            if mine:
                runtime.collect_deaths(mine)
        for _pass in range(2):
            runtime.scan_all()
        stats = runtime.stats
        runtime.release()
        self.registry.remove(index)
        self.runtimes[index] = None
        self.properties[index] = None
        self._retired[index] = (entry.spec_name, entry.formalism, stats)
        # Purge eager watch positions pointing at the detached slot so its
        # future parameter deaths are not routed to a dead runtime.
        for key, (guard, positions) in list(self._watched.items()):
            stale = {position for position in positions if position[0] == index}
            if stale:
                positions -= stale
                if not positions:
                    del self._watched[key]
        self._rebuild_event_index()
        return stats

    def set_property_enabled(self, ref: Any, enabled: bool) -> None:
        """Pause or resume one property without touching its state."""
        entry = (
            self.registry.enable(ref) if enabled else self.registry.disable(ref)
        )
        runtime = self.runtimes[entry.index]
        if runtime is None:  # pragma: no cover - registry refuses removed slots
            raise RegistryError(f"property {entry.name!r} is detached")
        if runtime.enabled != enabled:
            runtime.enabled = enabled
            self._rebuild_event_index()

    # -- the public event interface ---------------------------------------------

    def emit(self, event: str, _strict: bool = True, **params: Any) -> None:
        """Emit one parametric event to every property that declares it.

        Each receiving property restricts the binding to its own ``D(e)``;
        a property missing a required parameter raises
        :class:`InconsistentEventError`.  With ``_strict=False`` an event no
        property declares is silently dropped — the instrumentation layer
        uses this because a woven program point may produce events for
        specifications that are not currently monitored.
        """
        routes = self._codegen_routes
        if routes and not self._eager and self.on_emit is None:
            # Codegen fast route: straight from the emit surface into the
            # generated kernel, skipping the per-runtime handle closure.
            # Routes cover every declared event, so a miss below falls
            # through to the unknown-event handling.
            kernel = self._codegen_single.get(event)
            if kernel is not None:
                kernel(params)
                return
            targets = routes.get(event)
            if targets is not None:
                for runtime, kernel, _batch in targets:
                    if kernel is not None:
                        kernel(params)
                    else:
                        runtime.handle(event, params)
                return
        if self._eager and self._pending_dead:
            self._propagate_deaths()
        if self.on_emit is not None:
            self.on_emit(event, params)
        runtimes = self._by_event.get(event)
        if not runtimes:
            if _strict and event not in self._paused_events:
                raise UnknownEventError(
                    f"no monitored specification declares event {event!r}"
                )
            return
        for runtime in runtimes:
            runtime.handle(event, params)

    def emit_values(
        self, event: str, values: Mapping[str, Any], _strict: bool = True
    ) -> None:
        """:meth:`emit` with the parameter binding as one mapping.

        Semantically identical to ``emit(event, **values)`` without the
        keyword repack — the replay hot loop already holds the dict.
        Callers that wrap ``emit`` per instance (telemetry, attribution,
        flight recorder, durability) are respected by going through this
        method only when ``emit`` is unwrapped — see
        :func:`repro.runtime.tracelog.replay_entries`.
        """
        routes = self._codegen_routes
        if routes and not self._eager and self.on_emit is None:
            kernel = self._codegen_single.get(event)
            if kernel is not None:
                kernel(values)
                return
            targets = routes.get(event)
            if targets is not None:
                for runtime, kernel, _batch in targets:
                    if kernel is not None:
                        kernel(values)
                    else:
                        runtime.handle(event, values)
                return
        if self._eager and self._pending_dead:
            self._propagate_deaths()
        if self.on_emit is not None:
            self.on_emit(event, values)
        runtimes = self._by_event.get(event)
        if not runtimes:
            if _strict and event not in self._paused_events:
                raise UnknownEventError(
                    f"no monitored specification declares event {event!r}"
                )
            return
        for runtime in runtimes:
            runtime.handle(event, values)

    def emit_batch(
        self,
        events: Iterable[tuple[str, Mapping[str, Any]]],
        _strict: bool = True,
    ) -> int:
        """Emit a batch of ``(event, params)`` pairs; returns how many were
        dispatched to at least one property.

        Per-event semantics are identical to :meth:`emit` — eager death
        propagation still happens at every event boundary — but the
        per-call overhead (tap/attribute lookups, the Python call itself)
        is amortized across the batch.

        Under ``dispatch="codegen"`` with lazy propagation and no emit
        tap, the batch is processed by the grouped kernel path instead:
        consecutive same-event runs step through generated kernels (and,
        for creation-free FSM events, through the vectorized batch
        kernel) — see :meth:`_emit_batch_codegen`.
        """
        if self._codegen_routes and not self._eager and self.on_emit is None:
            return self._emit_batch_codegen(events, _strict)
        eager = self._eager
        by_event = self._by_event
        accepted = 0
        if self._batch_emit is not None:
            events = list(events)
            self._batch_emit.observe(len(events))
        for event, params in events:
            if eager and self._pending_dead:
                self._propagate_deaths()
            if self.on_emit is not None:
                self.on_emit(event, params)
            runtimes = by_event.get(event)
            if not runtimes:
                if _strict and event not in self._paused_events:
                    raise UnknownEventError(
                        f"no monitored specification declares event {event!r}"
                    )
                continue
            accepted += 1
            for runtime in runtimes:
                runtime.handle(event, params)
        return accepted

    def _emit_batch_codegen(
        self,
        events: Iterable[tuple[str, Mapping[str, Any]]],
        _strict: bool = True,
    ) -> int:
        """Grouped codegen batch dispatch (lazy propagation only).

        Splits the batch into maximal runs of consecutive identical
        events and dispatches each run once per receiving runtime:
        creation-free FSM events step the whole run through the
        generated batch kernel (one call, array-backed transition
        column); anything else — creating events, non-FSM properties,
        wrapped handles — falls back to the scalar kernel per event.
        Only *consecutive* events are grouped, never reordered: lazy GC
        discovers deaths on access, so the exact operation order is part
        of the observable semantics the equivalence suite pins down.
        Eager propagation never reaches this path (its death boundaries
        interleave with dispatch), nor does an engine with an ``on_emit``
        tap (the tap must see every event in order).
        """
        events = events if isinstance(events, list) else list(events)
        if self._batch_emit is not None:
            self._batch_emit.observe(len(events))
        n = len(events)
        if n == 1:
            # Tiny chunks dominate replayed traces (death boundaries flush
            # the pending batch, so the mean chunk tracks object lifetime,
            # not batch_size) — skip the grouping scaffolding entirely.
            event, params = events[0]
            kernel = self._codegen_single.get(event)
            if kernel is not None:
                kernel(params)
                return 1
        routes = self._codegen_routes
        paused = self._paused_events
        accepted = 0
        i = 0
        while i < n:
            event = events[i][0]
            j = i + 1
            while j < n and events[j][0] == event:
                j += 1
            targets = routes.get(event)
            if not targets:
                if _strict and event not in paused:
                    raise UnknownEventError(
                        f"no monitored specification declares event {event!r}"
                    )
                i = j
                continue
            run = j - i
            accepted += run
            if run == 1:
                params = events[i][1]
                for runtime, kernel, _batch in targets:
                    if kernel is not None:
                        kernel(params)
                    else:
                        runtime.handle(event, params)
            else:
                for runtime, kernel, batch in targets:
                    # The vectorized kernel pays a per-call prelude (FSM
                    # column binds, group list build); below ~8 events the
                    # scalar kernel loop wins.  Either path is legal — the
                    # batch kernel is verdict-identical to the scalar loop.
                    if batch is not None and run >= 8:
                        batch([entry[1] for entry in events[i:j]])
                    elif kernel is not None:
                        for k in range(i, j):
                            kernel(events[k][1])
                    else:
                        for k in range(i, j):
                            runtime.handle(event, events[k][1])
            i = j
        return accepted

    def emit_binding(self, event: str, binding: Binding) -> None:
        """Emit with an explicit :class:`Binding` (test/bench convenience)."""
        self.emit(event, **dict(binding.items()))

    def emit_selected(
        self,
        event: str,
        params: Mapping[str, Any],
        prop_indexes: Iterable[int],
        record_indexes: "frozenset[int] | set[int] | None" = None,
        pretouched: "Mapping[int, frozenset[frozenset[str]]] | None" = None,
        count_only: Iterable[int] = (),
    ) -> None:
        """External-dispatch hook: deliver ``event`` to a subset of properties.

        The sharded service routes one emitted event to different shards per
        property (each property has its own anchor parameter), so a shard
        engine must be able to dispatch to exactly the properties the router
        selected — never to every property declaring the event, which would
        double-process slices owned by other shards.

        ``prop_indexes`` index into :attr:`properties`; ``record_indexes``
        (default: all of them) name the subset for which this engine is the
        designated event-accountant (see ``PropertyRuntime.handle``).
        ``pretouched`` maps property indexes to the event domains the
        router's sticky state flags as touched elsewhere; ``count_only``
        properties record the event without processing it (the router
        proved the event can do nothing on any shard).
        """
        if self._eager and self._pending_dead:
            self._propagate_deaths()
        if self.on_emit is not None:
            self.on_emit(event, params)
        for index in count_only:
            counter = self.runtimes[index]
            if counter is not None and counter.enabled:
                counter.stats.record_event()
        for index in prop_indexes:
            runtime = self.runtimes[index]
            if runtime is None or not runtime.enabled:
                continue
            if event in runtime.event_domains:
                runtime.handle(
                    event,
                    params,
                    record=record_indexes is None or index in record_indexes,
                    pretouched=None if pretouched is None else pretouched.get(index),
                )

    def emit_selected_batch(
        self,
        deliveries: Sequence[tuple[str, Mapping[str, Any], tuple]],
    ) -> None:
        """Apply a batch of routed deliveries (the shard workers' hot loop).

        Each delivery is ``(event, params, (prop_indexes, record_indexes,
        pretouched, count_only))`` — the shape the service router emits and
        the shard queues/process pipes carry.  Semantics per delivery are
        exactly :meth:`emit_selected`; batching amortizes the per-event
        call and attribute overhead at the queue-drain boundary.
        """
        eager = self._eager
        runtimes = self.runtimes
        if self._batch_selected is not None:
            self._batch_selected.observe(len(deliveries))
        for event, params, (prop_indexes, record_indexes, pretouched, count_only) in deliveries:
            if eager and self._pending_dead:
                self._propagate_deaths()
            if self.on_emit is not None:
                self.on_emit(event, params)
            for index in count_only:
                counter = runtimes[index]
                if counter is not None and counter.enabled:
                    counter.stats.record_event()
            for index in prop_indexes:
                runtime = runtimes[index]
                if runtime is None or not runtime.enabled:
                    continue
                if event in runtime.event_domains:
                    runtime.handle(
                        event,
                        params,
                        record=record_indexes is None or index in record_indexes,
                        pretouched=None if pretouched is None else pretouched.get(index),
                    )

    # -- GC control -----------------------------------------------------------------

    def note_deaths(self, dead: Mapping[str, Iterable[int]]) -> None:
        """Record externally observed parameter deaths for the next boundary.

        ``dead`` maps parameter names to the ``id()``\\ s of objects that
        died while bound under that name — the shape the live
        instrumentation layer's :class:`~repro.instrument.live.LiveBinding`
        drains from its ``weakref`` callbacks.  The deaths are queued and
        propagated at the next *safe event boundary* (the top of the next
        ``emit``), through exactly the coalesced ``purge_ids`` flow the
        engine's own eager watcher uses.

        Under lazy propagation this is a no-op: dead keys are discovered by
        the weak-keyed structures themselves as they are touched, so
        injected knowledge would never be drained.  The method exists so
        external watchers can treat every engine uniformly.

        The external watcher may know about objects the engine's own eager
        watcher never saw (objects that appeared only in touched bindings,
        never in a created monitor); their buckets are purged too, which
        only removes provably dead state.
        """
        if not self._eager:
            return
        with self._dead_lock:
            pending = self._pending_dead
            for name, ids in dead.items():
                # Paused runtimes receive deaths too — the engine's own
                # watcher makes no enabled distinction, and a long-paused
                # property must not accumulate dead-id buckets until it is
                # resumed.
                for index, runtime in enumerate(self.runtimes):
                    if runtime is None:
                        continue
                    if name in runtime.prop.definition.parameters:
                        for dead_id in ids:
                            pending.append((index, name, dead_id))

    def _watch_param(self, runtime_index: int, name: str, value: Any) -> None:
        """Register one (runtime, parameter-name, object) for eager tracking."""
        key = id(value)
        entry = self._watched.get(key)
        if entry is not None:
            if entry[0]() is value:
                entry[1].add((runtime_index, name))
                return
            # Recycled id: the previous holder died but its callback has not
            # fired yet (reference cycles).  Record its death now so the new
            # registration does not shadow it.
            del self._watched[key]
            self._note_dead(entry[1], key)
        try:
            ref = weakref.ref(value, lambda _ref, _key=key: self._on_param_death(_key))
        except TypeError:
            return
        self._watched[key] = (ref, {(runtime_index, name)})

    def _on_param_death(self, key: int) -> None:
        entry = self._watched.get(key)
        if entry is None or entry[0]() is not None:
            # Already handled at re-registration time, or the id was
            # re-registered for a new live object.
            return
        del self._watched[key]
        self._note_dead(entry[1], key)

    def _note_dead(self, positions: set[tuple[int, str]], dead_id: int) -> None:
        with self._dead_lock:
            pending = self._pending_dead
            for runtime_index, name in positions:
                pending.append((runtime_index, name, dead_id))

    def _propagate_deaths(self) -> None:
        """Eager boundary propagation of all deaths since the last event."""
        if self.propagation == "eager_full":
            self.flush_gc()
            return
        with self._dead_lock:
            pending, self._pending_dead = self._pending_dead, []
        per_runtime: dict[int, dict[str, set[int]]] = {}
        for runtime_index, name, dead_id in pending:
            per_runtime.setdefault(runtime_index, {}).setdefault(name, set()).add(
                dead_id
            )
        for runtime_index, dead in per_runtime.items():
            runtime = self.runtimes[runtime_index]
            if runtime is not None:
                runtime.collect_deaths(dead)

    def flush_gc(self) -> None:
        """Fully scan every structure: purge dead keys, notify, compact.

        Lazy mode never needs this (detection happens on access); it exists
        for eager_full propagation, for tests, and for end-of-run
        accounting.

        Two passes, mark-and-sweep style: the first pass may flag a monitor
        *after* some structure holding it was already scanned (scan order
        over the weak maps is arbitrary), so a second pass sweeps the
        now-flagged instances out of every remaining structure.
        """
        with self._dead_lock:
            del self._pending_dead[:]
        for _pass in range(2):
            for runtime in self.runtimes:
                if runtime is not None:
                    runtime.scan_all()

    # -- results ------------------------------------------------------------------------

    def _iter_stats(self) -> Iterable[tuple[str, str, MonitorStats]]:
        """Every stats record, live runtimes first, then retired slots."""
        for runtime in self.runtimes:
            if runtime is not None:
                yield runtime.prop.spec_name, runtime.prop.formalism, runtime.stats
        for spec_name, formalism, stats in self._retired.values():
            yield spec_name, formalism, stats

    def stats(self) -> dict[tuple[str, str], MonitorStats]:
        """Per-property statistics keyed by (spec name, formalism).

        Detached properties stay in the totals: their final statistics were
        folded into the engine at detach time.  When a detached slot shares
        its key with a live runtime (the property was re-registered), the
        records are merged into a fresh object, leaving the live counters
        untouched.
        """
        merged: dict[tuple[str, str], MonitorStats] = {}
        for spec_name, formalism, stats in self._iter_stats():
            key = (spec_name, formalism)
            previous = merged.get(key)
            if previous is None:
                merged[key] = stats
            else:
                merged[key] = MonitorStats.merged([previous, stats])
        return merged

    def stats_for(self, spec_name: str, formalism: str | None = None) -> MonitorStats:
        """One property's counters, merged over formalisms unless one is
        named; raises :class:`KeyError` for unknown properties."""
        matches = [
            stats
            for name, form, stats in self._iter_stats()
            if name == spec_name and (formalism is None or form == formalism)
        ]
        if not matches:
            raise KeyError(f"no runtime for {spec_name}/{formalism}")
        if len(matches) == 1:
            return matches[0]
        return MonitorStats.merged(matches)

    def config(self) -> dict[str, Any]:
        """The constructor knobs that must match across a snapshot/restore
        boundary (the codec records and verifies them)."""
        return {
            "gc": self.gc,
            "propagation": self.propagation,
            "scan_budget": self.scan_budget,
        }

    def stats_snapshot(self) -> dict[str, dict]:
        """Every property's counters as plain JSON-serializable dicts,
        keyed ``"<spec name>/<formalism>"`` — the shape shard workers (or
        operators' metric scrapers) ship across process boundaries.
        Includes retired properties' folded statistics."""
        return {
            f"{spec_name}/{formalism}": stats.snapshot()
            for (spec_name, formalism), stats in self.stats().items()
        }

    def total_live_monitors(self) -> int:
        """Created-minus-collected over every property (incl. retired)."""
        return sum(
            stats.live_monitors for _spec, _form, stats in self._iter_stats()
        )

    def metrics_snapshot(self) -> dict[str, Any]:
        """Live telemetry merged with the stats-derived ``repro_monitor_*``
        series (the paper's E/M/FM/CM counters) — the single-engine
        counterpart of ``MonitorService.metrics_snapshot``."""
        from ..obs.metrics import merge_snapshots
        from ..obs.telemetry import stats_to_metrics

        parts = []
        if self.telemetry is not None:
            parts.append(self.telemetry.snapshot())
        parts.append(stats_to_metrics(self.stats_snapshot()))
        return merge_snapshots(*parts)
