"""The monitoring engine: event dispatch, monitor creation, and lazy GC.

This is the production counterpart of the abstract Algorithm MONITOR
(Figure 5), engineered as in Section 4 of the paper:

* **Indexing trees** (Figure 6): per event-parameter-subset trees locate, in
  a couple of weak-map lookups, every monitor instance more informative
  than the event's binding.
* **Enable-set creation pruning** (Chen et al., ASE'09; the companion of
  coenable sets): a monitor for a new parameter instance is created only if
  the *knowledge* it would start from — the maximal defined sub-instance,
  or a compatible instance found through a join index — has a parameter
  domain in the event's ENABLE set.  A "touched bindings" record (the
  role JavaMOP's disable timestamps play) makes skipping sound: a creation
  that would silently lose previously-skipped events is suppressed, because
  such a slice provably cannot reach the goal.
* **Lazy monitor GC** (Section 4.2): RVMaps detect dead parameter keys
  while being accessed, notify the monitors below, the GC strategy decides
  necessity via ALIVENESS/state formulas, unnecessary monitors are flagged,
  and flagged monitors are physically dropped when the structures holding
  them are next touched.  A monitor is reclaimed by the host GC when the
  last structure lets go — counted via ``weakref.finalize`` as the paper's
  CM column.

``propagation="eager"`` switches to the eager scheme the paper warns about
(Section 4.2: "eager garbage collection ... introduces a very large amount
of runtime overhead"): every parameter death triggers a full scan of every
tree at the next event boundary.  It exists for the ablation benchmark and
as part of the Tracematches cost profile.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, Mapping

from ..core.errors import InconsistentEventError, UnknownEventError
from ..core.params import Binding
from ..spec.compiler import CompiledProperty, CompiledSpec
from .gc_strategies import GcStrategy, make_strategy
from .indexing import IndexingTree, JoinIndex, Leaf
from .instance import MonitorInstance
from .refs import ParamRef
from .statistics import MonitorStats

__all__ = ["MonitoringEngine", "PropertyRuntime", "SYSTEMS"]

#: Named system presets mapping to (gc strategy, propagation) — the three
#: systems of the paper's evaluation (Section 5).
SYSTEMS: dict[str, tuple[str, str]] = {
    "rv": ("coenable", "lazy"),
    "mop": ("alldead", "lazy"),
    "tm": ("statebased", "eager"),
    "none": ("none", "lazy"),
}

#: Verdict callback signature: (property, category, monitor instance).
VerdictCallback = Callable[[CompiledProperty, str, MonitorInstance], None]


class _CreationPlan:
    """Static per-event creation strategy (computed once per property).

    ``self_domains`` — enable domains ``K ⊊ D(e)``, largest first: the
    defineTo sources among sub-instances of the event binding.
    ``allows_fresh`` — whether ``∅`` is an enable domain (the event can open
    a goal trace, so it may create a monitor from scratch).
    ``joins`` — ``(K, key_domain, index)`` triples for enable domains
    incomparable with ``D(e)``: instances of domain ``K`` compatible with
    the event join into instances of domain ``K ∪ D(e)``.
    """

    __slots__ = ("self_domains", "allows_fresh", "joins")

    def __init__(self) -> None:
        self.self_domains: list[frozenset[str]] = []
        self.allows_fresh = False
        self.joins: list[tuple[frozenset[str], tuple[str, ...], JoinIndex]] = []


class PropertyRuntime:
    """Everything the engine maintains for one compiled property."""

    def __init__(
        self,
        prop: CompiledProperty,
        gc: str,
        scan_budget: int,
        on_verdict: VerdictCallback | None,
        on_param_registered: Callable[[Any], None] | None,
    ):
        self.prop = prop
        self.stats = MonitorStats()
        self.strategy: GcStrategy = make_strategy(gc, prop)
        self._on_verdict = on_verdict
        self._on_param_registered = on_param_registered
        self._serial = 0
        self._event_serial = 0

        definition = prop.definition
        self.event_domains: dict[str, frozenset[str]] = {
            event: definition.params_of(event) for event in definition.alphabet
        }
        self._enable_domains: dict[str, frozenset[frozenset[str]]] = dict(
            prop.param_enable
        )
        self.monitor_domains = prop.monitor_domains()
        # One tree per domain of interest; extensions are tracked only where
        # dispatch needs them (domains that are some event's D(e)).
        event_domain_set = set(self.event_domains.values())
        self.trees: dict[frozenset[str], IndexingTree] = {}
        for domain in self.monitor_domains | event_domain_set:
            self.trees[domain] = IndexingTree(
                params=tuple(sorted(domain)),
                tracks_extensions=domain in event_domain_set,
                notify=self._notify_monitor,
                scan_budget=scan_budget,
            )
        self._join_indices: dict[tuple[frozenset[str], frozenset[str]], JoinIndex] = {}
        self._plans: dict[str, _CreationPlan] = {
            event: self._build_plan(event) for event in definition.alphabet
        }

    # -- static precomputation ---------------------------------------------

    def _build_plan(self, event: str) -> _CreationPlan:
        plan = _CreationPlan()
        event_domain = self.event_domains[event]
        seen_self: set[frozenset[str]] = set()
        for enable_domain in self._enable_domains.get(event, ()):
            if not enable_domain:
                plan.allows_fresh = True
            elif enable_domain < event_domain:
                seen_self.add(enable_domain)
            elif enable_domain <= event_domain or event_domain <= enable_domain:
                # K == D(e): the exact instance already exists if it ever will;
                # K ⊃ D(e): instances of domain K are updated, never created here.
                continue
            elif enable_domain in self.monitor_domains:
                key_domain = enable_domain & event_domain
                index_key = (enable_domain, key_domain)
                if index_key not in self._join_indices:
                    self._join_indices[index_key] = JoinIndex(
                        key_params=tuple(sorted(key_domain)),
                        notify=self._notify_monitor,
                    )
                plan.joins.append(
                    (enable_domain, tuple(sorted(key_domain)), self._join_indices[index_key])
                )
        plan.self_domains = sorted(seen_self, key=len, reverse=True)
        plan.joins.sort(key=lambda item: len(item[0]), reverse=True)
        return plan

    # -- GC plumbing -----------------------------------------------------------

    def _notify_monitor(self, monitor: MonitorInstance) -> None:
        """Figure 7A notification: a parameter object below died."""
        if monitor.flagged:
            return
        if self.strategy.is_unnecessary(monitor):
            monitor.flagged = True
            self.stats.record_flag()

    def scan_all(self) -> None:
        """Full dead-key scan of every structure (eager mode / flush)."""
        for tree in self.trees.values():
            tree.scan_all()
        for index in self._join_indices.values():
            index.scan_all()

    # -- event processing --------------------------------------------------------

    def handle(
        self,
        event: str,
        values: Mapping[str, Any],
        record: bool = True,
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> None:
        """Process one parametric event ``event<values>``.

        ``record=False`` processes without counting the event in the stats:
        the sharded service may deliver one event to several shards but
        designates exactly one to account for it, so merged statistics stay
        equal to a single engine's.

        ``pretouched`` names event domains whose sub-binding of this event
        must be treated as *touched before now* even though no local leaf
        says so — the sharded router's stand-in for touch stamps that were
        delivered to other shards (see ``repro.service.router``).
        """
        if record:
            self.stats.record_event()
        self._event_serial += 1
        event_domain = self.event_domains[event]
        try:
            jvalues = {param: values[param] for param in event_domain}
        except KeyError as exc:
            raise InconsistentEventError(
                f"event {event!r} of {self.prop.spec_name} requires parameter "
                f"{exc.args[0]!r}"
            ) from None
        tree = self.trees[event_domain]
        leaf = tree.lookup(jvalues, create=True)
        # Record that this exact binding has seen an event — the disable
        # knowledge used by the creation-validity check.  Stamping the
        # *first* touch serial up front also pins the fresh leaf against
        # concurrent lazy reclamation (see Leaf.touched).
        if leaf.touched is None:
            leaf.touched = self._event_serial
        # 1. Update every instance more informative than the event binding.
        if leaf.extensions is not None:
            for monitor in leaf.extensions.iter_active():
                self._step(monitor, event)
        # 2. Create newly-relevant instances (enable-pruned defineTo / joins).
        self._create_instances(event, event_domain, jvalues, leaf, pretouched)

    def _step(self, monitor: MonitorInstance, event: str) -> None:
        verdict = monitor.base.step(event)
        monitor.last_event = event
        if verdict in self.prop.goal:
            self.stats.record_verdict(verdict)
            self.stats.record_handler()
            self.prop.fire(verdict, monitor.binding())
            if self._on_verdict is not None:
                self._on_verdict(self.prop, verdict, monitor)

    # -- creation ---------------------------------------------------------------

    def _create_instances(
        self,
        event: str,
        event_domain: frozenset[str],
        jvalues: dict[str, Any],
        leaf: Leaf,
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> None:
        plan = self._plans[event]
        # Target = the event binding itself (defineTo from a sub-instance or
        # from scratch).
        own_alive = leaf.own is not None and not leaf.own.flagged
        if not own_alive and (plan.self_domains or plan.allows_fresh):
            source: MonitorInstance | None = None
            source_domain: frozenset[str] = frozenset()
            found = False
            for domain in plan.self_domains:
                sub_leaf = self.trees[domain].lookup(
                    {param: jvalues[param] for param in domain}, create=False
                )
                if sub_leaf is not None and sub_leaf.own is not None and not sub_leaf.own.flagged:
                    source, source_domain, found = sub_leaf.own, domain, True
                    break
            if found or plan.allows_fresh:
                if self._creation_is_valid(jvalues, source_domain, pretouched):
                    self._create(event, jvalues, source)
        # Join targets: compatible instances of incomparable enable domains.
        for join_domain, key_params, index in plan.joins:
            key_values = {param: jvalues[param] for param in key_params}
            for candidate in index.candidates(key_values):
                candidate_values: dict[str, Any] = {}
                dead = False
                for name, ref in candidate.params.items():
                    value = ref.get()
                    if value is None:
                        dead = True
                        break
                    candidate_values[name] = value
                if dead or candidate.domain != join_domain:
                    continue
                target_values = {**candidate_values, **jvalues}
                target_domain = frozenset(target_values)
                target_leaf = self.trees[target_domain].lookup(target_values, create=False)
                if (
                    target_leaf is not None
                    and target_leaf.own is not None
                    and not target_leaf.own.flagged
                ):
                    continue
                if self._creation_is_valid(target_values, join_domain):
                    self._create(event, target_values, candidate)

    def _creation_is_valid(
        self,
        target_values: Mapping[str, Any],
        source_domain: frozenset[str],
        pretouched: frozenset[frozenset[str]] | None = None,
    ) -> bool:
        """No past event would be silently lost by creating from the source.

        Invalid when some event binding ``theta_d ⊑ target`` with
        ``dom(theta_d) ⊄ source`` was *touched before the current event*:
        the target's true slice then contains events the source never saw,
        and — by the enable-set theorem — such a slice cannot reach the
        goal, so the instance must not be created at all (JavaMOP's
        disable-timestamp rule).  A touch stamped by the current event does
        not invalidate: the new monitor receives that event itself.
        """
        target_domain = frozenset(target_values)
        for event_domain in set(self.event_domains.values()):
            if not event_domain or not event_domain <= target_domain:
                continue
            if event_domain <= source_domain:
                continue
            if pretouched is not None and event_domain in pretouched:
                # The router vouches that this sub-binding received events
                # on another shard before now (sticky routing's stand-in
                # for a local touch stamp).
                return False
            sub_leaf = self.trees[event_domain].lookup(
                {param: target_values[param] for param in event_domain}, create=False
            )
            if (
                sub_leaf is not None
                and sub_leaf.touched is not None
                and sub_leaf.touched < self._event_serial
            ):
                return False
        return True

    def _create(
        self,
        event: str,
        target_values: Mapping[str, Any],
        source: MonitorInstance | None,
    ) -> None:
        base = source.base.clone() if source is not None else self.prop.template.create()
        params = {name: ParamRef(value) for name, value in target_values.items()}
        self._serial += 1
        monitor = MonitorInstance(self.prop, base, params, self._serial)
        self._insert(monitor, target_values)
        self.stats.record_creation()
        weakref.finalize(monitor, self.stats.record_collection)
        if self._on_param_registered is not None:
            for value in target_values.values():
                self._on_param_registered(value)
        self._step(monitor, event)

    def _insert(self, monitor: MonitorInstance, values: Mapping[str, Any]) -> None:
        domain = frozenset(values)
        own_leaf = self.trees[domain].lookup(values, create=True)
        own_leaf.own = monitor
        for event_domain in set(self.event_domains.values()):
            if event_domain <= domain:
                leaf = self.trees[event_domain].lookup(
                    {param: values[param] for param in event_domain}, create=True
                )
                if leaf.extensions is not None:
                    leaf.extensions.add(monitor)
        for (join_domain, key_domain), index in self._join_indices.items():
            if join_domain == domain:
                index.add(
                    {param: values[param] for param in key_domain}, monitor
                )

    # -- introspection -------------------------------------------------------------

    def live_instances(self) -> list[MonitorInstance]:
        """Unflagged instances currently reachable through the trees."""
        seen: dict[int, MonitorInstance] = {}
        for tree in self.trees.values():
            for leaf in tree.walk_leaves():
                for monitor in leaf.monitors():
                    if not monitor.flagged:
                        seen[id(monitor)] = monitor
        return list(seen.values())

    # -- persistence (the checkpoint codec's view) -------------------------------

    def iter_reachable_instances(self) -> Iterable[MonitorInstance]:
        """Every unflagged instance held by any structure, deduplicated.

        Beyond :meth:`live_instances` this walks the join indices too: an
        instance whose tree paths all died can survive in a join bucket
        under its live key sub-binding, and the codec must capture it there
        or the restored run would under-count its eventual collection.
        """
        seen: dict[int, MonitorInstance] = {}
        for tree in self.trees.values():
            for leaf in tree.walk_leaves():
                for monitor in leaf.monitors():
                    if not monitor.flagged:
                        seen.setdefault(id(monitor), monitor)
        for index in self._join_indices.values():
            for bucket in index.walk_leaves():
                for monitor in bucket:
                    if not monitor.flagged:
                        seen.setdefault(id(monitor), monitor)
        return list(seen.values())

    def export_persist_state(self, symbol_of: Callable[[Any], str]) -> dict:
        """Serialize this runtime's dynamic state (codec payload).

        Call only on a freshly flushed engine (see
        :func:`repro.persist.codec.snapshot_engine`): flushing delivers all
        pending dead-key notifications and physically removes flagged
        instances, so the remaining state is exactly the
        behavior-determining part.
        """
        monitors = sorted(
            self.iter_reachable_instances(), key=lambda monitor: monitor.serial
        )
        touched = []
        for domain, tree in self.trees.items():
            for values, leaf in tree.walk_items():
                if leaf.touched is not None:
                    touched.append(
                        {
                            "params": {
                                name: symbol_of(value) for name, value in values.items()
                            },
                            "serial": leaf.touched,
                        }
                    )
        return {
            "serial": self._serial,
            "event_serial": self._event_serial,
            "stats": self.stats.snapshot(),
            "monitors": [monitor.snapshot_payload(symbol_of) for monitor in monitors],
            "touched": touched,
        }

    def import_persist_state(self, payload: Mapping[str, Any], tokens: Mapping[str, Any]) -> None:
        """Rebuild dynamic state from :meth:`export_persist_state` output.

        Must run on a virgin runtime (no events processed).  ``tokens``
        maps live symbols to their restored stand-in objects; insertion
        order follows monitor serials, reproducing the live engine's
        creation-ordered set contents.
        """
        self._serial = payload["serial"]
        self._event_serial = payload["event_serial"]
        self.stats = MonitorStats.from_snapshot(payload["stats"])
        for record in payload["touched"]:
            values = {name: tokens[symbol] for name, symbol in record["params"].items()}
            leaf = self.trees[frozenset(values)].lookup(values, create=True)
            leaf.touched = record["serial"]
        for monitor_payload in payload["monitors"]:
            monitor = MonitorInstance.from_payload(self.prop, monitor_payload, tokens)
            self._restore_insert(monitor)
            weakref.finalize(monitor, self.stats.record_collection)
            if self._on_param_registered is not None:
                for ref in monitor.params.values():
                    value = ref.get()
                    if value is not None:
                        self._on_param_registered(value)

    def _restore_insert(self, monitor: MonitorInstance) -> None:
        """Dead-aware :meth:`_insert`: entries are re-created only along
        all-live key paths — the paths a freshly flushed live engine still
        holds (dead-keyed entries were purged before the snapshot)."""
        live: dict[str, Any] = {}
        dead: set[str] = set()
        for name, ref in monitor.params.items():
            value = ref.get()
            if value is None:
                dead.add(name)
            else:
                live[name] = value
        domain = monitor.domain
        if not dead:
            own_leaf = self.trees[domain].lookup(live, create=True)
            own_leaf.own = monitor
        for event_domain in set(self.event_domains.values()):
            if event_domain <= domain and not (event_domain & dead):
                leaf = self.trees[event_domain].lookup(
                    {name: live[name] for name in event_domain}, create=True
                )
                if leaf.extensions is not None:
                    leaf.extensions.add(monitor)
        for (join_domain, key_domain), index in self._join_indices.items():
            if join_domain == domain and not (key_domain & dead):
                index.add({name: live[name] for name in key_domain}, monitor)


class MonitoringEngine:
    """Hosts any number of compiled specifications over one event stream.

    ``gc`` selects the monitor-collection strategy (``none`` / ``alldead`` /
    ``coenable`` / ``statebased``), ``propagation`` is ``lazy`` (the paper's
    design) or ``eager`` (the ablation); ``system`` is a convenience preset:
    ``rv`` / ``mop`` / ``tm`` / ``none`` (see :data:`SYSTEMS`).
    """

    def __init__(
        self,
        specs: Iterable[CompiledSpec | CompiledProperty] | CompiledSpec | CompiledProperty,
        gc: str | None = None,
        propagation: str | None = None,
        system: str | None = None,
        scan_budget: int = 2,
        on_verdict: VerdictCallback | None = None,
    ):
        if system is not None:
            if gc is not None or propagation is not None:
                raise ValueError("pass either system= or gc=/propagation=, not both")
            gc, propagation = SYSTEMS[system]
        gc = gc if gc is not None else "coenable"
        propagation = propagation if propagation is not None else "lazy"
        if propagation not in ("lazy", "eager"):
            raise ValueError(f"unknown propagation {propagation!r}")
        self.gc = gc
        self.propagation = propagation
        self.scan_budget = scan_budget

        if isinstance(specs, (CompiledSpec, CompiledProperty)):
            specs = [specs]
        self.properties: list[CompiledProperty] = []
        for spec in specs:
            if isinstance(spec, CompiledSpec):
                self.properties.extend(spec.properties)
            else:
                self.properties.append(spec)

        self._pending_deaths = 0
        self._death_watchers: set[weakref.ref] = set()
        self._watched_ids: set[int] = set()
        #: Optional tap invoked as ``on_emit(event, params)`` for every
        #: emitted event, before dispatch (used by runtime.tracelog).
        self.on_emit = None
        on_param = self._watch_param if propagation == "eager" else None
        self.runtimes: list[PropertyRuntime] = [
            PropertyRuntime(
                prop,
                gc=gc,
                scan_budget=scan_budget,
                on_verdict=on_verdict,
                on_param_registered=on_param,
            )
            for prop in self.properties
        ]
        self._by_event: dict[str, list[PropertyRuntime]] = {}
        for runtime in self.runtimes:
            for event in runtime.prop.definition.alphabet:
                self._by_event.setdefault(event, []).append(runtime)

    # -- the public event interface ---------------------------------------------

    def emit(self, event: str, _strict: bool = True, **params: Any) -> None:
        """Emit one parametric event to every property that declares it.

        Each receiving property restricts the binding to its own ``D(e)``;
        a property missing a required parameter raises
        :class:`InconsistentEventError`.  With ``_strict=False`` an event no
        property declares is silently dropped — the instrumentation layer
        uses this because a woven program point may produce events for
        specifications that are not currently monitored.
        """
        if self.propagation == "eager" and self._pending_deaths:
            self.flush_gc()
        if self.on_emit is not None:
            self.on_emit(event, params)
        runtimes = self._by_event.get(event)
        if not runtimes:
            if _strict:
                raise UnknownEventError(
                    f"no monitored specification declares event {event!r}"
                )
            return
        for runtime in runtimes:
            runtime.handle(event, params)

    def emit_binding(self, event: str, binding: Binding) -> None:
        """Emit with an explicit :class:`Binding` (test/bench convenience)."""
        self.emit(event, **dict(binding.items()))

    def emit_selected(
        self,
        event: str,
        params: Mapping[str, Any],
        prop_indexes: Iterable[int],
        record_indexes: "frozenset[int] | set[int] | None" = None,
        pretouched: "Mapping[int, frozenset[frozenset[str]]] | None" = None,
        count_only: Iterable[int] = (),
    ) -> None:
        """External-dispatch hook: deliver ``event`` to a subset of properties.

        The sharded service routes one emitted event to different shards per
        property (each property has its own anchor parameter), so a shard
        engine must be able to dispatch to exactly the properties the router
        selected — never to every property declaring the event, which would
        double-process slices owned by other shards.

        ``prop_indexes`` index into :attr:`properties`; ``record_indexes``
        (default: all of them) name the subset for which this engine is the
        designated event-accountant (see :meth:`PropertyRuntime.handle`).
        ``pretouched`` maps property indexes to the event domains the
        router's sticky state flags as touched elsewhere; ``count_only``
        properties record the event without processing it (the router
        proved the event can do nothing on any shard).
        """
        if self.propagation == "eager" and self._pending_deaths:
            self.flush_gc()
        if self.on_emit is not None:
            self.on_emit(event, params)
        for index in count_only:
            self.runtimes[index].stats.record_event()
        for index in prop_indexes:
            runtime = self.runtimes[index]
            if event in runtime.event_domains:
                runtime.handle(
                    event,
                    params,
                    record=record_indexes is None or index in record_indexes,
                    pretouched=None if pretouched is None else pretouched.get(index),
                )

    # -- GC control -----------------------------------------------------------------

    def _watch_param(self, value: Any) -> None:
        if id(value) in self._watched_ids:
            return
        try:
            ref = weakref.ref(value, self._on_param_death)
        except TypeError:
            return
        self._watched_ids.add(id(value))
        self._death_watchers.add(ref)

    def _on_param_death(self, ref: weakref.ref) -> None:
        self._pending_deaths += 1
        self._death_watchers.discard(ref)

    def flush_gc(self) -> None:
        """Fully scan every structure: purge dead keys, notify, compact.

        Lazy mode never needs this (detection happens on access); it exists
        for eager propagation, for tests, and for end-of-run accounting.

        Two passes, mark-and-sweep style: the first pass may flag a monitor
        *after* some structure holding it was already scanned (scan order
        over the weak maps is arbitrary), so a second pass sweeps the
        now-flagged instances out of every remaining structure.
        """
        self._pending_deaths = 0
        for _pass in range(2):
            for runtime in self.runtimes:
                runtime.scan_all()

    # -- results ------------------------------------------------------------------------

    def stats(self) -> dict[tuple[str, str], MonitorStats]:
        """Per-property statistics keyed by (spec name, formalism)."""
        return {
            (runtime.prop.spec_name, runtime.prop.formalism): runtime.stats
            for runtime in self.runtimes
        }

    def stats_for(self, spec_name: str, formalism: str | None = None) -> MonitorStats:
        for runtime in self.runtimes:
            if runtime.prop.spec_name == spec_name and (
                formalism is None or runtime.prop.formalism == formalism
            ):
                return runtime.stats
        raise KeyError(f"no runtime for {spec_name}/{formalism}")

    def config(self) -> dict[str, Any]:
        """The constructor knobs that must match across a snapshot/restore
        boundary (the codec records and verifies them)."""
        return {
            "gc": self.gc,
            "propagation": self.propagation,
            "scan_budget": self.scan_budget,
        }

    def stats_snapshot(self) -> dict[str, dict]:
        """Every property's counters as plain JSON-serializable dicts,
        keyed ``"<spec name>/<formalism>"`` — the shape shard workers (or
        operators' metric scrapers) ship across process boundaries."""
        return {
            f"{runtime.prop.spec_name}/{runtime.prop.formalism}": runtime.stats.snapshot()
            for runtime in self.runtimes
        }

    def total_live_monitors(self) -> int:
        return sum(runtime.stats.live_monitors for runtime in self.runtimes)
