"""Monitor garbage-collection strategies.

A strategy answers one question when a monitor instance is notified that
some parameter object died: *is this instance now unnecessary?*  Flagged
instances are lazily removed from the data structures (Section 4.2); a
monitor is physically reclaimed by the host GC once no structure holds it.

The strategies model the three systems the paper evaluates:

* :class:`NoGc` — never flag (pure baseline; monitors die only when their
  whole indexing subtree dies);
* :class:`AllParamsDead` — JavaMOP: an instance is collectable only when
  *all* bound parameter objects are dead ("which ensures that no event can
  happen to the corresponding monitor instance");
* :class:`CoenableGc` — the RV system: evaluate the precompiled
  ``ALIVENESS(last event)`` formula (Sections 3, 4.2.2);
* :class:`StateBasedGc` — the Tracematches analog: "coenable sets indexed by
  state rather than events" (Section 3's discussion).  More precise, but
  limited to finite-state formalisms — constructing it for a CFG property
  raises :class:`~repro.core.errors.UnsupportedFormalismError`, reproducing
  the paper's point that a state-based technique cannot handle context-free
  properties.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..core.aliveness import AlivenessFormula
from ..core.coenable import lift_to_params
from ..core.errors import UnsupportedFormalismError
from .instance import MonitorInstance

if TYPE_CHECKING:  # pragma: no cover
    from ..spec.compiler import CompiledProperty

__all__ = [
    "GcStrategy",
    "NoGc",
    "AllParamsDead",
    "CoenableGc",
    "StateBasedGc",
    "make_strategy",
    "STRATEGY_NAMES",
]


class GcStrategy(abc.ABC):
    """Decides monitor-instance collectability on parameter-death
    notifications."""

    name: str

    @abc.abstractmethod
    def is_unnecessary(self, monitor: MonitorInstance) -> bool:
        """True when the instance can never trigger again and may be flagged."""


class NoGc(GcStrategy):
    """Never flag anything."""

    name = "none"

    def is_unnecessary(self, monitor: MonitorInstance) -> bool:
        return False


class AllParamsDead(GcStrategy):
    """JavaMOP's rule: collectable iff every bound parameter object is dead."""

    name = "alldead"

    def is_unnecessary(self, monitor: MonitorInstance) -> bool:
        return monitor.all_params_dead()


class CoenableGc(GcStrategy):
    """The RV rule: ``ALIVENESS(last event)`` must still be satisfiable.

    The formulas were compiled from the parameter coenable sets at spec
    compilation time; evaluation touches only the monitor's own weak refs,
    which is what makes the per-notification check cheap.
    """

    name = "coenable"

    def __init__(self, prop: "CompiledProperty"):
        self._aliveness = prop.aliveness

    def is_unnecessary(self, monitor: MonitorInstance) -> bool:
        if monitor.last_event is None:
            # Never received an event — cannot consult ALIVENESS; keep.
            return monitor.all_params_dead()
        formula = self._aliveness.get(monitor.last_event)
        if formula is None:
            return monitor.all_params_dead()
        # Fused formula.evaluate(monitor.param_alive): one notification per
        # parameter death makes this the hottest interpreted check in the
        # lazy path, so the liveness atoms read the raw ref fields directly
        # (unbound parameters count as alive — Theorem 1).
        params = monitor.params
        for conjunct in formula._conjuncts:
            for name in conjunct:
                ref = params.get(name)
                if ref is None:
                    continue
                weak = ref._weak
                if (weak() if weak is not None else ref._strong) is None:
                    break
            else:
                return False
        return True


class StateBasedGc(GcStrategy):
    """The Tracematches analog: liveness requirements indexed by monitor state.

    For each FSM state ``s`` the formula is the parameter lift of
    ``SEEABLE(s)`` — the exact event sets on paths from ``s`` to the goal —
    which is at least as precise as the event-indexed coenable sets (the
    event-indexed family is the union of ``SEEABLE`` over the event's
    successor states).
    """

    name = "statebased"

    def __init__(self, prop: "CompiledProperty"):
        template = prop.template
        if not template.supports_state_gc:
            raise UnsupportedFormalismError(
                f"{prop.spec_name}/{prop.formalism}: the state-based (Tracematches) "
                "strategy requires a finite-state formalism; context-free "
                "properties have an unbounded state space (paper, Section 3)"
            )
        state_families = template.state_coenable_sets(prop.goal)
        self._formulas: dict[str, AlivenessFormula] = {
            state: AlivenessFormula(lift_to_params(family, prop.definition))
            for state, family in state_families.items()
        }

    def is_unnecessary(self, monitor: MonitorInstance) -> bool:
        state = getattr(monitor.base, "state", None)
        if state is None:
            return monitor.all_params_dead()
        formula = self._formulas.get(state)
        if formula is None:
            # Unknown state (e.g. the implicit fail sink of a fresh machine):
            # nothing can be seen from it, so the monitor is unnecessary.
            return True
        return not formula.evaluate(monitor.param_alive)


STRATEGY_NAMES = ("none", "alldead", "coenable", "statebased")


def make_strategy(kind: str, prop: "CompiledProperty") -> GcStrategy:
    """Build the per-property strategy object for ``kind``."""
    if kind == "none":
        return NoGc()
    if kind == "alldead":
        return AllParamsDead()
    if kind == "coenable":
        return CoenableGc(prop)
    if kind == "statebased":
        return StateBasedGc(prop)
    raise ValueError(f"unknown GC strategy {kind!r}; choose from {STRATEGY_NAMES}")
