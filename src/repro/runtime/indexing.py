"""Indexing trees (Section 4.1, Figure 6).

One tree exists per parameter subset of interest.  A tree for domain
``<c, i>`` is a two-level nest of :class:`~repro.runtime.rvmap.RVMap`s —
first keyed by the ``c`` object, then by the ``i`` object — whose leaves
carry:

* ``own``        — the monitor instance whose binding is *exactly* the leaf's
  binding (the ``Delta`` table entry);
* ``extensions`` — an :class:`~repro.runtime.rvset.RVSet` of every monitor
  *more informative* than the leaf's binding (what event dispatch iterates;
  only maintained for trees whose domain is some event's ``D(e)``);
* ``touched``    — whether any event with exactly this binding was ever
  received (the "disable" knowledge JavaMOP tracks with timestamps, used to
  keep skipped-creation semantics sound — see
  :meth:`repro.runtime.engine.PropertyRuntime._creation_is_valid`).

A :class:`JoinIndex` is the auxiliary structure for cross-binding joins: for
a statically-determined pair (event domain ``J``, enable domain ``K``) with
``K ⊄ J ⊅ K``, it indexes the domain-``K`` monitor instances by their
``K ∩ J`` sub-binding so the engine can find join candidates without
scanning ``Theta``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from .instance import MonitorInstance
from .rvmap import DROP, KEEP, RVMap
from .rvset import RVSet

__all__ = ["Leaf", "IndexingTree", "JoinIndex"]


class Leaf:
    """The record at the bottom of an indexing tree.

    ``touched`` is the serial number of the *first* event that carried
    exactly this leaf's binding, or ``None``.  The engine stamps it at the
    start of event processing, which both records the disable knowledge
    (validity checks compare serials: only strictly-earlier touches
    invalidate a creation) and keeps the fresh leaf non-empty so a
    concurrent lazy scan cannot reclaim it mid-dispatch.
    """

    __slots__ = ("own", "extensions", "touched")

    def __init__(self, tracks_extensions: bool):
        self.own: MonitorInstance | None = None
        self.extensions: RVSet | None = RVSet() if tracks_extensions else None
        self.touched: int | None = None

    def is_empty(self) -> bool:
        no_own = self.own is None or self.own.flagged
        no_extensions = not self.extensions or not any(
            not monitor.flagged for monitor in self.extensions
        )
        return no_own and no_extensions and self.touched is None

    def monitors(self) -> Iterator[MonitorInstance]:
        if self.own is not None:
            yield self.own
        if self.extensions is not None:
            yield from self.extensions


class _TreeBase:
    """Shared machinery: nested RVMap levels with notification plumbing."""

    def __init__(
        self,
        params: tuple[str, ...],
        notify: Callable[[MonitorInstance], None],
        scan_budget: int = 2,
    ):
        self.params = params
        self._notify = notify
        self._scan_budget = scan_budget
        self._root: Any = self._new_node(depth=0)

    # -- node construction ---------------------------------------------------

    def _new_node(self, depth: int) -> Any:
        if depth == len(self.params):
            return self._new_leaf()
        return RVMap(
            on_dead_value=self._notify_subtree,
            inspect_value=self._inspect,
            scan_budget=self._scan_budget,
        )

    def _new_leaf(self) -> Any:
        raise NotImplementedError

    # -- GC plumbing -----------------------------------------------------------

    def _notify_subtree(self, node: Any) -> None:
        """Figure 7A: a key died — notify every monitor under ``node``."""
        if isinstance(node, RVMap):
            for value in node.all_values():
                self._notify_subtree(value)
        elif isinstance(node, Leaf):
            for monitor in node.monitors():
                self._notify(monitor)
        elif isinstance(node, RVSet):
            for monitor in node:
                self._notify(monitor)

    def _inspect(self, node: Any) -> bool:
        """Section 5.1.1: clean live entries' values during scans."""
        if isinstance(node, RVMap):
            return KEEP if node else DROP
        if isinstance(node, Leaf):
            if node.own is not None and node.own.flagged:
                node.own = None
            if node.extensions is not None:
                node.extensions.compact()
            return KEEP if not node.is_empty() else DROP
        if isinstance(node, RVSet):
            node.compact()
            return KEEP if node else DROP
        return KEEP

    # -- traversal ---------------------------------------------------------------

    def lookup(self, values: Mapping[str, Any], create: bool) -> Any | None:
        """Walk the levels with the parameter objects in ``values``.

        Returns the leaf (creating the spine if ``create``), or ``None``.
        Every step performs the RVMap's incremental dead-key scan — this is
        what makes collection *lazy*: detection happens on access.
        """
        node = self._root
        for depth, param in enumerate(self.params):
            obj = values[param]
            child = node.get(obj)
            if child is None:
                if not create:
                    return None
                child = self._new_node(depth + 1)
                node.put(obj, child)
            node = child
        return node

    def walk_leaves(self) -> Iterator[Any]:
        """Every leaf currently in the tree (live keys only)."""

        def walk(node: Any) -> Iterator[Any]:
            if isinstance(node, RVMap):
                for value in node.values():
                    yield from walk(value)
            else:
                yield node

        yield from walk(self._root)

    def walk_items(self) -> Iterator[tuple[dict[str, Any], Any]]:
        """Every leaf with its (all-live) key path as a ``{param: object}``
        dict — the checkpoint codec's view of the tree.  Leaves whose spine
        contains a dead key are unreachable by lookup (lookups always carry
        live objects) and are skipped, exactly as a lazy scan would
        eventually purge them."""

        def walk(node: Any, depth: int, values: dict[str, Any]) -> Iterator:
            if isinstance(node, RVMap):
                for referent, value in node.items():
                    yield from walk(
                        value, depth + 1, {**values, self.params[depth]: referent}
                    )
            else:
                yield values, node

        yield from walk(self._root, 0, {})

    def scan_all(self) -> None:
        """Full dead-key scan of every level (eager propagation / tests).

        A zero-parameter structure degenerates to a bare root leaf (e.g. a
        join index with an empty key domain); there is no RVMap above it to
        compact it during scans, so flagged instances are swept here.
        """

        def walk(node: Any) -> None:
            if isinstance(node, RVMap):
                node.scan_all()
                for value in node.values():
                    walk(value)
            elif isinstance(node, RVSet):
                node.compact()
            elif isinstance(node, Leaf):
                if node.own is not None and node.own.flagged:
                    node.own = None
                if node.extensions is not None:
                    node.extensions.compact()

        walk(self._root)


class IndexingTree(_TreeBase):
    """A per-domain tree with :class:`Leaf` bottoms (Figure 6)."""

    def __init__(
        self,
        params: tuple[str, ...],
        tracks_extensions: bool,
        notify: Callable[[MonitorInstance], None],
        scan_budget: int = 2,
    ):
        self.tracks_extensions = tracks_extensions
        super().__init__(params, notify, scan_budget)

    def _new_leaf(self) -> Leaf:
        return Leaf(self.tracks_extensions)

    def lookup_leaf(self, values: Mapping[str, Any], create: bool) -> Leaf | None:
        leaf = self.lookup(values, create)
        return leaf  # type: ignore[return-value]


class JoinIndex(_TreeBase):
    """Index of domain-``K`` instances by their ``K ∩ J`` sub-binding.

    With an empty key domain (``K ∩ J = ∅``) the index degenerates to the
    single set of *all* domain-``K`` instances.
    """

    def __init__(
        self,
        key_params: tuple[str, ...],
        notify: Callable[[MonitorInstance], None],
        scan_budget: int = 2,
    ):
        super().__init__(key_params, notify, scan_budget)

    def _new_leaf(self) -> RVSet:
        return RVSet()

    def add(self, values: Mapping[str, Any], monitor: MonitorInstance) -> None:
        bucket = self.lookup(values, create=True)
        bucket.add(monitor)

    def candidates(self, values: Mapping[str, Any]) -> Iterator[MonitorInstance]:
        bucket = self.lookup(values, create=False)
        if bucket is None:
            return iter(())
        return bucket.iter_active()
