"""Indexing trees (Section 4.1, Figure 6).

One tree exists per parameter subset of interest.  A tree for domain
``<c, i>`` is a two-level nest of :class:`~repro.runtime.rvmap.RVMap`s —
first keyed by the ``c`` object, then by the ``i`` object — whose leaves
carry:

* ``own``        — the monitor instance whose binding is *exactly* the leaf's
  binding (the ``Delta`` table entry);
* ``extensions`` — an :class:`~repro.runtime.rvset.RVSet` of every monitor
  *more informative* than the leaf's binding (what event dispatch iterates;
  only maintained for trees whose domain is some event's ``D(e)``);
* ``touched``    — whether any event with exactly this binding was ever
  received (the "disable" knowledge JavaMOP tracks with timestamps, used to
  keep skipped-creation semantics sound — see
  :meth:`repro.runtime.engine.PropertyRuntime._creation_is_valid`).

The compiled dispatch layer walks trees with *value tuples* in the tree's
parameter order (:meth:`_TreeBase.lookup_vals`) — no per-event dict
construction; the mapping-keyed :meth:`_TreeBase.lookup` remains for the
reference path, restores and tests.  Each level's incremental scan uses an
``inspect_value`` callback specialized at construction to the kind of value
that level holds (submap / leaf / bucket), so the per-operation cleanup of
Section 5.1.1 costs no dynamic type dispatch.

A :class:`JoinIndex` is the auxiliary structure for cross-binding joins: for
a statically-determined pair (event domain ``J``, enable domain ``K``) with
``K ⊄ J ⊅ K``, it indexes the domain-``K`` monitor instances by their
``K ∩ J`` sub-binding so the engine can find join candidates without
scanning ``Theta``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

from .instance import MonitorInstance
from .rvmap import DROP, KEEP, RVMap
from .rvset import RVSet

__all__ = ["Leaf", "IndexingTree", "JoinIndex"]


class Leaf:
    """The record at the bottom of an indexing tree.

    ``touched`` is the serial number of the *first* event that carried
    exactly this leaf's binding, or ``None``.  The engine stamps it at the
    start of event processing, which both records the disable knowledge
    (validity checks compare serials: only strictly-earlier touches
    invalidate a creation) and keeps the fresh leaf non-empty so a
    concurrent lazy scan cannot reclaim it mid-dispatch.
    """

    __slots__ = ("own", "extensions", "touched")

    def __init__(self, tracks_extensions: bool):
        self.own: MonitorInstance | None = None
        self.extensions: RVSet | None = RVSet() if tracks_extensions else None
        self.touched: int | None = None

    def is_empty(self) -> bool:
        # Hand-rolled (no generator allocation): this predicate runs inside
        # every incremental scan, i.e. on nearly every map operation.
        if self.touched is not None:
            return False
        own = self.own
        if own is not None and not own.flagged:
            return False
        extensions = self.extensions
        if extensions is not None:
            for monitor in extensions._items:
                if not monitor.flagged:
                    return False
        return True

    def monitors(self) -> Iterator[MonitorInstance]:
        if self.own is not None:
            yield self.own
        if self.extensions is not None:
            yield from self.extensions


class _TreeBase:
    """Shared machinery: nested RVMap levels with notification plumbing."""

    def __init__(
        self,
        params: tuple[str, ...],
        notify: Callable[[MonitorInstance], None],
        scan_budget: int = 2,
    ):
        self.params = params
        self._notify = notify
        self._scan_budget = scan_budget
        self._root: Any = self._new_node(depth=0)

    # -- node construction ---------------------------------------------------

    def _new_node(self, depth: int) -> Any:
        if depth == len(self.params):
            return self._new_leaf()
        # A map at this depth holds leaves when the next depth is the last;
        # binding the matching inspector here removes isinstance dispatch
        # from the per-operation scan path.
        holds_leaves = depth + 1 == len(self.params)
        return RVMap(
            on_dead_value=self._notify_subtree,
            inspect_value=self._inspect_leaf if holds_leaves else self._inspect_map,
            scan_budget=self._scan_budget,
        )

    def _new_leaf(self) -> Any:
        raise NotImplementedError

    # -- GC plumbing -----------------------------------------------------------

    def _notify_subtree(self, node: Any) -> None:
        """Figure 7A: a key died — notify every monitor under ``node``."""
        if isinstance(node, RVMap):
            for value in node.all_values():
                self._notify_subtree(value)
        elif isinstance(node, Leaf):
            for monitor in node.monitors():
                self._notify(monitor)
        elif isinstance(node, RVSet):
            for monitor in node:
                self._notify(monitor)

    def _inspect_map(self, node: RVMap) -> bool:
        """Section 5.1.1: drop empty submaps during scans."""
        return KEEP if node._buckets else DROP

    def _inspect_leaf(self, node: Any) -> bool:
        raise NotImplementedError

    # -- traversal ---------------------------------------------------------------

    def lookup_vals(self, values: Sequence[Any], create: bool) -> Any | None:
        """Walk the levels with parameter objects in tree-parameter order.

        The compiled hot path: ``values`` is a tuple aligned with
        ``self.params``.  Returns the leaf (creating the spine if
        ``create``), or ``None``.  Every step performs the RVMap's
        incremental dead-key scan — this is what makes collection *lazy*:
        detection happens on access.
        """
        # RVMap.get is inlined here (scan, then identity probe): this walk
        # is the single hottest loop in event dispatch.
        node = self._root
        if create:
            depth = 0
            for obj in values:
                node.scan_some()
                child = None
                bucket = node._buckets.get(id(obj))
                if bucket:
                    for ref, value in bucket:
                        weak = ref._weak
                        if (weak() if weak is not None else ref._strong) is obj:
                            child = value
                            break
                if child is None:
                    child = self._new_node(depth + 1)
                    node.put_fresh(obj, child)
                node = child
                depth += 1
            return node
        for obj in values:
            node.scan_some()
            bucket = node._buckets.get(id(obj))
            child = None
            if bucket:
                for ref, value in bucket:
                    weak = ref._weak
                    if (weak() if weak is not None else ref._strong) is obj:
                        child = value
                        break
            if child is None:
                return None
            node = child
        return node

    def lookup(self, values: Mapping[str, Any], create: bool) -> Any | None:
        """Mapping-keyed :meth:`lookup_vals` (reference path, restores, tests)."""
        node = self._root
        for depth, param in enumerate(self.params):
            obj = values[param]
            child = node.get(obj)
            if child is None:
                if not create:
                    return None
                child = self._new_node(depth + 1)
                node.put_fresh(obj, child)
            node = child
        return node

    def walk_leaves(self) -> Iterator[Any]:
        """Every leaf currently in the tree (live keys only)."""

        def walk(node: Any) -> Iterator[Any]:
            if isinstance(node, RVMap):
                for value in node.values():
                    yield from walk(value)
            else:
                yield node

        yield from walk(self._root)

    def walk_items(self) -> Iterator[tuple[dict[str, Any], Any]]:
        """Every leaf with its (all-live) key path as a ``{param: object}``
        dict — the checkpoint codec's view of the tree.  Leaves whose spine
        contains a dead key are unreachable by lookup (lookups always carry
        live objects) and are skipped, exactly as a lazy scan would
        eventually purge them."""

        def walk(node: Any, depth: int, values: dict[str, Any]) -> Iterator:
            if isinstance(node, RVMap):
                for referent, value in node.items():
                    yield from walk(
                        value, depth + 1, {**values, self.params[depth]: referent}
                    )
            else:
                yield values, node

        yield from walk(self._root, 0, {})

    def scan_all(self) -> None:
        """Full dead-key scan of every level (eager propagation / tests).

        A zero-parameter structure degenerates to a bare root leaf (e.g. a
        join index with an empty key domain); there is no RVMap above it to
        compact it during scans, so flagged instances are swept here.
        """

        def walk(node: Any) -> None:
            if isinstance(node, RVMap):
                node.scan_all()
                for value in node.values():
                    walk(value)
            elif isinstance(node, RVSet):
                node.compact()
            elif isinstance(node, Leaf):
                if node.own is not None and node.own.flagged:
                    node.own = None
                if node.extensions is not None:
                    node.extensions.compact()

        walk(self._root)

    def release(self) -> None:
        """Tear the structure down for property detach.

        Recursively empties every level and severs the bound-method
        callbacks that tie the RVMaps back to this tree (see
        :meth:`RVMap.release`), so the whole structure — and every monitor
        it holds — becomes reclaimable by reference counting the moment
        the runtime lets go.
        """

        def walk(node: Any) -> None:
            if isinstance(node, RVMap):
                for value in node.all_values():
                    walk(value)
                node.release()

        walk(self._root)

    def purge_ids(self, ids_by_depth: Mapping[int, set[int]]) -> None:
        """Targeted dead-key purge: scan only the buckets of known-dead ids.

        ``ids_by_depth`` maps a level (position in :attr:`params`) to the
        ``id()``s of parameter objects known to have died at that level.
        The eager-propagation flush uses this instead of a full
        :meth:`scan_all`: finding a dead key is O(maps at its level), not
        O(every bucket of every level).  Scanning a bucket notifies the
        monitors below the broken mapping and removes it — exactly what a
        full scan would eventually do for these keys.
        """
        if not ids_by_depth:
            return
        max_depth = max(ids_by_depth)

        def walk(node: Any, depth: int) -> None:
            if not isinstance(node, RVMap):
                return
            dead_ids = ids_by_depth.get(depth)
            if dead_ids:
                for dead_id in dead_ids:
                    node._scan_bucket(dead_id)
            if depth < max_depth:
                for value in node.all_values():
                    walk(value, depth + 1)

        walk(self._root, 0)


class IndexingTree(_TreeBase):
    """A per-domain tree with :class:`Leaf` bottoms (Figure 6)."""

    def __init__(
        self,
        params: tuple[str, ...],
        tracks_extensions: bool,
        notify: Callable[[MonitorInstance], None],
        scan_budget: int = 2,
    ):
        self.tracks_extensions = tracks_extensions
        super().__init__(params, notify, scan_budget)

    def _new_leaf(self) -> Leaf:
        return Leaf(self.tracks_extensions)

    def _inspect_leaf(self, node: Leaf) -> bool:
        """Section 5.1.1: clean a live entry's leaf during scans.

        Fused with the emptiness decision so the common clean leaf costs a
        single pass over its extension set instead of compact + is_empty.
        """
        own = node.own
        if own is not None and own.flagged:
            node.own = own = None
        extensions = node.extensions
        live_extension = False
        if extensions is not None:
            for monitor in extensions._items:
                if monitor.flagged:
                    extensions.compact()
                    live_extension = bool(extensions._items)
                    break
                live_extension = True
        if node.touched is not None or own is not None or live_extension:
            return KEEP
        return DROP

    def lookup_leaf(self, values: Mapping[str, Any], create: bool) -> Leaf | None:
        leaf = self.lookup(values, create)
        return leaf  # type: ignore[return-value]


class JoinIndex(_TreeBase):
    """Index of domain-``K`` instances by their ``K ∩ J`` sub-binding.

    With an empty key domain (``K ∩ J = ∅``) the index degenerates to the
    single set of *all* domain-``K`` instances.
    """

    def __init__(
        self,
        key_params: tuple[str, ...],
        notify: Callable[[MonitorInstance], None],
        scan_budget: int = 2,
    ):
        super().__init__(key_params, notify, scan_budget)

    def _new_leaf(self) -> RVSet:
        return RVSet()

    def _inspect_leaf(self, node: RVSet) -> bool:
        node.compact()
        return KEEP if node else DROP

    def add(self, values: Mapping[str, Any], monitor: MonitorInstance) -> None:
        bucket = self.lookup(values, create=True)
        bucket.add(monitor)

    def add_vals(self, values: Sequence[Any], monitor: MonitorInstance) -> None:
        bucket = self.lookup_vals(values, create=True)
        bucket.add(monitor)

    def candidates(self, values: Mapping[str, Any]) -> Iterator[MonitorInstance]:
        bucket = self.lookup(values, create=False)
        if bucket is None:
            return iter(())
        return iter(bucket.iter_active())
