"""Runtime monitor instances.

A :class:`MonitorInstance` pairs a base monitor (the formalism-level state)
with a parameter binding held through weak :class:`~repro.runtime.refs.ParamRef`
handles — the instance must never keep its parameter objects alive, or the
entire GC technique would be moot.

Per Section 4.2.2, each instance remembers the *last event* it received so
that, when a parameter-death notification arrives, the GC strategy can
evaluate ``ALIVENESS(last event)``.  Instances are *flagged* (not removed)
when found unnecessary; physical removal is lazy (Section 4.2/5.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from ..core.params import Binding
from .refs import ParamRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..spec.compiler import CompiledProperty

__all__ = ["MonitorInstance"]


class MonitorInstance:
    """One parametric monitor instance (a row of the ``Delta`` table)."""

    __slots__ = (
        "prop",
        "base",
        "params",
        "last_event",
        "flagged",
        "serial",
        "__weakref__",
    )

    def __init__(
        self,
        prop: "CompiledProperty",
        base: Any,
        params: Mapping[str, ParamRef],
        serial: int,
    ):
        self.prop = prop
        self.base = base
        self.params = dict(params)
        self.last_event: str | None = None
        self.flagged = False
        self.serial = serial

    @property
    def domain(self) -> frozenset[str]:
        return frozenset(self.params)

    def param_alive(self, name: str) -> bool:
        """Liveness of one bound parameter; unbound parameters count as alive
        (they may still be bound by future events — Theorem 1 is about bound
        objects only)."""
        ref = self.params.get(name)
        return True if ref is None else ref.is_alive

    def liveness(self) -> dict[str, bool]:
        return {name: ref.is_alive for name, ref in self.params.items()}

    def all_params_dead(self) -> bool:
        """JavaMOP's collectability condition: every bound parameter is gone.

        Immortal (non-weak-referenceable) parameters never die, so an
        instance binding one is never collectable under this rule — the same
        would be true of a Java object pinned by a static field.
        """
        return all(not ref.is_alive for ref in self.params.values()) and bool(self.params)

    def binding(self) -> Binding:
        """Rebuild a :class:`Binding` of the still-live parameter objects
        (dead parameters are omitted) — used when firing handlers."""
        pairs = []
        for name, ref in self.params.items():
            value = ref.get()
            if value is not None:
                pairs.append((name, value))
        return Binding(pairs)

    def __repr__(self) -> str:
        names = ", ".join(
            f"{name}{'†' if not ref.is_alive else ''}" for name, ref in sorted(self.params.items())
        )
        mark = " FLAGGED" if self.flagged else ""
        return f"MonitorInstance#{self.serial}<{names}>({self.base.verdict()}){mark}"
