"""Runtime monitor instances.

A :class:`MonitorInstance` pairs a base monitor (the formalism-level state)
with a parameter binding held through weak :class:`~repro.runtime.refs.ParamRef`
handles — the instance must never keep its parameter objects alive, or the
entire GC technique would be moot.

Per Section 4.2.2, each instance remembers the *last event* it received so
that, when a parameter-death notification arrives, the GC strategy can
evaluate ``ALIVENESS(last event)``.  Instances are *flagged* (not removed)
when found unnecessary; physical removal is lazy (Section 4.2/5.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..core.params import Binding
from .refs import ParamRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..spec.compiler import CompiledProperty

__all__ = ["MonitorInstance"]


class MonitorInstance:
    """One parametric monitor instance (a row of the ``Delta`` table)."""

    __slots__ = (
        "prop",
        "base",
        "params",
        "domain",
        "last_event",
        "flagged",
        "serial",
        "provenance",
        "__weakref__",
    )

    def __init__(
        self,
        prop: "CompiledProperty",
        base: Any,
        params: Mapping[str, ParamRef],
        serial: int,
    ):
        self.prop = prop
        self.base = base
        self.params = dict(params)
        #: ``dom(theta)`` — fixed at creation (bindings never shrink or grow),
        #: precomputed because the join path compares it per candidate.
        self.domain: frozenset[str] = frozenset(self.params)
        self.last_event: str | None = None
        self.flagged = False
        self.serial = serial
        #: Stamped by the runtime at verdict time: property/slot identity
        #: plus, under a durable engine, the WAL coordinates of the
        #: triggering event (see :mod:`repro.obs.provenance`).
        self.provenance: dict[str, Any] | None = None

    def param_alive(self, name: str) -> bool:
        """Liveness of one bound parameter; unbound parameters count as alive
        (they may still be bound by future events — Theorem 1 is about bound
        objects only)."""
        ref = self.params.get(name)
        return True if ref is None else ref.is_alive

    def liveness(self) -> dict[str, bool]:
        return {name: ref.is_alive for name, ref in self.params.items()}

    def all_params_dead(self) -> bool:
        """JavaMOP's collectability condition: every bound parameter is gone.

        Immortal (non-weak-referenceable) parameters never die, so an
        instance binding one is never collectable under this rule — the same
        would be true of a Java object pinned by a static field.
        """
        params = self.params
        if not params:
            return False
        for ref in params.values():
            weak = ref._weak
            if (weak() if weak is not None else ref._strong) is not None:
                return False
        return True

    def binding(self) -> Binding:
        """Rebuild a :class:`Binding` of the still-live parameter objects
        (dead parameters are omitted) — used when firing handlers."""
        pairs = []
        for name, ref in self.params.items():
            weak = ref._weak
            value = weak() if weak is not None else ref._strong
            if value is not None:
                pairs.append((name, value))
        return Binding._of_unique(pairs)

    def snapshot_payload(self, symbol_of: Callable[[Any], str]) -> dict:
        """This instance as checkpoint-codec data.

        ``symbol_of`` names live parameter objects (see
        :class:`~repro.runtime.refs.SymbolRegistry`); dead parameters are
        recorded as ``!dead:<param_id>`` markers — their identity is gone,
        but the restored instance must still report them bound-and-dead.
        """
        params: dict[str, str] = {}
        for name, ref in self.params.items():
            value = ref.get()
            if value is None:
                params[name] = f"!dead:{ref.param_id:x}"
            else:
                params[name] = symbol_of(value)
        return {
            "serial": self.serial,
            "last_event": self.last_event,
            "state": self.base.snapshot_state(),
            "params": params,
        }

    @classmethod
    def from_payload(
        cls,
        prop: "CompiledProperty",
        payload: Mapping[str, Any],
        tokens: Mapping[str, Any],
    ) -> "MonitorInstance":
        """Rebuild an instance from :meth:`snapshot_payload` output.

        ``tokens`` maps live symbols to their restored stand-in objects;
        ``!dead:`` markers become already-dead refs.
        """
        params: dict[str, ParamRef] = {}
        for name, symbol in payload["params"].items():
            if symbol.startswith("!dead:"):
                params[name] = ParamRef.dead(int(symbol[len("!dead:"):], 16))
            else:
                params[name] = ParamRef(tokens[symbol])
        base = prop.template.monitor_from_state(payload["state"])
        instance = cls(prop, base, params, payload["serial"])
        instance.last_event = payload["last_event"]
        return instance

    def __repr__(self) -> str:
        names = ", ".join(
            f"{name}{'†' if not ref.is_alive else ''}" for name, ref in sorted(self.params.items())
        )
        mark = " FLAGGED" if self.flagged else ""
        return f"MonitorInstance#{self.serial}<{names}>({self.base.verdict()}){mark}"
