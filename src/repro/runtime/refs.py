"""Weak parameter references.

The monitor GC technique hinges on observing the *death* of parameter
objects without keeping them alive.  Java uses ``WeakReference``; CPython's
:mod:`weakref` plays the same role here, with one twist: some Python values
(``int``, ``str``, ``tuple`` ...) are not weak-referenceable.  Such values
are held strongly and treated as immortal — which is also semantically
right: an interned value never "dies" in a way a monitor should react to.

CPython's reference counting makes death *deterministic* (the weakref goes
dead the moment the last strong reference drops), which this reproduction
exploits for reproducible GC tests; reference cycles additionally need
``gc.collect()``, which the benchmark harness invokes explicitly.  This is
the GC-semantics substitution recorded in DESIGN.md.
"""

from __future__ import annotations

import weakref
from typing import Any

__all__ = ["ParamRef"]


class ParamRef:
    """A handle to one parameter object that does not keep it alive.

    ``param_id`` is the object's ``id()`` at capture time and is what the
    weak-keyed maps hash on.  After death an id can be reused by CPython, so
    equality of a *dead* ref with anything is always ``False`` — dead
    entries never match lookups (lookups always carry a live object) and are
    purged lazily, so id reuse at worst leaves a dead entry alongside a live
    one until the next scan.
    """

    __slots__ = ("_weak", "_strong", "param_id", "__weakref__")

    def __init__(self, value: Any):
        self.param_id = id(value)
        try:
            self._weak: weakref.ref | None = weakref.ref(value)
            self._strong = None
        except TypeError:
            # Non-weak-referenceable value: hold it strongly; it is immortal
            # from the monitor GC's point of view.
            self._weak = None
            self._strong = value

    def get(self) -> Any | None:
        """The referent, or ``None`` if it has been garbage collected."""
        if self._weak is None:
            return self._strong
        return self._weak()

    @property
    def is_alive(self) -> bool:
        return self.get() is not None

    @property
    def is_weak(self) -> bool:
        """Whether the referent can actually die (False for immortal values)."""
        return self._weak is not None

    def refers_to(self, value: Any) -> bool:
        """Identity check against a live candidate object."""
        return self.get() is value

    def __repr__(self) -> str:
        referent = self.get()
        if referent is None:
            return f"ParamRef(<dead:{self.param_id:#x}>)"
        return f"ParamRef({type(referent).__name__}@{self.param_id:#x})"
