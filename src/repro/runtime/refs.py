"""Weak parameter references.

The monitor GC technique hinges on observing the *death* of parameter
objects without keeping them alive.  Java uses ``WeakReference``; CPython's
:mod:`weakref` plays the same role here, with one twist: some Python values
(``int``, ``str``, ``tuple`` ...) are not weak-referenceable.  Such values
are held strongly and treated as immortal — which is also semantically
right: an interned value never "dies" in a way a monitor should react to.

CPython's reference counting makes death *deterministic* (the weakref goes
dead the moment the last strong reference drops), which this reproduction
exploits for reproducible GC tests; reference cycles additionally need
``gc.collect()``, which the benchmark harness invokes explicitly.  This is
the GC-semantics substitution recorded in DESIGN.md.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable

__all__ = ["ParamRef", "SymbolRegistry"]


class ParamRef:
    """A handle to one parameter object that does not keep it alive.

    ``param_id`` is the object's ``id()`` at capture time and is what the
    weak-keyed maps hash on.  After death an id can be reused by CPython, so
    equality of a *dead* ref with anything is always ``False`` — dead
    entries never match lookups (lookups always carry a live object) and are
    purged lazily, so id reuse at worst leaves a dead entry alongside a live
    one until the next scan.
    """

    __slots__ = ("_weak", "_strong", "param_id", "__weakref__")

    def __init__(self, value: Any):
        self.param_id = id(value)
        try:
            self._weak: weakref.ref | None = weakref.ref(value)
            self._strong = None
        except TypeError:
            # Non-weak-referenceable value: hold it strongly; it is immortal
            # from the monitor GC's point of view.
            self._weak = None
            self._strong = value

    @classmethod
    def dead(cls, param_id: int = 0) -> "ParamRef":
        """A reference that was already dead at construction time.

        The checkpoint codec uses this to restore monitor instances whose
        parameter object died before the snapshot: the restored instance
        must report the parameter as bound-but-dead (``is_alive`` False,
        ``get()`` None), exactly like the live instance did.
        """
        ref = object.__new__(cls)
        ref.param_id = param_id
        ref._weak = None
        ref._strong = None
        return ref

    def get(self) -> Any | None:
        """The referent, or ``None`` if it has been garbage collected."""
        if self._weak is None:
            return self._strong
        return self._weak()

    @property
    def is_alive(self) -> bool:
        return self.get() is not None

    @property
    def is_weak(self) -> bool:
        """Whether the referent can actually die (False for immortal values)."""
        return self._weak is not None

    def refers_to(self, value: Any) -> bool:
        """Identity check against a live candidate object."""
        return self.get() is value

    def __repr__(self) -> str:
        referent = self.get()
        if referent is None:
            return f"ParamRef(<dead:{self.param_id:#x}>)"
        return f"ParamRef({type(referent).__name__}@{self.param_id:#x})"


class SymbolRegistry:
    """Stable *symbolic ref IDs* for parameter objects.

    The tracelog, the checkpoint codec, and the multiprocess shard backend
    all need to name parameter objects across a serialization boundary
    without keeping them alive.  A registry mints one symbol per object
    identity (``o1``, ``o2``, ...): the id-keyed table is weak-guarded, so
    a recycled ``id`` after death mints a fresh symbol instead of
    inheriting a dead object's name.  Non-weak-referenceable (immortal)
    values are held strongly and keyed by their ``repr`` (``v:...``), so
    equal immortals share a symbol for the registry's lifetime.

    ``on_death`` (optional) is invoked with the symbol whenever a
    registered weak-referenceable object is reclaimed — the process shard
    backend uses it to propagate parameter deaths to worker processes.
    The callback runs in whatever thread drops the last reference; it must
    not block and must tolerate reentrancy.
    """

    __slots__ = ("_symbols", "_guards", "_by_symbol", "_counter", "on_death")

    def __init__(self, start: int = 0, on_death: Callable[[str], None] | None = None):
        self._symbols: dict[int, str] = {}
        #: id -> weakref (weakable objects) or the object itself (immortals).
        self._guards: dict[int, Any] = {}
        self._by_symbol: dict[str, int] = {}
        self._counter = start
        self.on_death = on_death

    @property
    def counter(self) -> int:
        """Highest numeric symbol minted so far (recovery seeds from it)."""
        return self._counter

    def ensure_counter(self, value: int) -> None:
        """Never mint ``oN`` with ``N <= value`` from here on.

        Recovery raises the floor past every symbol a write-ahead log has
        ever used, so post-recovery objects cannot collide with pre-crash
        names."""
        if value > self._counter:
            self._counter = value

    def symbol_for(self, value: Any) -> str:
        """The symbol naming ``value``, minting one on first sight.

        Values that already carry a trace identity keep it: a
        :class:`~repro.runtime.tracelog.ReplayToken`-style object (any
        object exposing a string ``symbol`` attribute) is adopted under
        its own name, and a canonicalized ``v:`` literal string is its own
        symbol.  This keeps every consumer of one registry — tracelog,
        write-ahead log, checkpoint codec, process shard backend —
        agreeing on one name per object.
        """
        key = id(value)
        guard = self._guards.get(key)
        if guard is not None:
            if guard is value or (isinstance(guard, weakref.ref) and guard() is value):
                return self._symbols[key]
            self._drop(key)  # stale entry from a recycled id
        if isinstance(value, str) and value.startswith("v:"):
            return value
        existing = getattr(value, "symbol", None)
        if isinstance(existing, str) and existing:
            self.register(value, existing)
            return existing
        try:
            self._guards[key] = weakref.ref(
                value, lambda _ref, key=key: self._on_guard_death(key)
            )
        except TypeError:
            symbol = f"v:{value!r}"
            self._guards[key] = value  # immortal: hold strongly
            self._symbols[key] = symbol
            self._by_symbol[symbol] = key
            return symbol
        self._counter += 1
        symbol = f"o{self._counter}"
        self._symbols[key] = symbol
        self._by_symbol[symbol] = key
        return symbol

    def register(self, value: Any, symbol: str) -> None:
        """Adopt an externally chosen symbol for ``value``.

        Recovery uses this to re-associate restored tokens with the symbols
        recorded in a snapshot, so continued tracing reuses their names.
        Adopting a symbol already naming a *different* live object would
        silently alias two identities; that is refused loudly.
        """
        key = id(value)
        existing = self._by_symbol.get(symbol)
        if existing is not None and existing != key:
            guard = self._guards.get(existing)
            holder = guard() if isinstance(guard, weakref.ref) else guard
            if holder is not None and holder is not value:
                from ..core.errors import PersistError

                raise PersistError(
                    f"symbol {symbol!r} already names a different live object"
                )
        if self._guards.get(key) is not None:
            self._drop(key)
        try:
            self._guards[key] = weakref.ref(
                value, lambda _ref, key=key: self._on_guard_death(key)
            )
        except TypeError:
            self._guards[key] = value
        self._symbols[key] = symbol
        self._by_symbol[symbol] = key
        match = _NUMERIC_SYMBOL(symbol)
        if match is not None and match > self._counter:
            self._counter = match

    def resolve(self, symbol: str) -> Any | None:
        """The live object a symbol names, or ``None`` (dead or unknown)."""
        key = self._by_symbol.get(symbol)
        if key is None:
            return None
        guard = self._guards.get(key)
        if isinstance(guard, weakref.ref):
            return guard()
        return guard

    def __len__(self) -> int:
        return len(self._symbols)

    def _on_guard_death(self, key: int) -> None:
        symbol = self._symbols.get(key)
        self._drop(key)
        if symbol is not None and self.on_death is not None:
            self.on_death(symbol)

    def _drop(self, key: int) -> None:
        symbol = self._symbols.pop(key, None)
        self._guards.pop(key, None)
        if symbol is not None and self._by_symbol.get(symbol) == key:
            del self._by_symbol[symbol]


def _NUMERIC_SYMBOL(symbol: str) -> int | None:
    """The numeric part of an ``oN`` symbol, or ``None``."""
    if symbol.startswith("o") and symbol[1:].isdigit():
        return int(symbol[1:])
    return None
