"""RVMap — the weak-keyed map of Section 4.2.1.

An ``RVMap`` maps *parameter objects* (weakly, via
:class:`~repro.runtime.refs.ParamRef`) to indexing-tree values: deeper maps
or leaves.  Faithful to the paper:

* whenever an operation (``put``/``get``) is performed, the map "looks
  through a subset of its entries" for dead keys (an incremental rotating
  scan bounded by ``scan_budget`` buckets per operation);
* a dead key triggers the ``on_dead_value`` callback — the engine uses it to
  notify every monitor instance below the broken mapping (Figure 7A) — and
  the broken mapping is then removed (Figure 7B);
* while scanning, *live* entries' values are offered to ``inspect_value``,
  which may clean them up (compact sets, drop flagged monitors, remove
  empty substructures) and returns whether the mapping should be kept
  (Section 5.1.1).

Keys are hashed by object identity (``id``); a bucket holds the entries
sharing an id (id reuse after death can briefly co-locate a dead and a live
entry — lookups compare identity against the live referent, so this is
benign; the dead entry is purged by a later scan).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .refs import ParamRef

__all__ = ["RVMap"]

#: Kept-entry decision returned by ``inspect_value``.
KEEP, DROP = True, False


class RVMap:
    """A weak-keyed identity map with lazy dead-key scanning."""

    __slots__ = ("_buckets", "_scan_keys", "_scan_pos", "on_dead_value", "inspect_value", "scan_budget")

    def __init__(
        self,
        on_dead_value: Callable[[Any], None] | None = None,
        inspect_value: Callable[[Any], bool] | None = None,
        scan_budget: int = 2,
    ):
        self._buckets: dict[int, list[tuple[ParamRef, Any]]] = {}
        self._scan_keys: list[int] = []
        self._scan_pos = 0
        self.on_dead_value = on_dead_value
        self.inspect_value = inspect_value
        self.scan_budget = scan_budget

    # -- basic operations ---------------------------------------------------

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def get(self, obj: Any) -> Any | None:
        """The value mapped to ``obj`` (by identity), or ``None``."""
        self.scan_some()
        bucket = self._buckets.get(id(obj))
        if bucket:
            for ref, value in bucket:
                weak = ref._weak
                if (weak() if weak is not None else ref._strong) is obj:
                    return value
        return None

    def put(self, obj: Any, value: Any) -> None:
        """Map ``obj`` to ``value``, replacing any existing mapping."""
        self.scan_some()
        key = id(obj)
        bucket = self._buckets.setdefault(key, [])
        for index, (ref, _old) in enumerate(bucket):
            if ref.refers_to(obj):
                bucket[index] = (ref, value)
                return
        bucket.append((ParamRef(obj), value))

    def put_fresh(self, obj: Any, value: Any) -> None:
        """Insert a mapping the caller just proved absent (via ``get``).

        Skips the incremental scan (the preceding ``get`` already paid for
        one) and the live-entry replacement check.  A dead entry sharing a
        recycled id may coexist in the bucket until a later scan purges it
        — the same tolerance ordinary ``put`` has.
        """
        key = id(obj)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [(ParamRef(obj), value)]
        else:
            bucket.append((ParamRef(obj), value))

    def remove(self, obj: Any) -> bool:
        """Remove the mapping for ``obj``; returns whether one existed."""
        key = id(obj)
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        for index, (ref, _value) in enumerate(bucket):
            if ref.refers_to(obj):
                del bucket[index]
                if not bucket:
                    del self._buckets[key]
                return True
        return False

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate (live referent, value) pairs over a snapshot."""
        for bucket in tuple(self._buckets.values()):
            for ref, value in tuple(bucket):
                referent = ref.get()
                if referent is not None:
                    yield referent, value

    def values(self) -> Iterator[Any]:
        for _referent, value in self.items():
            yield value

    def all_values(self) -> Iterator[Any]:
        """Every stored value, including those under already-dead keys."""
        for bucket in tuple(self._buckets.values()):
            for _ref, value in tuple(bucket):
                yield value

    # -- lazy scanning (Sections 4.2.1 and 5.1.1) ----------------------------

    def scan_some(self) -> int:
        """Scan up to ``scan_budget`` buckets for dead keys; returns how many
        entries were cleaned."""
        buckets = self._buckets
        if not buckets:
            return 0
        # Rotating cursor over the bucket keys, with the clean-bucket fast
        # pass of _scan_bucket inlined: this runs on every map operation,
        # so per-step call overhead matters.
        keys = self._scan_keys
        pos = self._scan_pos
        inspect = self.inspect_value
        cleaned = 0
        for _step in range(self.scan_budget):
            if pos >= len(keys):
                keys = self._scan_keys = list(buckets)
                pos = 0
                if not keys:
                    break
            bucket = buckets.get(keys[pos])
            pos += 1
            if bucket is None:
                continue
            for ref, value in bucket:
                weak = ref._weak
                alive = (weak() if weak is not None else ref._strong) is not None
                if not alive or (inspect is not None and inspect(value) is DROP):
                    cleaned += self._scan_bucket(keys[pos - 1], known_dirty=True)
                    break
        self._scan_pos = pos
        return cleaned

    def scan_all(self) -> int:
        """Scan every bucket (used by eager propagation and by tests)."""
        cleaned = 0
        for key in list(self._buckets):
            cleaned += self._scan_bucket(key)
        return cleaned

    def _scan_bucket(self, key: int, known_dirty: bool = False) -> int:
        bucket = self._buckets.get(key)
        if bucket is None:
            return 0
        inspect = self.inspect_value
        if not known_dirty:
            # Fast pass: in the common case nothing in the bucket is dead
            # and every live value survives inspection — detect that
            # without building a survivor list (this runs on every map
            # operation).  Callers that already detected dirt (scan_some's
            # inline pass) skip straight to the rebuild.
            dirty = False
            for ref, value in bucket:
                weak = ref._weak
                alive = (weak() if weak is not None else ref._strong) is not None
                if not alive or (inspect is not None and inspect(value) is DROP):
                    dirty = True
                    break
            if not dirty:
                return 0
        cleaned = 0
        survivors: list[tuple[ParamRef, Any]] = []
        for ref, value in bucket:
            weak = ref._weak
            if (weak() if weak is not None else ref._strong) is None:
                # Figure 7A: notify the monitors below the broken mapping...
                if self.on_dead_value is not None:
                    self.on_dead_value(value)
                # ...and Figure 7B: remove it.
                cleaned += 1
            elif inspect is not None and inspect(value) is DROP:
                cleaned += 1
            else:
                survivors.append((ref, value))
        if cleaned:
            if survivors:
                self._buckets[key] = survivors
            else:
                del self._buckets[key]
        return cleaned

    def release(self) -> None:
        """Drop all entries and the owner callbacks.

        ``on_dead_value`` / ``inspect_value`` are bound methods of the
        owning indexing structure, making every level a reference cycle
        with its owner; a property being detached must break those cycles
        explicitly so its monitors are reclaimed by plain reference
        counting instead of waiting for a cyclic-GC pass that a long-lived
        worker process may never run.
        """
        self._buckets.clear()
        self._scan_keys.clear()
        self.on_dead_value = None
        self.inspect_value = None

    def __repr__(self) -> str:
        return f"RVMap({len(self)} entries, {len(self._buckets)} buckets)"
