"""RVSet — monitor sets with one-pass lazy compaction (Figure 8).

The leaves of partial-binding indexing trees hold *sets* of monitor
instances (every instance more informative than the leaf's binding).
Instances are flagged in place when found unnecessary (Section 4.2.2); the
set compacts all flagged instances out in a single pass whenever it is next
touched — the paper's Figure 8 — instead of eagerly chasing each instance
through every structure that contains it.

Because a hot leaf is iterated by every event carrying its binding, the
set keeps a cached tuple snapshot of its active members: dispatch pays for
a fresh allocation only when the membership actually changed (an add or a
compaction), not on every event.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .instance import MonitorInstance

__all__ = ["RVSet"]


class RVSet:
    """An insertion-ordered bag of monitor instances with lazy compaction."""

    __slots__ = ("_items", "_active")

    def __init__(self) -> None:
        self._items: list[MonitorInstance] = []
        #: Cached snapshot of the unflagged members, or None (stale).
        self._active: tuple[MonitorInstance, ...] | None = None

    def add(self, monitor: MonitorInstance) -> None:
        self._items.append(monitor)
        self._active = None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def has_flagged(self) -> bool:
        for monitor in self._items:
            if monitor.flagged:
                return True
        return False

    def compact(self, on_removed: Callable[[MonitorInstance], None] | None = None) -> int:
        """Remove every flagged instance in one pass; returns how many.

        Flagging happens directly on the instance (the notifying tree does
        not know which other structures contain it), so compaction rescans;
        the pass is fused with iteration by :meth:`iter_active`, keeping the
        touch-time cost linear — the compaction of Figure 8.
        """
        removed = 0
        survivors: list[MonitorInstance] = []
        for monitor in self._items:
            if monitor.flagged:
                removed += 1
                if on_removed is not None:
                    on_removed(monitor)
            else:
                survivors.append(monitor)
        if removed:
            self._items = survivors
            self._active = None
        return removed

    def iter_active(self) -> tuple[MonitorInstance, ...]:
        """Compact, then return a snapshot tuple of the surviving instances.

        The snapshot keeps the traversal valid if monitor updates (or the
        handlers they fire) add instances to this set reentrantly; it is
        cached and reused until the membership changes.
        """
        for monitor in self._items:
            if monitor.flagged:
                self.compact()
                break
        active = self._active
        if active is None:
            active = self._active = tuple(self._items)
        return active

    def __iter__(self) -> Iterator[MonitorInstance]:
        return iter(tuple(self._items))

    def __repr__(self) -> str:
        return f"RVSet({len(self._items)} monitors)"
