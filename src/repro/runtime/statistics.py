"""Monitoring statistics — the quantities of Figure 10.

The paper reports, per benchmark x property:

* **E**  — number of triggered events;
* **M**  — number of created monitor instances;
* **FM** — number of monitors *flagged* as unnecessary by the coenable
  technique;
* **CM** — number of monitors actually *collected* by the JVM.

``MonitorStats`` tracks all four (CM via ``weakref.finalize`` on monitor
instances, i.e. genuinely-reclaimed Python objects), plus the peak number
of simultaneously live monitors (the memory proxy for Figure 9B) and
handler activity.

The sharded monitoring service (:mod:`repro.service`) runs one stats
record per property *per shard* and aggregates them with :meth:`merge`.
Every additive counter — including the verdict tallies and handler fires —
merges exactly; ``peak_live_monitors`` merges as the sum of per-shard
peaks, an upper bound on the true simultaneous peak (per-shard peaks need
not coincide in time).  :meth:`snapshot` / :meth:`from_snapshot` move
records across process or serialization boundaries as plain dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["MonitorStats"]


@dataclass
class MonitorStats:
    """Counters for one property runtime."""

    events: int = 0
    monitors_created: int = 0
    monitors_flagged: int = 0
    monitors_collected: int = 0
    handler_fires: int = 0
    peak_live_monitors: int = 0
    #: True once ``peak_live_monitors`` stopped being an observed value:
    #: merging two records whose peaks both advanced sums peaks that need
    #: not have coincided in time, so the merged number is only an upper
    #: bound on the true simultaneous peak.
    peak_is_upper_bound: bool = False
    #: Verdict-category tallies (how many times each category was reported).
    verdicts: dict[str, int] = field(default_factory=dict)

    @property
    def live_monitors(self) -> int:
        """Monitors created and not yet reclaimed by the host GC."""
        return self.monitors_created - self.monitors_collected

    def record_event(self) -> None:
        self.events += 1

    def record_creation(self) -> None:
        self.monitors_created += 1
        if self.live_monitors > self.peak_live_monitors:
            self.peak_live_monitors = self.live_monitors

    def record_flag(self) -> None:
        self.monitors_flagged += 1

    def record_collection(self) -> None:
        self.monitors_collected += 1

    def record_verdict(self, category: str) -> None:
        self.verdicts[category] = self.verdicts.get(category, 0) + 1

    def record_handler(self) -> None:
        self.handler_fires += 1

    def as_row(self) -> dict[str, int]:
        """The Figure 10 row: E / M / FM / CM."""
        return {
            "E": self.events,
            "M": self.monitors_created,
            "FM": self.monitors_flagged,
            "CM": self.monitors_collected,
        }

    # -- aggregation (the sharded service's merged statistics view) ---------

    def merge(self, *others: "MonitorStats") -> "MonitorStats":
        """Fold other records into this one in place; returns ``self``.

        Additive counters (E/M/FM/CM, handler fires, per-category verdicts)
        merge exactly.  ``peak_live_monitors`` becomes the sum of peaks —
        an upper bound on the true global peak, since the per-shard peaks
        may have occurred at different times; when that happens (both
        sides contributed a nonzero peak, or an input was already merged)
        ``peak_is_upper_bound`` records the loss of exactness.
        """
        for other in others:
            self.events += other.events
            self.monitors_created += other.monitors_created
            self.monitors_flagged += other.monitors_flagged
            self.monitors_collected += other.monitors_collected
            self.handler_fires += other.handler_fires
            if other.peak_is_upper_bound or (
                self.peak_live_monitors > 0 and other.peak_live_monitors > 0
            ):
                self.peak_is_upper_bound = True
            self.peak_live_monitors += other.peak_live_monitors
            for category, count in other.verdicts.items():
                self.verdicts[category] = self.verdicts.get(category, 0) + count
        return self

    @classmethod
    def merged(cls, records: Iterable["MonitorStats"]) -> "MonitorStats":
        """A fresh record holding the fold of ``records`` (inputs untouched)."""
        return cls().merge(*records)

    def snapshot(self) -> dict[str, Any]:
        """Every counter as a plain dict (process/JSON-boundary safe)."""
        return {
            "events": self.events,
            "monitors_created": self.monitors_created,
            "monitors_flagged": self.monitors_flagged,
            "monitors_collected": self.monitors_collected,
            "handler_fires": self.handler_fires,
            "peak_live_monitors": self.peak_live_monitors,
            "peak_is_upper_bound": self.peak_is_upper_bound,
            "live_monitors": self.live_monitors,
            "verdicts": dict(self.verdicts),
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "MonitorStats":
        """Rebuild a record from :meth:`snapshot` output.

        Tolerates missing counters (older snapshot versions default to 0)
        and ignores unknown or derived fields like ``live_monitors``, so
        ``from_snapshot(snapshot())`` is an exact round trip and snapshots
        stay loadable across format revisions in both directions.
        """
        return cls(
            events=data.get("events", 0),
            monitors_created=data.get("monitors_created", 0),
            monitors_flagged=data.get("monitors_flagged", 0),
            monitors_collected=data.get("monitors_collected", 0),
            handler_fires=data.get("handler_fires", 0),
            peak_live_monitors=data.get("peak_live_monitors", 0),
            peak_is_upper_bound=bool(data.get("peak_is_upper_bound", False)),
            verdicts=dict(data.get("verdicts", {})),
        )

    def __repr__(self) -> str:
        return (
            f"MonitorStats(E={self.events}, M={self.monitors_created}, "
            f"FM={self.monitors_flagged}, CM={self.monitors_collected}, "
            f"live={self.live_monitors}, peak={self.peak_live_monitors})"
        )
