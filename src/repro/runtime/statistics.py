"""Monitoring statistics — the quantities of Figure 10.

The paper reports, per benchmark x property:

* **E**  — number of triggered events;
* **M**  — number of created monitor instances;
* **FM** — number of monitors *flagged* as unnecessary by the coenable
  technique;
* **CM** — number of monitors actually *collected* by the JVM.

``MonitorStats`` tracks all four (CM via ``weakref.finalize`` on monitor
instances, i.e. genuinely-reclaimed Python objects), plus the peak number
of simultaneously live monitors (the memory proxy for Figure 9B) and
handler activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MonitorStats"]


@dataclass
class MonitorStats:
    """Counters for one property runtime."""

    events: int = 0
    monitors_created: int = 0
    monitors_flagged: int = 0
    monitors_collected: int = 0
    handler_fires: int = 0
    peak_live_monitors: int = 0
    #: Verdict-category tallies (how many times each category was reported).
    verdicts: dict[str, int] = field(default_factory=dict)

    @property
    def live_monitors(self) -> int:
        """Monitors created and not yet reclaimed by the host GC."""
        return self.monitors_created - self.monitors_collected

    def record_event(self) -> None:
        self.events += 1

    def record_creation(self) -> None:
        self.monitors_created += 1
        if self.live_monitors > self.peak_live_monitors:
            self.peak_live_monitors = self.live_monitors

    def record_flag(self) -> None:
        self.monitors_flagged += 1

    def record_collection(self) -> None:
        self.monitors_collected += 1

    def record_verdict(self, category: str) -> None:
        self.verdicts[category] = self.verdicts.get(category, 0) + 1

    def record_handler(self) -> None:
        self.handler_fires += 1

    def as_row(self) -> dict[str, int]:
        """The Figure 10 row: E / M / FM / CM."""
        return {
            "E": self.events,
            "M": self.monitors_created,
            "FM": self.monitors_flagged,
            "CM": self.monitors_collected,
        }

    def __repr__(self) -> str:
        return (
            f"MonitorStats(E={self.events}, M={self.monitors_created}, "
            f"FM={self.monitors_flagged}, CM={self.monitors_collected}, "
            f"live={self.live_monitors}, peak={self.peak_live_monitors})"
        )
