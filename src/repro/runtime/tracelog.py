"""Recording and replaying parametric event traces.

A :class:`TraceRecorder` taps a :class:`~repro.runtime.engine.MonitoringEngine`
and writes every emitted parametric event as one JSON line — the event name
plus a *symbolic identity* per parameter object (``c0``, ``i17``, ...).
Identities preserve the aliasing structure of the run (two events binding
the same object record the same symbol) without holding the objects alive:
the registry is an id-keyed weak table.

:func:`replay` reads the log back, materializes one fresh token object per
symbol, and re-emits the events into a new engine — so a production trace
can be re-monitored offline under a different property, GC strategy, or
engine configuration.

Object deaths can be represented two ways:

* **Implicitly** — ``replay(..., retire_after_last_use=True)`` drops each
  token right after its final occurrence: a faithful stand-in for the
  common pattern where objects die as soon as the program stops
  mentioning them (the paper's short-lived iterators), though not a
  reconstruction of the original collection points.
* **Explicitly** — a recorder constructed with ``record_deaths=True``
  interleaves ``{"die": [symbol, ...]}`` marker lines with the event
  lines: whenever the interpreter reclaims a recorded parameter object,
  the death is buffered and written out at the next safe boundary
  (before the next event line), exactly where the engine's own coalesced
  death propagation observes it.  :func:`replay` honors the markers by
  dropping the named tokens between the same two events, so a replayed
  trace reproduces the original run's monitor GC behavior — the
  equivalence the live instrumentation layer
  (:mod:`repro.instrument.live`) is tested against.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, TextIO

from .engine import MonitoringEngine
from .refs import SymbolRegistry

__all__ = [
    "TraceRecorder",
    "replay",
    "replay_entries",
    "split_death_markers",
    "ReplayToken",
]


class ReplayToken:
    """A fresh weak-referenceable stand-in for one recorded object."""

    __slots__ = ("symbol", "__weakref__")

    def __init__(self, symbol: str):
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"ReplayToken({self.symbol})"


class TraceRecorder:
    """Tap an engine and write its parametric events as JSON lines.

    Symbol minting lives in :class:`~repro.runtime.refs.SymbolRegistry`;
    pass ``registry`` to share one symbol space with other consumers (the
    write-ahead log and checkpoint codec of :mod:`repro.persist` do this so
    snapshots and trace suffixes name objects consistently).

    With ``record_deaths=True`` the recorder additionally registers as the
    registry's death callback and interleaves ``{"die": [symbols]}`` marker
    lines with the events.  Death callbacks run in whatever thread drops
    the last strong reference (possibly mid-dispatch), so they only buffer;
    the coalesced markers are written at the next :meth:`record` call —
    i.e. between the two events the death actually fell between — or at an
    explicit :meth:`flush_deaths`.
    """

    def __init__(
        self,
        sink: TextIO,
        registry: SymbolRegistry | None = None,
        record_deaths: bool = False,
    ):
        self._sink = sink
        self.registry = registry if registry is not None else SymbolRegistry()
        self.events_recorded = 0
        self.deaths_recorded = 0
        self._pending_deaths: list[str] = []
        #: Guards the buffer swap against a death callback appending from
        #: another thread mid-flush (a lost append would drop a marker and
        #: break the live-vs-replay equivalence).
        self._deaths_lock = threading.Lock()
        if record_deaths:
            if self.registry.on_death is not None:
                raise ValueError(
                    "the symbol registry already has a death callback; "
                    "record_deaths needs exclusive ownership of it"
                )
            self.registry.on_death = self._note_death

    def attach(self, engine: MonitoringEngine) -> "TraceRecorder":
        """Register as the engine's emission tap (one tap per engine)."""
        engine.on_emit = self.record
        return self

    def record(self, event: str, params: dict[str, Any]) -> None:
        """Write one event line (flushing any buffered death markers)."""
        if self._pending_deaths:
            self.flush_deaths()
        symbol_for = self.registry.symbol_for
        entry = {
            "event": event,
            "params": {name: symbol_for(value) for name, value in params.items()},
        }
        self._sink.write(json.dumps(entry) + "\n")
        self.events_recorded += 1

    def _note_death(self, symbol: str) -> None:
        # Always appends through the attribute (never a captured bound
        # method): flush_deaths swaps the buffer list out.
        with self._deaths_lock:
            self._pending_deaths.append(symbol)

    def flush_deaths(self) -> None:
        """Write buffered parameter deaths as one coalesced ``die`` marker."""
        with self._deaths_lock:
            pending, self._pending_deaths = self._pending_deaths, []
        if pending:
            self._sink.write(json.dumps({"die": pending}) + "\n")
            self.deaths_recorded += len(pending)


def read_trace(lines: Iterable[str]) -> list[dict]:
    """Parse a recorded trace (skipping blank lines)."""
    return [json.loads(line) for line in lines if line.strip()]


def replay_entries(
    entries: "list[tuple[str, dict[str, str]]]",
    target: Any,
    retire_after_last_use: bool = False,
    *,
    start: int = 0,
    stop: int | None = None,
    tokens: "dict[str, Any] | None" = None,
    batch_size: int | None = None,
    deaths: "dict[int, list[str]] | None" = None,
) -> dict[str, Any]:
    """Re-emit pre-parsed ``(event, {param: symbol})`` pairs into ``target``.

    ``target`` is anything with the engine ``emit`` signature — a
    :class:`MonitoringEngine` or a :class:`~repro.service.MonitorService`.
    One fresh identity token is materialized per symbol; with
    ``retire_after_last_use`` each token is dropped right after its final
    occurrence, so parameter deaths (and the monitor GC they drive) happen
    during the replay, as in live traffic.  Immortal ``v:...`` symbols are
    canonicalized to one value object per symbol, matching the identity
    structure a live run would have.

    ``start``/``stop`` replay only the slice ``entries[start:stop]`` while
    computing retirement points over the *whole* trace — the checkpoint
    subsystem replays a prefix, snapshots, and later resumes the suffix
    (passing the restored ``tokens`` table) with retirements landing at
    exactly the same entries as an uninterrupted replay.

    ``batch_size`` switches ingestion to the target's ``emit_batch``,
    flushing a pending chunk whenever it is full *or* the next retirement
    point is reached — so token deaths still land between exactly the same
    two events as the per-event replay, and verdicts/creation counts are
    identical while the per-call overhead amortizes over the chunk.

    ``deaths`` carries *explicit death markers* (see
    :class:`TraceRecorder` with ``record_deaths=True``): ``deaths[i]`` is
    the list of symbols whose objects died after entry ``i - 1`` and
    before entry ``i`` — those tokens are dropped right before entry ``i``
    is emitted (``deaths[len(entries)]`` drops after the final entry), so
    the replayed engine observes each death between exactly the same two
    events as the recorded run.

    Returns the symbol -> token table of objects still alive at the end
    (with ``retire_after_last_use`` the retired ones are absent).  The
    ``tokens`` argument, when given, is used as that table and mutated in
    place.
    """
    retire_at: dict[int, list[str]] = {}
    if retire_after_last_use:
        last_use: dict[str, int] = {}
        for index, (_event, symbols) in enumerate(entries):
            for symbol in symbols.values():
                if not symbol.startswith("v:"):
                    last_use[symbol] = index
        for symbol, index in last_use.items():
            retire_at.setdefault(index, []).append(symbol)
    if tokens is None:
        tokens = {}
    stop = len(entries) if stop is None else min(stop, len(entries))
    tokens_get = tokens.get
    pending: list[tuple[str, dict[str, Any]]] = []
    emit_batch = target.emit_batch if batch_size else None
    # Mapping-taking fast entry: skips the per-event keyword repack of
    # ``emit(event, **params)``.  Per-instance wrappers (telemetry
    # boundaries, attribution, flight recorder, durability) must see every
    # event, and all of them rebind ``emit`` in the instance dict — so the
    # fast entry is used only while ``emit`` is the plain class method,
    # *unless* the wrapper also rebound ``emit_values`` (the attribution
    # boundary and the flight recorder do), in which case the instance
    # ``emit_values`` observes events exactly as the wrapped ``emit`` would.
    emit_values = getattr(target, "emit_values", None)
    if (
        emit_values is not None
        and "emit" in vars(target)
        and "emit_values" not in vars(target)
    ):
        emit_values = None
    if deaths is None and emit_batch is None and emit_values is not None:
        # Dedicated hot loop for the common bench/replay shape (no death
        # markers, per-event ingestion, unwrapped emit): identical per-event
        # semantics to the general loop below, minus its branch overhead.
        retire_get = retire_at.get
        for index in range(start, stop):
            event, symbols = entries[index]
            params: dict[str, Any] = {}
            for name, symbol in symbols.items():
                token = tokens_get(symbol)
                if token is None:
                    token = symbol if symbol.startswith("v:") else ReplayToken(symbol)
                    tokens[symbol] = token
                params[name] = token
            emit_values(event, params, _strict=False)
            retiring = retire_get(index)
            if retiring is not None:
                for symbol in retiring:
                    tokens.pop(symbol, None)
                del params
        return tokens
    for index in range(start, stop):
        if deaths is not None:
            dying = deaths.get(index)
            if dying is not None:
                if pending:
                    # The marked deaths fell *before* this entry: the batched
                    # prefix must be dispatched first so the engine observes
                    # the deaths at the recorded boundary.
                    emit_batch(pending, _strict=False)
                    pending = []
                for symbol in dying:
                    tokens.pop(symbol, None)
        event, symbols = entries[index]
        params: dict[str, Any] = {}
        for name, symbol in symbols.items():
            token = tokens_get(symbol)
            if token is None:
                # Immortal literal: identity is per-symbol, value is the
                # symbol text itself (canonicalized through the table).
                token = symbol if symbol.startswith("v:") else ReplayToken(symbol)
                tokens[symbol] = token
            params[name] = token
        retiring = retire_at.get(index)
        if emit_batch is not None:
            pending.append((event, params))
            if retiring is not None or len(pending) >= batch_size:
                emit_batch(pending, _strict=False)
                pending = []
        elif emit_values is not None:
            emit_values(event, params, _strict=False)
        else:
            target.emit(event, _strict=False, **params)
        if retiring is not None:
            for symbol in retiring:
                tokens.pop(symbol, None)
            del params
    if pending:
        emit_batch(pending, _strict=False)
    if deaths is not None:
        trailing = deaths.get(stop)
        if trailing is not None:
            for symbol in trailing:
                tokens.pop(symbol, None)
    return tokens


def split_death_markers(
    records: Iterable[dict],
) -> tuple[list[tuple[str, dict[str, str]]], dict[int, list[str]]]:
    """Separate parsed trace records into entries and a death map.

    ``records`` is :func:`read_trace` output possibly containing
    ``{"die": [symbols]}`` markers.  Returns ``(entries, deaths)`` in the
    shapes :func:`replay_entries` consumes: ``deaths[i]`` lists the
    symbols that died right before entry ``i`` (``i == len(entries)`` for
    deaths after the final event).
    """
    entries: list[tuple[str, dict[str, str]]] = []
    deaths: dict[int, list[str]] = {}
    for record in records:
        dying = record.get("die")
        if dying is not None:
            deaths.setdefault(len(entries), []).extend(dying)
        else:
            entries.append((record["event"], record["params"]))
    return entries, deaths


def replay(
    lines: Iterable[str],
    engine: MonitoringEngine,
    retire_after_last_use: bool = False,
) -> dict[str, ReplayToken]:
    """Re-emit a recorded trace into ``engine`` (see :func:`replay_entries`).

    Traces recorded with death markers (``TraceRecorder(record_deaths=
    True)``) have their markers honored: each marked token is dropped
    between the same two events the original object died between.
    """
    entries, deaths = split_death_markers(read_trace(lines))
    return replay_entries(
        entries, engine, retire_after_last_use, deaths=deaths or None
    )
