"""Recording and replaying parametric event traces.

A :class:`TraceRecorder` taps a :class:`~repro.runtime.engine.MonitoringEngine`
and writes every emitted parametric event as one JSON line — the event name
plus a *symbolic identity* per parameter object (``c0``, ``i17``, ...).
Identities preserve the aliasing structure of the run (two events binding
the same object record the same symbol) without holding the objects alive:
the registry is an id-keyed weak table.

:func:`replay` reads the log back, materializes one fresh token object per
symbol, and re-emits the events into a new engine — so a production trace
can be re-monitored offline under a different property, GC strategy, or
engine configuration.

Caveat (documented, inherent): the log records *events*, not object
deaths.  A replay keeps all tokens alive until the end unless
``retire_after_last_use=True``, which drops each token right after its
final occurrence — a faithful stand-in for the common pattern where
objects die as soon as the program stops mentioning them (the paper's
short-lived iterators), though not a reconstruction of the original
collection points.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from .engine import MonitoringEngine
from .refs import SymbolRegistry

__all__ = ["TraceRecorder", "replay", "replay_entries", "ReplayToken"]


class ReplayToken:
    """A fresh weak-referenceable stand-in for one recorded object."""

    __slots__ = ("symbol", "__weakref__")

    def __init__(self, symbol: str):
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"ReplayToken({self.symbol})"


class TraceRecorder:
    """Tap an engine and write its parametric events as JSON lines.

    Symbol minting lives in :class:`~repro.runtime.refs.SymbolRegistry`;
    pass ``registry`` to share one symbol space with other consumers (the
    write-ahead log and checkpoint codec of :mod:`repro.persist` do this so
    snapshots and trace suffixes name objects consistently).
    """

    def __init__(self, sink: TextIO, registry: SymbolRegistry | None = None):
        self._sink = sink
        self.registry = registry if registry is not None else SymbolRegistry()
        self.events_recorded = 0

    def attach(self, engine: MonitoringEngine) -> "TraceRecorder":
        """Register as the engine's emission tap (one tap per engine)."""
        engine.on_emit = self.record
        return self

    def record(self, event: str, params: dict[str, Any]) -> None:
        symbol_for = self.registry.symbol_for
        entry = {
            "event": event,
            "params": {name: symbol_for(value) for name, value in params.items()},
        }
        self._sink.write(json.dumps(entry) + "\n")
        self.events_recorded += 1


def read_trace(lines: Iterable[str]) -> list[dict]:
    """Parse a recorded trace (skipping blank lines)."""
    return [json.loads(line) for line in lines if line.strip()]


def replay_entries(
    entries: "list[tuple[str, dict[str, str]]]",
    target: Any,
    retire_after_last_use: bool = False,
    *,
    start: int = 0,
    stop: int | None = None,
    tokens: "dict[str, Any] | None" = None,
    batch_size: int | None = None,
) -> dict[str, Any]:
    """Re-emit pre-parsed ``(event, {param: symbol})`` pairs into ``target``.

    ``target`` is anything with the engine ``emit`` signature — a
    :class:`MonitoringEngine` or a :class:`~repro.service.MonitorService`.
    One fresh identity token is materialized per symbol; with
    ``retire_after_last_use`` each token is dropped right after its final
    occurrence, so parameter deaths (and the monitor GC they drive) happen
    during the replay, as in live traffic.  Immortal ``v:...`` symbols are
    canonicalized to one value object per symbol, matching the identity
    structure a live run would have.

    ``start``/``stop`` replay only the slice ``entries[start:stop]`` while
    computing retirement points over the *whole* trace — the checkpoint
    subsystem replays a prefix, snapshots, and later resumes the suffix
    (passing the restored ``tokens`` table) with retirements landing at
    exactly the same entries as an uninterrupted replay.

    ``batch_size`` switches ingestion to the target's ``emit_batch``,
    flushing a pending chunk whenever it is full *or* the next retirement
    point is reached — so token deaths still land between exactly the same
    two events as the per-event replay, and verdicts/creation counts are
    identical while the per-call overhead amortizes over the chunk.

    Returns the symbol -> token table of objects still alive at the end
    (with ``retire_after_last_use`` the retired ones are absent).  The
    ``tokens`` argument, when given, is used as that table and mutated in
    place.
    """
    retire_at: dict[int, list[str]] = {}
    if retire_after_last_use:
        last_use: dict[str, int] = {}
        for index, (_event, symbols) in enumerate(entries):
            for symbol in symbols.values():
                if not symbol.startswith("v:"):
                    last_use[symbol] = index
        for symbol, index in last_use.items():
            retire_at.setdefault(index, []).append(symbol)
    if tokens is None:
        tokens = {}
    stop = len(entries) if stop is None else min(stop, len(entries))
    tokens_get = tokens.get
    pending: list[tuple[str, dict[str, Any]]] = []
    emit_batch = target.emit_batch if batch_size else None
    for index in range(start, stop):
        event, symbols = entries[index]
        params: dict[str, Any] = {}
        for name, symbol in symbols.items():
            token = tokens_get(symbol)
            if token is None:
                # Immortal literal: identity is per-symbol, value is the
                # symbol text itself (canonicalized through the table).
                token = symbol if symbol.startswith("v:") else ReplayToken(symbol)
                tokens[symbol] = token
            params[name] = token
        retiring = retire_at.get(index)
        if emit_batch is not None:
            pending.append((event, params))
            if retiring is not None or len(pending) >= batch_size:
                emit_batch(pending, _strict=False)
                pending = []
        else:
            target.emit(event, _strict=False, **params)
        if retiring is not None:
            for symbol in retiring:
                tokens.pop(symbol, None)
            del params
    if pending:
        emit_batch(pending, _strict=False)
    return tokens


def replay(
    lines: Iterable[str],
    engine: MonitoringEngine,
    retire_after_last_use: bool = False,
) -> dict[str, ReplayToken]:
    """Re-emit a recorded trace into ``engine`` (see :func:`replay_entries`)."""
    entries = [
        (entry["event"], entry["params"]) for entry in read_trace(lines)
    ]
    return replay_entries(entries, engine, retire_after_last_use)
