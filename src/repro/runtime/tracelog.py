"""Recording and replaying parametric event traces.

A :class:`TraceRecorder` taps a :class:`~repro.runtime.engine.MonitoringEngine`
and writes every emitted parametric event as one JSON line — the event name
plus a *symbolic identity* per parameter object (``c0``, ``i17``, ...).
Identities preserve the aliasing structure of the run (two events binding
the same object record the same symbol) without holding the objects alive:
the registry is an id-keyed weak table.

:func:`replay` reads the log back, materializes one fresh token object per
symbol, and re-emits the events into a new engine — so a production trace
can be re-monitored offline under a different property, GC strategy, or
engine configuration.

Caveat (documented, inherent): the log records *events*, not object
deaths.  A replay keeps all tokens alive until the end unless
``retire_after_last_use=True``, which drops each token right after its
final occurrence — a faithful stand-in for the common pattern where
objects die as soon as the program stops mentioning them (the paper's
short-lived iterators), though not a reconstruction of the original
collection points.
"""

from __future__ import annotations

import json
import weakref
from typing import Any, Iterable, TextIO

from .engine import MonitoringEngine

__all__ = ["TraceRecorder", "replay", "replay_entries", "ReplayToken"]


class ReplayToken:
    """A fresh weak-referenceable stand-in for one recorded object."""

    __slots__ = ("symbol", "__weakref__")

    def __init__(self, symbol: str):
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"ReplayToken({self.symbol})"


class TraceRecorder:
    """Tap an engine and write its parametric events as JSON lines."""

    def __init__(self, sink: TextIO):
        self._sink = sink
        self._symbols: dict[int, str] = {}
        self._guards: dict[int, weakref.ref] = {}
        self._counter = 0
        self.events_recorded = 0

    def attach(self, engine: MonitoringEngine) -> "TraceRecorder":
        """Register as the engine's emission tap (one tap per engine)."""
        engine.on_emit = self.record
        return self

    def record(self, event: str, params: dict[str, Any]) -> None:
        entry = {
            "event": event,
            "params": {name: self._symbol_for(value) for name, value in params.items()},
        }
        self._sink.write(json.dumps(entry) + "\n")
        self.events_recorded += 1

    def _symbol_for(self, value: Any) -> str:
        key = id(value)
        guard = self._guards.get(key)
        if guard is not None and guard() is value:
            return self._symbols[key]
        # New object (or a dead object's id was recycled): mint a symbol.
        self._counter += 1
        symbol = f"o{self._counter}"
        self._symbols[key] = symbol
        try:
            self._guards[key] = weakref.ref(value)
        except TypeError:
            # Non-weakrefable (immortal) value: key it by its repr so equal
            # immortals share a symbol across the run.
            symbol = f"v:{value!r}"
            self._symbols[key] = symbol
            self._guards.pop(key, None)
        return self._symbols[key]


def read_trace(lines: Iterable[str]) -> list[dict]:
    """Parse a recorded trace (skipping blank lines)."""
    return [json.loads(line) for line in lines if line.strip()]


def replay_entries(
    entries: "list[tuple[str, dict[str, str]]]",
    target: Any,
    retire_after_last_use: bool = False,
) -> dict[str, ReplayToken]:
    """Re-emit pre-parsed ``(event, {param: symbol})`` pairs into ``target``.

    ``target`` is anything with the engine ``emit`` signature — a
    :class:`MonitoringEngine` or a :class:`~repro.service.MonitorService`.
    One fresh identity token is materialized per symbol; with
    ``retire_after_last_use`` each token is dropped right after its final
    occurrence, so parameter deaths (and the monitor GC they drive) happen
    during the replay, as in live traffic.

    Returns the symbol -> token table of objects still alive at the end
    (with ``retire_after_last_use`` the retired ones are absent).
    """
    last_use: dict[str, int] = {}
    if retire_after_last_use:
        for index, (_event, symbols) in enumerate(entries):
            for symbol in symbols.values():
                last_use[symbol] = index
    tokens: dict[str, ReplayToken] = {}
    for index, (event, symbols) in enumerate(entries):
        params: dict[str, Any] = {}
        for name, symbol in symbols.items():
            if symbol.startswith("v:"):
                params[name] = symbol  # immortal literal, identity irrelevant
                continue
            token = tokens.get(symbol)
            if token is None:
                token = ReplayToken(symbol)
                tokens[symbol] = token
            params[name] = token
        target.emit(event, _strict=False, **params)
        if retire_after_last_use:
            for symbol in symbols.values():
                if not symbol.startswith("v:") and last_use.get(symbol) == index:
                    tokens.pop(symbol, None)
    return tokens


def replay(
    lines: Iterable[str],
    engine: MonitoringEngine,
    retire_after_last_use: bool = False,
) -> dict[str, ReplayToken]:
    """Re-emit a recorded trace into ``engine`` (see :func:`replay_entries`)."""
    entries = [
        (entry["event"], entry["params"]) for entry in read_trace(lines)
    ]
    return replay_entries(entries, engine, retire_after_last_use)
