"""The sharded monitoring service: batched, multi-engine event ingestion.

Scales the single :class:`~repro.runtime.engine.MonitoringEngine` to N
engine shards behind one ``emit()`` interface, with anchor-parameter
routing (:mod:`repro.service.router`), bounded queues with backpressure
(:mod:`repro.service.service`), and merged verdict/statistics views
(:mod:`repro.service.aggregate`).  Verdict multisets are identical to a
single-engine run by construction.
"""

from .aggregate import VerdictLog, VerdictRecord, merge_stats
from .router import PropertyRoute, ShardRouter, choose_anchor, valid_anchors
from .service import (
    SERVICE_CHECKPOINT_FORMAT,
    SERVICE_CHECKPOINT_VERSION,
    MonitorService,
    ingest_symbolic,
)
from .supervisor import ShardSupervisor, supervise

__all__ = [
    "MonitorService",
    "ingest_symbolic",
    "ShardSupervisor",
    "supervise",
    "SERVICE_CHECKPOINT_FORMAT",
    "SERVICE_CHECKPOINT_VERSION",
    "ShardRouter",
    "PropertyRoute",
    "choose_anchor",
    "valid_anchors",
    "VerdictLog",
    "VerdictRecord",
    "merge_stats",
]
