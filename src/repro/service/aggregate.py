"""Merged verdict streams and aggregate statistics across engine shards.

Each shard engine reports verdicts through its ``on_verdict`` callback and
keeps per-property :class:`~repro.runtime.statistics.MonitorStats`.  This
module provides the service-level view:

* :class:`VerdictRecord` / :class:`VerdictLog` — one chronological,
  thread-safe stream of goal verdicts from every shard, with a multiset
  projection for determinism checks (the *interleaving* across shards is
  scheduling-dependent; the multiset is not);
* :func:`merge_stats` — the exact fold of per-shard statistics into one
  record per property, built on :meth:`MonitorStats.merge`.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..runtime.statistics import MonitorStats

__all__ = ["VerdictRecord", "VerdictLog", "merge_stats", "StatsKey"]

#: Properties are identified across shards by (spec name, formalism).
StatsKey = tuple[str, str]


@dataclass(frozen=True)
class VerdictRecord:
    """One goal verdict, as observed by one shard."""

    shard: int
    spec_name: str
    formalism: str
    category: str
    #: The (still-live) parameter binding at firing time, as (name, object)
    #: pairs — objects, not copies: verdicts are consumed online.
    binding: tuple[tuple[str, Any], ...]
    #: Where the verdict came from: property/slot identity stamped by the
    #: engine, the owning shard, and — under a durable engine — the WAL
    #: coordinates of the triggering event, which
    #: :mod:`repro.obs.provenance` turns back into a replayable slice.
    #: Excluded from :meth:`key` so determinism multisets stay comparable
    #: across durable and non-durable runs.
    provenance: Mapping[str, Any] | None = None

    def key(self) -> tuple:
        """Shard-independent identity used for multiset comparisons.

        Parameter objects are keyed by ``id`` — the same identity the
        engine slices on — so a service run and a single-engine run over
        the *same* parameter objects produce comparable keys.
        """
        return (
            self.spec_name,
            self.formalism,
            self.category,
            tuple(sorted((name, id(value)) for name, value in self.binding)),
        )


@dataclass
class VerdictLog:
    """Thread-safe append-only verdict stream."""

    _records: list[VerdictRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def append(self, record: VerdictRecord) -> None:
        with self._lock:
            self._records.append(record)

    def snapshot(self) -> list[VerdictRecord]:
        with self._lock:
            return list(self._records)

    def multiset(self) -> Counter:
        """Shard- and order-independent projection of the stream."""
        with self._lock:
            return Counter(record.key() for record in self._records)

    def clear(self) -> None:
        """Drop retained records (and their parameter references)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def merge_stats(
    per_shard: Iterable[Mapping[StatsKey, MonitorStats]],
) -> dict[StatsKey, MonitorStats]:
    """Fold per-shard ``{(spec, formalism): stats}`` maps into one.

    Returns fresh records (inputs untouched).  Additive counters are exact
    across shards because every event is accounted on exactly one shard
    (the router designates an accountant for broadcasts) and every monitor
    lives on exactly one shard; ``peak_live_monitors`` is the sum of
    per-shard peaks, an upper bound (see :meth:`MonitorStats.merge`).
    """
    merged: dict[StatsKey, MonitorStats] = {}
    for shard_stats in per_shard:
        for key, stats in shard_stats.items():
            if key in merged:
                merged[key].merge(stats)
            else:
                merged[key] = MonitorStats.merged([stats])
    return merged
