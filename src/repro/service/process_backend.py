"""The multiprocess shard backend: one worker *process* per engine shard.

Thread-mode shards interleave on one core under the GIL; CPU-bound
monitoring (eager propagation, large engine states, CFG charts) gains
nothing from them.  This backend runs each shard's
:class:`~repro.runtime.engine.MonitoringEngine` in a forked worker process
fed **serialized event batches**:

* the parent routes events exactly as in thread mode (the
  :class:`~repro.service.router.ShardRouter` works on real objects in the
  parent), then ships ``(event, {param: symbol}, delivery)`` tuples — the
  symbols come from the service's
  :class:`~repro.runtime.refs.SymbolRegistry`;
* each worker materializes one :class:`~repro.runtime.tracelog.ReplayToken`
  per symbol, so engine-side identity semantics (weak-keyed RVMaps, GC
  strategies) are preserved across the process boundary;
* parameter **deaths propagate**: when a parent-side object is reclaimed,
  the registry reports its symbol and the service broadcasts a retire
  message; workers drop their token, and the worker-side weakref machinery
  drives monitor GC exactly as live deaths would;
* verdicts stream back on a shared queue (bindings as symbols, resolved to
  the live parent objects on arrival); statistics cross as
  :meth:`~repro.runtime.engine.MonitoringEngine.stats_snapshot` dicts;
* workers are **checkpointed and migrated** via the
  :mod:`repro.persist.codec` snapshot format — a checkpoint request makes
  the worker serialize its engine under the parent's symbol namespace
  (worker tokens carry the parent-minted symbols), and a new worker can be
  spawned from such a snapshot (:meth:`ProcessShardPool.restart_shard`).

Workers are started with the ``fork`` method (compiled properties —
including registered handler closures — are inherited, never pickled), so
this backend requires a platform with ``fork`` (Linux; guarded at
construction).  Handlers attached to compiled properties fire inside the
worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

from ..core.errors import ServiceError
from ..faults import (
    InjectedCrash,
    QuarantinePolicy,
    WorkerFaultState,
    supervised_dispatch,
)
from ..obs.telemetry import Telemetry
from ..persist.codec import restore_into, snapshot_engine, trace_symbol_of
from ..runtime.engine import MonitoringEngine
from ..runtime.tracelog import ReplayToken
from ..spec.registry import materialize_origin

__all__ = ["ProcessShardPool", "CRASH_EXIT_CODE"]

#: One routed, symbolized delivery: (event, {param: symbol}, delivery plan).
SymbolicDelivery = tuple[str, "dict[str, str]", tuple]

#: Exit code of a worker killed by an injected crash fault — lets the
#: supervisor (and tests) tell engineered kills from real failures.
CRASH_EXIT_CODE = 70

_POLL_SECONDS = 0.1
_CONTROL_TIMEOUT = 60.0


def _worker_main(
    shard: int,
    properties: Sequence[Any],
    engine_kwargs: Mapping[str, Any],
    telemetry_config: "Mapping[str, Any] | None",
    recorder_capacity: "int | None",
    snapshot: "dict | None",
    epoch: int,
    fault_config: "Mapping[str, Any] | None",
    quarantine_config: "Mapping[str, Any] | None",
    in_q: Any,
    resp_q: Any,
    verdict_q: Any,
) -> None:
    """The worker process: an engine shard driven by queue messages."""
    verdicts_sent = 0

    def on_verdict(prop, category, monitor) -> None:
        nonlocal verdicts_sent
        binding = tuple(
            (name, getattr(value, "symbol", value) if not isinstance(value, str) else value)
            for name, value in monitor.binding().items()
        )
        # Epoch + per-worker ordinal make parent-side admission exactly
        # once across worker restarts (replays regenerate low ordinals).
        verdict_q.put(
            (
                shard, prop.spec_name, prop.formalism, category,
                binding, monitor.provenance, epoch, verdicts_sent,
            )
        )
        verdicts_sent += 1

    recorder = None
    try:
        # A *fresh* Telemetry per worker: sharing the parent's registry
        # across fork would double-count (both sides inherit the same
        # counters), so only the sampling configuration crosses the pipe
        # and the worker's snapshot (and span buffer) merges back at
        # stats/close time.
        telemetry = (
            Telemetry.from_config(telemetry_config)
            if telemetry_config is not None
            else None
        )
        tracer = telemetry.tracer if telemetry is not None else None
        engine = MonitoringEngine(
            properties, on_verdict=on_verdict, telemetry=telemetry, **engine_kwargs
        )
        if recorder_capacity is not None:
            from ..obs.recorder import FlightRecorder

            recorder = engine.enable_flight_recorder(
                FlightRecorder()
                if recorder_capacity == 0
                else FlightRecorder(capacity=recorder_capacity)
            )
        tokens: dict[str, Any] = {}
        if snapshot is not None:
            restore_into(engine, snapshot, tokens)
        fault_state = (
            WorkerFaultState(fault_config) if fault_config is not None else None
        )
        quarantine = QuarantinePolicy.from_config(quarantine_config)
        supervised = fault_state is not None or quarantine is not None

        def quarantine_record(item: tuple, failure: BaseException, attempts: int) -> None:
            event, params, _delivery = item
            record = {
                "shard": shard,
                "event": event,
                "params": {
                    name: getattr(value, "symbol", value)
                    for name, value in params.items()
                },
                "error": repr(failure),
                "attempts": attempts,
                "position": (fault_state.count + 1) if fault_state is not None else None,
            }
            if recorder is not None:
                try:
                    recorder.trigger(
                        "poison-event", shard=shard, event=event,
                        error=record["error"],
                    )
                except BaseException:  # pragma: no cover - best effort
                    pass
            verdict_q.put(("qa", record))

        while True:
            message = in_q.get()
            kind = message[0]
            if kind == "ev":
                # Materialize the whole serialized batch, then hand it to
                # the engine's batched dispatch in one call — the symbol
                # table keeps identities exact, and batching amortizes the
                # per-event call overhead at the pipe boundary.
                batch = []
                for event, symbols, delivery in message[1]:
                    params: dict[str, Any] = {}
                    for name, symbol in symbols.items():
                        token = tokens.get(symbol)
                        if token is None:
                            token = (
                                symbol
                                if symbol.startswith("v:")
                                else ReplayToken(symbol)
                            )
                            tokens[symbol] = token
                        params[name] = token
                    batch.append((event, params, delivery))
                if supervised:
                    # Per-delivery guarded dispatch: faults fire at exact
                    # ordinals, poison deliveries quarantine individually.
                    try:
                        supervised_dispatch(
                            engine, batch,
                            state=fault_state,
                            quarantine=quarantine,
                            on_quarantine=quarantine_record,
                        )
                    except InjectedCrash:
                        # Die the way a real crash does: no unwinding, no
                        # ack — the supervisor detects, respawns, replays.
                        # One concession to simulation: flush the verdict
                        # queue's feeder before exiting.  The queue's write
                        # lock is shared by every shard; dying while the
                        # feeder holds it would poison the channel for all
                        # replacement workers (their verdicts would sit in
                        # feeder buffers forever).  Already-sent verdicts
                        # are harmless — parent-side epoch/ordinal
                        # admission dedups the replay.
                        try:
                            verdict_q.close()
                            verdict_q.join_thread()
                        except BaseException:
                            pass
                        os._exit(CRASH_EXIT_CODE)
                elif tracer is None:
                    engine.emit_selected_batch(batch)
                else:
                    # The worker half of the service's batch span: the
                    # parent's emit_batch span carries the same batch id,
                    # so the stitched timeline shows enqueue → drain.
                    wall = time.time()
                    started = perf_counter()
                    engine.emit_selected_batch(batch)
                    tracer.record(
                        "shard.drain", "service",
                        start=wall, duration=perf_counter() - started,
                        shard=shard, events=len(batch),
                        batch=message[2] if len(message) > 2 else None,
                    )
            elif kind == "rt":
                for symbol in message[1]:
                    tokens.pop(symbol, None)
            elif kind == "rg":
                # Hot-load: re-compile the property from its portable
                # origin (source text / paper key) — compiled objects do
                # not cross the pipe — and ack with the fingerprint so the
                # parent can verify both sides compiled the same semantics.
                payload = message[1]
                prop = materialize_origin(payload["origin"])
                indexes = engine.attach_property(
                    prop, name=payload.get("name"), origin=payload["origin"]
                )
                resp_q.put(("rg", engine.properties[indexes[0]].fingerprint()))
            elif kind == "ur":
                engine.detach_property(message[1])
                resp_q.put(("ur",))
            elif kind == "en":
                index, enabled = message[1]
                engine.set_property_enabled(index, enabled)
                resp_q.put(("en",))
            elif kind == "ba":
                resp_q.put(("ba", message[1], verdicts_sent, epoch))
            elif kind == "hb":
                # Heartbeat: FIFO behind every queued event batch, so the
                # ack proves the worker is draining, not merely alive.
                resp_q.put(("hb", message[1]))
            elif kind == "st":
                resp_q.put(("st", engine.stats_snapshot()))
            elif kind == "tl":
                resp_q.put(
                    (
                        "tl",
                        telemetry.snapshot() if telemetry is not None else None,
                        tracer.snapshot() if tracer is not None else [],
                    )
                )
            elif kind == "ck":
                resp_q.put(
                    ("ck", snapshot_engine(engine, trace_symbol_of()), verdicts_sent)
                )
            elif kind == "cl":
                engine.flush_gc()
                resp_q.put(
                    (
                        "cl",
                        engine.stats_snapshot(),
                        verdicts_sent,
                        telemetry.snapshot() if telemetry is not None else None,
                        tracer.snapshot() if tracer is not None else [],
                        list(recorder.dumps) if recorder is not None else [],
                        epoch,
                    )
                )
                return
            else:  # pragma: no cover - protocol misuse
                raise ServiceError(f"unknown worker message {kind!r}")
    except BaseException:
        # Dying with context: a recorder-equipped worker dumps its ring so
        # the parent can see the shard's last moments alongside the
        # traceback (and replay the most recent verdict when durable).
        dump = None
        if recorder is not None:
            try:
                dump = recorder.trigger(
                    "worker-exception", shard=shard, error=traceback.format_exc()
                )
            except BaseException:  # pragma: no cover - best effort
                dump = None
        resp_q.put(("err", traceback.format_exc(), dump))


class ProcessShardPool:
    """Parent-side handle on N shard worker processes.

    All control interactions (barrier / stats / checkpoint / close /
    restart) are serialized by the caller (:class:`MonitorService` holds a
    control lock); event and retire sends only require the caller's emit
    ordering guarantees.
    """

    def __init__(
        self,
        properties: Sequence[Any],
        shards: int,
        engine_kwargs: Mapping[str, Any],
        snapshots: "Sequence[dict | None] | None" = None,
        queue_capacity: int = 0,
        telemetry_configs: "Sequence[Mapping[str, Any]] | None" = None,
        flight_recorder_capacity: "int | None" = None,
        fault_configs: "Sequence[dict | None] | None" = None,
        quarantine_config: "dict | None" = None,
    ):
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ServiceError(
                "the process shard backend requires the fork start method "
                "(POSIX); use mode='thread' on this platform"
            ) from exc
        #: Whatever :class:`MonitoringEngine` accepts — the service passes
        #: its live :class:`~repro.spec.registry.PropertyRegistry`, so a
        #: worker forked later (restart/migration) starts from the current
        #: property set, not the construction-time one.  Fork inherits the
        #: object; nothing is pickled.
        self._properties = properties
        self._engine_kwargs = dict(engine_kwargs)
        #: Per-shard telemetry configs (shard-offset sampler phases); a
        #: restarted worker rebuilds from its own shard's config.
        self._telemetry_configs = (
            [dict(config) for config in telemetry_configs]
            if telemetry_configs is not None
            else None
        )
        self._recorder_capacity = flight_recorder_capacity
        self.shards = shards
        self._queue_capacity = queue_capacity
        #: Telemetry snapshots of workers migrated away by restart_shard —
        #: their counts would otherwise vanish with the old process.
        self.retired_telemetry: list[dict] = []
        #: Span buffers and flight-recorder dumps of migrated-away workers.
        self.retired_spans: list[list[dict]] = []
        self.retired_dumps: list[dict] = []
        #: Dumps shipped with "err" responses — a crashing worker's last
        #: flight-recorder ring, captured before the error surfaces.
        self.crash_dumps: list[dict] = []
        #: Per-shard worker fault configs (plain dicts); the supervisor
        #: replaces a shard's slot when respawning it mid-plan.
        self._fault_configs: "list[dict | None]" = (
            [dict(c) if c is not None else None for c in fault_configs]
            if fault_configs is not None
            else [None] * shards
        )
        self._quarantine_config = (
            dict(quarantine_config) if quarantine_config is not None else None
        )
        #: Current worker incarnation per shard (mirrors the service's).
        self._epochs = [0] * shards
        self.verdict_q = self._ctx.Queue()
        self._in_qs = []
        self._resp_qs = []
        self._procs = []
        self._barrier_token = 0
        for shard in range(shards):
            snapshot = snapshots[shard] if snapshots is not None else None
            self._spawn(shard, snapshot)

    def _spawn(self, shard: int, snapshot: "dict | None", epoch: int = 0) -> None:
        # Bounded queues give cross-process backpressure: put() blocks while
        # a shard is `queue_capacity` message batches behind.
        in_q = self._ctx.Queue(self._queue_capacity)
        resp_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                shard,
                self._properties,
                self._engine_kwargs,
                (
                    self._telemetry_configs[shard]
                    if self._telemetry_configs is not None
                    else None
                ),
                self._recorder_capacity,
                snapshot,
                epoch,
                self._fault_configs[shard],
                self._quarantine_config,
                in_q,
                resp_q,
                self.verdict_q,
            ),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        if shard < len(self._procs):
            self._in_qs[shard] = in_q
            self._resp_qs[shard] = resp_q
            self._procs[shard] = process
            self._epochs[shard] = epoch
        else:
            self._in_qs.append(in_q)
            self._resp_qs.append(resp_q)
            self._procs.append(process)

    # -- sends ---------------------------------------------------------------

    def _put(self, shard: int, message: tuple) -> None:
        """Enqueue with liveness checks: a dead worker never drains its
        bounded queue, so a plain blocking put would hang the service."""
        while True:
            try:
                self._in_qs[shard].put(message, timeout=_POLL_SECONDS)
                return
            except queue_module.Full:
                if not self._procs[shard].is_alive():
                    raise ServiceError(
                        f"shard worker {shard} died (exitcode "
                        f"{self._procs[shard].exitcode}) with a full queue"
                    ) from None

    def send_events(
        self,
        shard: int,
        deliveries: "list[SymbolicDelivery]",
        batch_id: "int | None" = None,
    ) -> None:
        self._put(shard, ("ev", deliveries, batch_id))

    def send_retires_to(self, shard: int, symbols: "list[str]") -> None:
        """Retire broadcast to a single shard (supervised journal replay
        re-sends deaths at their original positions)."""
        self._put(shard, ("rt", symbols))

    def send_retires(self, symbols: "list[str]", lossy: bool = False) -> None:
        for shard in range(self.shards):
            try:
                self._put(shard, ("rt", symbols))
            except ServiceError:
                # Supervised mode: the dead shard's journal recorded the
                # deaths; its replacement replays them.  The remaining
                # shards must still hear about the retires.
                if not lossy:
                    raise

    # -- registry operations -------------------------------------------------

    def register_property(self, payload: Mapping[str, Any]) -> list[str]:
        """Broadcast a hot-load; returns each worker's compiled fingerprint.

        ``payload`` carries the registry entry's name and portable origin;
        every worker re-compiles the property locally and acks with the
        fingerprint (the caller verifies they all match the parent's).
        """
        for shard in range(self.shards):
            self._put(shard, ("rg", dict(payload)))
        return [self._response(shard, "rg")[1] for shard in range(self.shards)]

    def unregister_property(self, index: int) -> None:
        for shard in range(self.shards):
            self._put(shard, ("ur", index))
        for shard in range(self.shards):
            self._response(shard, "ur")

    def set_property_enabled(self, index: int, enabled: bool) -> None:
        for shard in range(self.shards):
            self._put(shard, ("en", (index, enabled)))
        for shard in range(self.shards):
            self._response(shard, "en")

    # -- control round-trips -------------------------------------------------

    def _response(self, shard: int, expected: str):
        deadline = _CONTROL_TIMEOUT
        while True:
            try:
                message = self._resp_qs[shard].get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                deadline -= _POLL_SECONDS
                if not self._procs[shard].is_alive():
                    raise ServiceError(
                        f"shard worker {shard} died (exitcode "
                        f"{self._procs[shard].exitcode})"
                    )
                if deadline <= 0:
                    raise ServiceError(
                        f"shard worker {shard} did not answer a {expected!r} "
                        "request in time"
                    )
                continue
            if message[0] == "err":
                if len(message) > 2 and message[2] is not None:
                    self.crash_dumps.append(message[2])
                raise ServiceError(
                    f"shard worker {shard} failed:\n{message[1]}"
                )
            if message[0] != expected:  # pragma: no cover - protocol misuse
                raise ServiceError(
                    f"shard worker {shard}: expected {expected!r} response, "
                    f"got {message[0]!r}"
                )
            return message

    def barrier(self) -> "list[tuple[int, int]]":
        """Ack from every shard; returns per-shard ``(verdicts sent, epoch)``.

        Because each shard queue is FIFO with a single consumer, the ack
        proves every previously sent event batch was fully processed.
        """
        self._barrier_token += 1
        token = self._barrier_token
        for shard in range(self.shards):
            self._put(shard, ("ba", token))
        counts = []
        for shard in range(self.shards):
            message = self._response(shard, "ba")
            # An earlier barrier abandoned mid-read (a sibling shard died
            # before this shard's ack was consumed) leaves stale acks
            # queued; skip forward to this round's token.
            while message[1] < token:
                message = self._response(shard, "ba")
            if message[1] != token:  # pragma: no cover - protocol misuse
                raise ServiceError(f"shard {shard}: barrier ack from the future")
            counts.append((message[2], message[3]))
        return counts

    def heartbeat(self, shard: int, token: int, timeout: float = 5.0) -> bool:
        """Send + await one heartbeat; False when the worker missed the
        deadline (the supervisor treats that as a hang).  Must be called
        under the service's control lock — the response queue is shared
        with control round trips.

        The probe is non-blocking on the input side: a saturated queue
        returns True (backlog is not evidence of a hang — queue-depth
        progress tracking covers that case)."""
        try:
            self._in_qs[shard].put_nowait(("hb", token))
        except queue_module.Full:
            return True
        except (ValueError, OSError):  # queue torn down under us
            return False
        deadline = timeout
        while True:
            try:
                message = self._resp_qs[shard].get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                deadline -= _POLL_SECONDS
                if deadline <= 0 or not self._procs[shard].is_alive():
                    return False
                continue
            if message[0] == "err":
                if len(message) > 2 and message[2] is not None:
                    self.crash_dumps.append(message[2])
                return False
            if message[0] == "hb" and message[1] == token:
                return True
            # Stale response from an interrupted round trip: drop it.

    def stats_snapshots(self) -> list[dict]:
        for shard in range(self.shards):
            self._put(shard, ("st",))
        return [self._response(shard, "st")[1] for shard in range(self.shards)]

    def telemetry_snapshots(self) -> "list[dict | None]":
        """Each live worker's registry snapshot (None when telemetry is off),
        plus whatever migrated-away workers left behind."""
        for shard in range(self.shards):
            self._put(shard, ("tl",))
        snapshots = [self._response(shard, "tl")[1] for shard in range(self.shards)]
        return snapshots + list(self.retired_telemetry)

    def trace_snapshots(self) -> "list[list[dict]]":
        """Each live worker's span buffer (empty when tracing is off),
        plus the buffers of migrated-away workers."""
        for shard in range(self.shards):
            self._put(shard, ("tl",))
        spans = [self._response(shard, "tl")[2] for shard in range(self.shards)]
        return spans + list(self.retired_spans)

    def checkpoints(self) -> list[dict]:
        for shard in range(self.shards):
            self._put(shard, ("ck",))
        return [self._response(shard, "ck")[1] for shard in range(self.shards)]

    def checkpoint_shard(self, shard: int) -> dict:
        self._put(shard, ("ck",))
        return self._response(shard, "ck")[1]

    def checkpoint_shard_counted(self, shard: int) -> "tuple[dict, int]":
        """One shard's snapshot plus its verdicts-sent count at the
        checkpoint — the admission floor a replacement epoch starts at."""
        self._put(shard, ("ck",))
        message = self._response(shard, "ck")
        return message[1], message[2]

    def restart_shard(self, shard: int, snapshot: "dict | None", epoch: int = 0) -> None:
        """Migrate one shard: stop its worker, start a fresh one from a
        snapshot.  The caller must have drained first (queued work on the
        old worker would be lost)."""
        self._put(shard, ("cl",))
        message = self._response(shard, "cl")
        if message[3] is not None:
            self.retired_telemetry.append(message[3])
        if message[4]:
            self.retired_spans.append(message[4])
        self.retired_dumps.extend(message[5])
        self._procs[shard].join(timeout=10.0)
        self._spawn(shard, snapshot, epoch)

    def respawn_dead(
        self,
        shard: int,
        snapshot: "dict | None",
        epoch: int,
        fault_config: "dict | None" = None,
    ) -> None:
        """Replace a dead (or hung) worker without a close handshake.

        Tears down the old incarnation's queues — anything still on its
        input queue is lost here and recovered from the supervisor's
        journal — drains stale responses, installs the replacement fault
        config, and forks the new worker from ``snapshot`` in ``epoch``.
        """
        process = self._procs[shard]
        if process.is_alive():
            process.terminate()
        process.join(timeout=10.0)
        # A hard kill can land while the worker's feeder thread holds the
        # verdict queue's shared write lock, wedging every other shard's
        # verdict sends.  Probe it: a live holder writes a small message
        # in microseconds, so a timeout means the lock died with the
        # worker — release it on the dead holder's behalf.
        wlock = getattr(self.verdict_q, "_wlock", None)
        if wlock is not None:
            try:
                if wlock.acquire(timeout=0.25):
                    wlock.release()
                else:
                    wlock.release()
            except (OSError, ValueError):  # pragma: no cover - teardown races
                pass
        # Stale control responses (e.g. a missed heartbeat ack racing the
        # kill) must not satisfy the replacement's round trips.
        while True:
            try:
                self._resp_qs[shard].get_nowait()
            except (queue_module.Empty, OSError, EOFError):
                break
        old_in = self._in_qs[shard]
        try:
            old_in.cancel_join_thread()
            old_in.close()
        except (OSError, EOFError):  # pragma: no cover - teardown races
            pass
        self._fault_configs[shard] = fault_config
        self._spawn(shard, snapshot, epoch)

    def shard_alive(self, shard: int) -> bool:
        return self._procs[shard].is_alive()

    def shard_exitcode(self, shard: int) -> "int | None":
        return self._procs[shard].exitcode

    def close(
        self,
    ) -> tuple[
        list[dict],
        "list[tuple[int, int]]",
        "list[dict | None]",
        "list[list[dict]]",
        list[dict],
    ]:
        """Stop all workers; returns (final stats snapshots, per-shard
        ``(verdict count, epoch)`` pairs, final telemetry snapshots, final
        span buffers, flight-recorder dumps) — all including migrated-away
        workers' contributions."""
        stats: list[dict] = []
        counts: "list[tuple[int, int]]" = []
        telemetry: "list[dict | None]" = []
        spans: "list[list[dict]]" = []
        dumps: list[dict] = []
        for shard in range(self.shards):
            self._put(shard, ("cl",))
        for shard in range(self.shards):
            message = self._response(shard, "cl")
            stats.append(message[1])
            counts.append((message[2], message[6]))
            telemetry.append(message[3])
            spans.append(message[4])
            dumps.extend(message[5])
        for process in self._procs:
            process.join(timeout=10.0)
        return (
            stats,
            counts,
            telemetry + list(self.retired_telemetry),
            spans + list(self.retired_spans),
            dumps + list(self.retired_dumps),
        )

    def terminate(self) -> None:
        """Hard-stop every worker (failure paths)."""
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=5.0)

    def alive(self) -> bool:
        return all(process.is_alive() for process in self._procs)
