"""Anchor-parameter routing: partitioning parametric events across shards.

The single-engine runtime already partitions monitor state by parameter
object — the indexing trees of Figure 6 fan out on the *first* parameter
of each domain.  The sharded service lifts the same idea one level up:
each compiled property designates an **anchor parameter**, and the object
bound to the anchor decides which :class:`~repro.runtime.engine.MonitoringEngine`
shard owns every slice involving it.

Soundness.  A parameter ``a`` is a *valid anchor* for a property iff it
occurs in **every realizable monitor domain** (the closure
:meth:`~repro.spec.compiler.CompiledProperty.monitor_domains` computes from
the enable sets).  Then:

* every monitor instance binds the anchor, so "the shard of a monitor" is
  well defined — ``shard(θ) = hash(id(θ(a))) mod N``;
* an event carrying the anchor is routed to exactly that shard, where every
  monitor it can update or create lives (creation targets contain the event
  binding, so they agree on the anchor value);
* an event *not* carrying the anchor reaches the owning shard of every
  slice it belongs to (see the delivery strategies below).  It cannot
  create monitors on wrong shards — a fresh creation would need ``∅`` in
  its enable set, which would put an anchor-free domain into
  ``monitor_domains()`` and disqualify the anchor; defineTo/join creations
  need a source instance, which exists only on the owning shard.

A property with **no** valid anchor (``monitor_domains()`` intersect to
``∅``) is *pinned*: all its events go to one designated shard, which runs
it exactly as a single engine would.

Anchor-free delivery strategies
-------------------------------

*Broadcast* (always sound): the event goes to every shard.  The "touched
bindings" record behind the creation-validity check (JavaMOP's disable
timestamps) stays complete on every shard, but the hottest events of the
paper's workloads (UNSAFEITER's ``next``) are anchor-free, so broadcasting
makes total work grow with the shard count.

*Sticky association* (the scaling path): for properties whose every
monitor creation copies the binding of a single anchor-carrying event —
statically: the enable sets induce **no join plans** — the router learns,
per parameter object, the set of shards that have received events carrying
it.  An anchor-free event is delivered only to the union of its
parameters' associated shards; an object never seen with an anchor is
delivered nowhere (there is provably no monitor to step).  What broadcast
provided implicitly — the *touched* knowledge that suppresses unsound
creations — is reconstructed exactly: the router tracks, per anchor-free
event binding, the shards that received **all** of its touch events, and
flags later anchor-carrying deliveries with the event domains whose
touches the destination shard missed (*pretouch*).  The engine treats a
pretouched domain as a touched binding in its creation-validity check, so
suppressed creations match the single-engine run one for one.

Sticky soundness sketch (no-join properties): every creation target equals
the domain of the anchor-carrying event that triggers it, so all of a
monitor's parameter values were carried by that one routed event — hence
each parameter's association contains the monitor's shard before any
anchor-free event must step it; stepping is complete.  Creation validity
is complete because anchor-carrying sub-bindings are shard-consistent by
hashing, and anchor-free sub-bindings are covered by pretouch.

Routing hashes parameter objects by identity (``id``), matching the
identity semantics of bindings and of the weak-keyed RVMaps; a bit mixer
spreads CPython's 16-byte-aligned addresses across shards.  Association
tables hold weak guards (strong for immortal values, like
:class:`~repro.runtime.refs.ParamRef`) so dead objects cannot leak or —
worse — let a recycled ``id`` inherit stale routing state.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from ..spec.compiler import CompiledProperty

__all__ = [
    "choose_anchor",
    "valid_anchors",
    "has_join_plans",
    "PropertyRoute",
    "Delivery",
    "ShardRouter",
]

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """SplitMix64 finalizer — spreads aligned ``id()`` values uniformly."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def valid_anchors(prop: CompiledProperty) -> frozenset[str]:
    """Parameters occurring in every realizable monitor domain."""
    domains = prop.monitor_domains()
    if not domains:
        return frozenset()
    valid = set(next(iter(domains)))
    for domain in domains:
        valid &= domain
    return frozenset(valid)


def choose_anchor(prop: CompiledProperty) -> str | None:
    """The anchor the router uses for ``prop``, or ``None`` (pinned).

    Among the valid anchors, prefer the one carried by the most events —
    that minimizes anchor-free traffic — breaking ties alphabetically so
    the choice is deterministic across runs and processes.
    """
    candidates = valid_anchors(prop)
    if not candidates:
        return None
    coverage = {
        param: sum(
            1
            for event in prop.definition.alphabet
            if param in prop.definition.params_of(event)
        )
        for param in candidates
    }
    return min(coverage, key=lambda param: (-coverage[param], param))


def has_join_plans(prop: CompiledProperty) -> bool:
    """Whether any event's enable set induces a cross-instance join.

    Mirrors the engine's creation-plan construction: a join exists when an
    enable domain ``K`` is realizable and incomparable with the event's
    ``D(e)``.  Join-free properties qualify for sticky routing: every
    creation target is exactly one event's binding.
    """
    domains = prop.monitor_domains()
    for event in prop.definition.alphabet:
        event_domain = prop.definition.params_of(event)
        for enable_domain in prop.param_enable.get(event, ()):
            if not enable_domain:
                continue
            if enable_domain <= event_domain or event_domain <= enable_domain:
                continue
            if enable_domain in domains:
                return True
    return False


@dataclass(frozen=True)
class PropertyRoute:
    """How one property's events travel across shards."""

    index: int
    prop: CompiledProperty
    anchor: str | None
    pinned_shard: int | None
    sticky: bool

    @property
    def is_pinned(self) -> bool:
        return self.pinned_shard is not None


#: One per-shard delivery: (property indexes, recording indexes or None for
#: "all of them", per-property pretouched domains or None, count-only
#: property indexes).
Delivery = tuple[
    tuple[int, ...],
    "frozenset[int] | None",
    "dict[int, frozenset[frozenset[str]]] | None",
    tuple[int, ...],
]


class _StickyState:
    """Per-property association and touch tracking for sticky routing."""

    __slots__ = ("assoc", "touch_all", "touch_index", "guards")

    def __init__(self) -> None:
        #: id(obj) -> bitmask of shards that received events carrying obj.
        self.assoc: dict[int, int] = {}
        #: (domain key, id tuple) -> bitmask of shards that received EVERY
        #: anchor-free touch event for that exact binding (AND of masks).
        self.touch_all: dict[tuple, int] = {}
        #: id(obj) -> touch_all keys involving obj (for purge on death).
        self.touch_index: dict[int, list[tuple]] = {}
        #: id(obj) -> weak guard (or the object itself when immortal);
        #: keeps entries valid across CPython id reuse.
        self.guards: dict[int, Any] = {}


class _PropPlan:
    """Static routing decision for (event, property)."""

    __slots__ = ("index", "kind", "anchor", "params", "free_key", "pretouch_candidates")

    def __init__(self, index: int, kind: str):
        self.index = index
        #: "anchored" | "sticky_free" | "broadcast" | "pinned"
        self.kind = kind
        self.anchor: str | None = None
        #: The property's parameters of this event (sticky bookkeeping).
        self.params: tuple[str, ...] = ()
        #: (domain frozenset, sorted params) — the touch key of a
        #: sticky anchor-free event.
        self.free_key: tuple[frozenset[str], tuple[str, ...]] | None = None
        #: Anchor-free domains ⊆ D(e) whose missed touches an anchored
        #: delivery must report: (domain frozenset, sorted params).
        self.pretouch_candidates: tuple[tuple[frozenset[str], tuple[str, ...]], ...] = ()


class ShardRouter:
    """Routes parametric events over ``shards`` engine shards.

    :meth:`route` maps one event to per-shard :data:`Delivery` lists.
    Routing mutates sticky-association state, so the router serializes
    itself with an internal lock — safe to call from multiple emitters.
    """

    def __init__(self, properties: "Sequence[CompiledProperty | None]", shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        #: Slot-aligned with the owning service's registry: removed slots
        #: hold ``None`` and are never routed to.
        self.properties: list[CompiledProperty | None] = list(properties)
        self._full_mask = (1 << shards) - 1
        self._lock = threading.RLock()
        self.routes: list[PropertyRoute | None] = [
            None if prop is None else self._route_for(index, prop)
            for index, prop in enumerate(self.properties)
        ]
        self._sticky: dict[int, _StickyState] = {
            route.index: _StickyState()
            for route in self.routes
            if route is not None and route.sticky
        }
        #: id(obj) -> (shard, guard): restored objects whose monitors already
        #: live on a specific shard (their new ``id`` would hash elsewhere).
        self._pins: dict[int, tuple[int, Any]] = {}
        self._plans: dict[str, list[_PropPlan]] = {}
        for route in self.routes:
            if route is not None:
                self._install_plans(route)

    # -- dynamic property set ----------------------------------------------

    def add_property(self, prop: CompiledProperty) -> int:
        """Route a hot-loaded property; returns its (appended) slot index.

        The caller (the service, under its emit lock and after a shard
        barrier) guarantees no event is in flight across the switch, so
        the new plans take effect between two routed events on every
        shard simultaneously.
        """
        with self._lock:
            index = len(self.properties)
            route = self._route_for(index, prop)
            self.properties.append(prop)
            self.routes.append(route)
            if route.sticky:
                self._sticky[index] = _StickyState()
            self._install_plans(route)
            return index

    def remove_property(self, index: int) -> None:
        """Stop routing one slot: drop its plans and sticky state."""
        with self._lock:
            route = self.routes[index]
            if route is None:
                raise ValueError(f"property slot {index} is not routed")
            for event in route.prop.definition.alphabet:
                plans = self._plans.get(event)
                if plans is None:
                    continue
                remaining = [plan for plan in plans if plan.index != index]
                if remaining:
                    self._plans[event] = remaining
                else:
                    del self._plans[event]
            self._sticky.pop(index, None)
            self.routes[index] = None
            self.properties[index] = None

    def _install_plans(self, route: PropertyRoute) -> None:
        definition = route.prop.definition
        free_domains = [
            (definition.params_of(event), tuple(sorted(definition.params_of(event))))
            for event in sorted(definition.alphabet)
            if route.anchor is not None
            and route.anchor not in definition.params_of(event)
        ]
        # Distinct anchor-free domains (several events may share one).
        seen: set[frozenset[str]] = set()
        distinct_free = []
        for domain, params in free_domains:
            if domain not in seen:
                seen.add(domain)
                distinct_free.append((domain, params))
        for event in definition.alphabet:
            event_domain = definition.params_of(event)
            plan = _PropPlan(route.index, "pinned")
            if route.is_pinned:
                pass
            elif route.anchor in event_domain:
                plan.kind = "anchored"
                plan.anchor = route.anchor
                plan.params = tuple(sorted(event_domain))
                if route.sticky:
                    plan.pretouch_candidates = tuple(
                        (domain, params)
                        for domain, params in distinct_free
                        if domain <= event_domain
                    )
            elif route.sticky:
                plan.kind = "sticky_free"
                plan.params = tuple(sorted(event_domain))
                plan.free_key = (event_domain, plan.params)
            else:
                plan.kind = "broadcast"
            self._plans.setdefault(event, []).append(plan)

    def _route_for(self, index: int, prop: CompiledProperty) -> PropertyRoute:
        anchor = choose_anchor(prop)
        if anchor is None:
            # No parameter pins every slice: run the property whole on one
            # shard (spread pinned properties round-robin by index).
            return PropertyRoute(index, prop, None, index % self.shards, False)
        return PropertyRoute(index, prop, anchor, None, not has_join_plans(prop))

    # -- sticky state -------------------------------------------------------

    def _guard(self, state: _StickyState, value: Any) -> None:
        key = id(value)
        guard = state.guards.get(key)
        if guard is not None:
            # Live guard for the same object, or an immortal held strongly.
            if guard is value or (isinstance(guard, weakref.ref) and guard() is value):
                return
            self._purge(state, key)  # stale entry from a recycled id
        try:
            state.guards[key] = weakref.ref(value, lambda _ref, key=key: self._on_death(state, key))
        except TypeError:
            state.guards[key] = value  # immortal: hold strongly, never purge

    def _on_death(self, state: _StickyState, key: int) -> None:
        with self._lock:
            self._purge(state, key)

    @staticmethod
    def _purge(state: _StickyState, key: int) -> None:
        state.guards.pop(key, None)
        state.assoc.pop(key, None)
        for touch_key in state.touch_index.pop(key, ()):
            state.touch_all.pop(touch_key, None)

    # -- the hot path -------------------------------------------------------

    def shard_of(self, value: Any) -> int:
        """The shard owning slices anchored at ``value`` (by identity).

        Checkpoint-restored objects are *pinned* to the shard whose engine
        snapshot holds their state (see :meth:`pin_shard`); everything else
        hashes."""
        if self._pins:
            pinned = self._pins.get(id(value))
            if pinned is not None:
                shard, guard = pinned
                if guard is value or (
                    isinstance(guard, weakref.ref) and guard() is value
                ):
                    return shard
        return _mix(id(value)) % self.shards

    def pin_shard(self, value: Any, shard: int) -> None:
        """Permanently route slices anchored at ``value`` to ``shard``.

        Service restore pins every anchor object named by a checkpoint:
        its monitors were restored into a specific shard engine, and the
        identity hash of the fresh stand-in object would send future
        events elsewhere.  Pins hold weak guards (strong for immortals)
        and vanish with the object."""
        key = id(value)
        try:
            guard: Any = weakref.ref(
                value, lambda _ref, key=key: self._unpin(key)
            )
        except TypeError:
            guard = value
        with self._lock:
            self._pins[key] = (shard, guard)

    def _unpin(self, key: int) -> None:
        with self._lock:
            self._pins.pop(key, None)

    def route(self, event: str, params: Mapping[str, Any]) -> Iterator[tuple[int, Delivery]]:
        """Yield ``(shard, delivery)`` pairs for one event.

        Unknown events yield nothing — the caller decides strictness.
        """
        plans = self._plans.get(event)
        if plans is None:
            return iter(())
        if self.shards == 1:
            members = tuple(plan.index for plan in plans)
            return iter([(0, (members, None, None, ()))])
        return self._route_multi(plans, params)

    def _route_multi(
        self, plans: list[_PropPlan], params: Mapping[str, Any]
    ) -> Iterator[tuple[int, Delivery]]:
        props_at: dict[int, list[int]] = {}
        records_at: dict[int, list[int]] = {}
        pretouch_at: dict[int, dict[int, frozenset[frozenset[str]]]] = {}
        count_only: list[int] = []
        with self._lock:
            for plan in plans:
                if plan.kind == "anchored":
                    shard = self.shard_of(params[plan.anchor])
                    props_at.setdefault(shard, []).append(plan.index)
                    records_at.setdefault(shard, []).append(plan.index)
                    state = self._sticky.get(plan.index)
                    if state is not None:
                        self._note_anchored(state, plan, params, shard, pretouch_at)
                elif plan.kind == "sticky_free":
                    state = self._sticky[plan.index]
                    mask = 0
                    for name in plan.params:
                        mask |= state.assoc.get(id(params[name]), 0)
                    self._note_free(state, plan, params, mask)
                    if mask == 0:
                        # No shard holds a slice for these objects: the event
                        # steps nothing and (per enable sets) creates nothing;
                        # only the event count survives, on shard 0.
                        count_only.append(plan.index)
                        continue
                    recorded = False
                    for shard in range(self.shards):
                        if (mask >> shard) & 1:
                            props_at.setdefault(shard, []).append(plan.index)
                            if not recorded:
                                records_at.setdefault(shard, []).append(plan.index)
                                recorded = True
                elif plan.kind == "broadcast":
                    for shard in range(self.shards):
                        props_at.setdefault(shard, []).append(plan.index)
                    records_at.setdefault(0, []).append(plan.index)
                else:  # pinned
                    route = self.routes[plan.index]
                    props_at.setdefault(route.pinned_shard, []).append(plan.index)
                    records_at.setdefault(route.pinned_shard, []).append(plan.index)
        for shard, members in props_at.items():
            recording_list = records_at.get(shard, [])
            recording = None if len(recording_list) == len(members) else frozenset(recording_list)
            pretouched = pretouch_at.get(shard)
            extra = tuple(count_only) if shard == 0 else ()
            yield shard, (tuple(members), recording, pretouched, extra)
        if count_only and 0 not in props_at:
            yield 0, ((), frozenset(), None, tuple(count_only))

    def _note_anchored(
        self,
        state: _StickyState,
        plan: _PropPlan,
        params: Mapping[str, Any],
        shard: int,
        pretouch_at: dict[int, dict[int, frozenset[frozenset[str]]]],
    ) -> None:
        bit = 1 << shard
        for name in plan.params:
            value = params[name]
            self._guard(state, value)
            state.assoc[id(value)] = state.assoc.get(id(value), 0) | bit
        missed: list[frozenset[str]] = []
        for domain, names in plan.pretouch_candidates:
            touch_key = (domain, tuple(id(params[name]) for name in names))
            mask = state.touch_all.get(touch_key)
            if mask is not None and not (mask >> shard) & 1:
                missed.append(domain)
        if missed:
            pretouch_at.setdefault(shard, {})[plan.index] = frozenset(missed)

    def _note_free(
        self,
        state: _StickyState,
        plan: _PropPlan,
        params: Mapping[str, Any],
        mask: int,
    ) -> None:
        domain, names = plan.free_key
        ids = []
        for name in names:
            value = params[name]
            self._guard(state, value)
            ids.append(id(value))
            if mask:
                state.assoc[id(value)] = state.assoc.get(id(value), 0) | mask
        touch_key = (domain, tuple(ids))
        previous = state.touch_all.get(touch_key)
        if previous is None:
            for key in ids:
                state.touch_index.setdefault(key, []).append(touch_key)
            state.touch_all[touch_key] = mask
        else:
            state.touch_all[touch_key] = previous & mask

    # -- persistence --------------------------------------------------------

    def snapshot_sticky(self, symbol_of) -> dict:
        """Serialize the sticky association/touch state (JSON-safe).

        Part of a service checkpoint: without it, a restored service would
        re-learn associations from scratch and could deliver anchor-free
        events to too few shards (missed steps) or miss pretouch flags
        (unsound creations).  Entries whose guard object died are skipped —
        they cannot influence future routing (lookups carry live objects).
        """
        state_payload: dict[str, dict] = {}
        with self._lock:
            for prop_index, state in self._sticky.items():
                assoc: dict[str, int] = {}
                for key, mask in state.assoc.items():
                    value = self._guarded_value(state, key)
                    if value is not None:
                        assoc[symbol_of(value)] = mask
                touches = []
                for (domain, ids), mask in state.touch_all.items():
                    symbols = []
                    for key in ids:
                        value = self._guarded_value(state, key)
                        if value is None:
                            break
                        symbols.append(symbol_of(value))
                    else:
                        touches.append([sorted(domain), symbols, mask])
                state_payload[str(prop_index)] = {"assoc": assoc, "touch_all": touches}
        return {"shards": self.shards, "sticky": state_payload}

    def restore_sticky(self, payload: Mapping[str, Any], tokens: Mapping[str, Any]) -> None:
        """Rebuild sticky state from :meth:`snapshot_sticky` over restored
        token objects (symbols missing from ``tokens`` are skipped — the
        object did not survive the checkpoint)."""
        if payload.get("shards") != self.shards:
            from ..core.errors import ServiceError

            raise ServiceError(
                f"sticky snapshot was taken with {payload.get('shards')} shards, "
                f"router has {self.shards}"
            )
        with self._lock:
            for prop_key, record in payload.get("sticky", {}).items():
                state = self._sticky.get(int(prop_key))
                if state is None:
                    continue
                for symbol, mask in record.get("assoc", {}).items():
                    value = tokens.get(symbol)
                    if value is None:
                        continue
                    self._guard(state, value)
                    state.assoc[id(value)] = mask
                for domain_list, symbols, mask in record.get("touch_all", ()):
                    values = [tokens.get(symbol) for symbol in symbols]
                    if any(value is None for value in values):
                        continue
                    ids = []
                    for value in values:
                        self._guard(state, value)
                        ids.append(id(value))
                    touch_key = (frozenset(domain_list), tuple(ids))
                    if touch_key not in state.touch_all:
                        for key in ids:
                            state.touch_index.setdefault(key, []).append(touch_key)
                    state.touch_all[touch_key] = mask

    @staticmethod
    def _guarded_value(state: _StickyState, key: int) -> Any | None:
        guard = state.guards.get(key)
        if isinstance(guard, weakref.ref):
            return guard()
        return guard

    # -- introspection ------------------------------------------------------

    def declared(self, event: str) -> bool:
        """Whether any routed property declares ``event``."""
        return event in self._plans

    def declaring_indexes(self, event: str) -> frozenset[int]:
        """Property slots declaring ``event`` (load-shedding's drop test:
        an event only sheddable properties declare can be dropped whole)."""
        return frozenset(plan.index for plan in self._plans.get(event, ()))

    def describe(self) -> list[dict[str, Any]]:
        """Human-readable routing table (examples / debugging)."""
        table = []
        for route in self.routes:
            if route is None:
                continue
            free_events = sorted(
                event
                for event in route.prop.definition.alphabet
                if route.anchor is not None
                and route.anchor not in route.prop.definition.params_of(event)
            )
            table.append(
                {
                    "property": f"{route.prop.spec_name}/{route.prop.formalism}",
                    "anchor": route.anchor,
                    "pinned_shard": route.pinned_shard,
                    "anchor_free_events": free_events,
                    "anchor_free_delivery": (
                        "sticky" if route.sticky else "broadcast"
                    ) if free_events else "none",
                }
            )
        return table
