"""`MonitorService` — batched, multi-engine event ingestion.

The service fronts N independent :class:`~repro.runtime.engine.MonitoringEngine`
shards behind one ``emit()`` interface:

* the :class:`~repro.service.router.ShardRouter` sends each event to the
  shard(s) owning the slices it belongs to (anchor-parameter routing;
  anchor-free events broadcast, pinned properties stay whole);
* **thread mode** (the default) gives each shard a bounded FIFO queue and
  a dedicated worker thread; ``emit()`` applies backpressure by blocking
  when a shard's queue is full, and ``emit_batch()`` amortizes routing and
  queue locking over many events;
* **inline mode** dispatches synchronously in the caller's thread — fully
  deterministic, used by the determinism tests and the scaling benchmark
  (on one core the win of sharding is algorithmic: per-shard state, hence
  per-shard O(state) GC scans, shrinks by the shard count);
* verdicts from all shards land in one merged
  :class:`~repro.service.aggregate.VerdictLog`; statistics aggregate
  exactly via :func:`~repro.service.aggregate.merge_stats`.

Per-slice event order is preserved: one emitter enqueues to each shard in
emission order, each shard processes its queue FIFO, and the router
guarantees a slice never spans shards — so verdict *multisets* equal the
single-engine run even though cross-shard interleaving is scheduling
dependent (thread mode) or trivially sequential (inline mode).

Shard engines share the caller's compiled properties: compiled artifacts
(templates, enable/coenable analyses) are immutable at runtime, and each
engine builds its own indexing trees and statistics.  Handlers attached to
the compiled properties fire in shard worker threads under thread mode.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..core.errors import ServiceError, UnknownEventError
from ..runtime.engine import MonitoringEngine
from ..runtime.instance import MonitorInstance
from ..runtime.statistics import MonitorStats
from ..spec.compiler import CompiledProperty, CompiledSpec, compile_spec
from .aggregate import StatsKey, VerdictLog, VerdictRecord, merge_stats
from .router import ShardRouter

__all__ = ["MonitorService", "ingest_symbolic"]

#: One routed delivery sitting in a shard queue: the event, its binding,
#: and the router's per-shard :data:`repro.service.router.Delivery` plan.
_Delivery = tuple[str, Mapping[str, Any], "tuple"]

#: Service-level verdict callback.
ServiceVerdictCallback = Callable[[VerdictRecord], None]


def _as_properties(specs: Any) -> list[CompiledProperty]:
    """Normalize the accepted spec forms into a flat property list."""
    if isinstance(specs, (str, CompiledSpec, CompiledProperty)) or hasattr(specs, "make"):
        specs = [specs]
    properties: list[CompiledProperty] = []
    for item in specs:
        if isinstance(item, str):
            item = compile_spec(item)
        elif hasattr(item, "make") and not isinstance(item, (CompiledSpec, CompiledProperty)):
            item = item.make()  # a PaperProperty-style provider
        if isinstance(item, CompiledSpec):
            properties.extend(item.properties)
        elif isinstance(item, CompiledProperty):
            properties.append(item)
        else:
            raise TypeError(f"cannot monitor {item!r}")
    if not properties:
        raise ValueError("MonitorService needs at least one property")
    return properties


class _ShardQueue:
    """Bounded FIFO of deliveries with drain accounting and backpressure."""

    __slots__ = ("_items", "_capacity", "_pending", "_closed", "_failed", "_lock", "_changed")

    def __init__(self, capacity: int):
        self._items: list[_Delivery] = []
        self._capacity = capacity
        #: Deliveries enqueued but not yet fully processed by the worker.
        self._pending = 0
        self._closed = False
        self._failed = False
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)

    def put_many(self, deliveries: Sequence[_Delivery]) -> None:
        start = 0
        while start < len(deliveries):
            with self._changed:
                while (
                    len(self._items) >= self._capacity
                    and not self._closed
                    and not self._failed
                ):
                    self._changed.wait()
                if self._closed:
                    raise ServiceError("emit on a closed MonitorService")
                if self._failed:
                    return  # the service surfaces the worker's error
                room = max(1, self._capacity - len(self._items))
                chunk = deliveries[start : start + room]
                self._items.extend(chunk)
                self._pending += len(chunk)
                start += len(chunk)
                self._changed.notify_all()

    def take(self, limit: int) -> list[_Delivery] | None:
        """Up to ``limit`` deliveries; ``None`` once closed and empty."""
        with self._changed:
            while not self._items and not self._closed:
                self._changed.wait()
            if not self._items:
                return None
            batch = self._items[:limit]
            del self._items[:limit]
            self._changed.notify_all()
            return batch

    def mark_done(self, count: int) -> None:
        with self._changed:
            self._pending -= count
            self._changed.notify_all()

    def fail(self) -> None:
        """Worker died: drop queued work, zero accounting, unblock everyone."""
        with self._changed:
            self._failed = True
            self._items.clear()
            self._pending = 0
            self._changed.notify_all()

    def close(self) -> None:
        with self._changed:
            self._closed = True
            self._changed.notify_all()

    def wait_idle(self) -> None:
        with self._changed:
            while self._pending > 0:
                self._changed.wait()


class MonitorService:
    """A sharded online monitoring service over N engine shards.

    ``specs`` accepts specification source text, compiled specs/properties,
    or property providers with a ``make()`` method (the library's
    ``PaperProperty`` objects), singly or as a sequence.  ``system`` /
    ``gc`` / ``propagation`` / ``scan_budget`` configure every shard engine
    exactly as they configure :class:`MonitoringEngine`.

    ``mode`` is ``"thread"`` (queues + workers + backpressure) or
    ``"inline"`` (synchronous dispatch, deterministic).  ``on_verdict``
    receives every merged :class:`VerdictRecord` as it happens.

    The verdict log retains every record — including strong references to
    the verdicts' parameter objects — for the service's lifetime.  For
    long-running, verdict-heavy deployments pass
    ``keep_verdict_log=False`` and consume verdicts through
    ``on_verdict``, or call ``verdict_log.clear()`` periodically.
    """

    def __init__(
        self,
        specs: Any,
        shards: int = 4,
        *,
        system: str | None = None,
        gc: str | None = None,
        propagation: str | None = None,
        scan_budget: int = 2,
        mode: str = "thread",
        queue_capacity: int = 4096,
        batch_size: int = 256,
        on_verdict: ServiceVerdictCallback | None = None,
        keep_verdict_log: bool = True,
    ):
        if mode not in ("thread", "inline"):
            raise ValueError(f"unknown service mode {mode!r}")
        if queue_capacity < 1 or batch_size < 1:
            raise ValueError("queue_capacity and batch_size must be >= 1")
        self.properties = _as_properties(specs)
        self.router = ShardRouter(self.properties, shards)
        self.shards = shards
        self.mode = mode
        self.batch_size = batch_size
        self.verdict_log = VerdictLog()
        self._keep_verdict_log = keep_verdict_log
        self._on_verdict = on_verdict
        self._closed = False
        self._failure: BaseException | None = None
        self._failure_lock = threading.Lock()
        #: Serializes route+enqueue so per-shard delivery order equals
        #: routing order even with several emitter threads — the router's
        #: sticky state and the shard queues must advance in lock step.
        self._emit_lock = threading.Lock()

        self.engines: list[MonitoringEngine] = [
            MonitoringEngine(
                self.properties,
                system=system,
                gc=gc,
                propagation=propagation,
                scan_budget=scan_budget,
                on_verdict=self._verdict_callback(shard),
            )
            for shard in range(shards)
        ]

        self._queues: list[_ShardQueue] = []
        self._workers: list[threading.Thread] = []
        if mode == "thread":
            self._queues = [_ShardQueue(queue_capacity) for _ in range(shards)]
            self._workers = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(shard, self._queues[shard], self.engines[shard]),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                for shard in range(shards)
            ]
            for worker in self._workers:
                worker.start()

    # -- verdict plumbing ----------------------------------------------------

    def _verdict_callback(self, shard: int):
        def on_verdict(
            prop: CompiledProperty, category: str, monitor: MonitorInstance
        ) -> None:
            record = VerdictRecord(
                shard=shard,
                spec_name=prop.spec_name,
                formalism=prop.formalism,
                category=category,
                binding=monitor.binding().items(),
            )
            if self._keep_verdict_log:
                self.verdict_log.append(record)
            if self._on_verdict is not None:
                self._on_verdict(record)

        return on_verdict

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self, shard: int, queue: _ShardQueue, engine: MonitoringEngine) -> None:
        while True:
            batch = queue.take(self.batch_size)
            if batch is None:
                return
            try:
                for event, params, (props, recording, pretouched, count_only) in batch:
                    engine.emit_selected(
                        event, params, props, recording, pretouched, count_only
                    )
            except BaseException as exc:  # surface at drain()/close()/emit()
                with self._failure_lock:
                    if self._failure is None:
                        self._failure = exc
                for other in self._queues:
                    other.fail()
                return
            finally:
                queue.mark_done(len(batch))

    def _check_failure(self) -> None:
        with self._failure_lock:
            failure = self._failure
        if failure is not None:
            raise ServiceError(
                f"a shard worker died while monitoring: {failure!r}"
            ) from failure

    # -- ingestion -----------------------------------------------------------

    def emit(self, event: str, _strict: bool = True, **params: Any) -> None:
        """Route one parametric event to its shard(s).

        Mirrors :meth:`MonitoringEngine.emit`: with ``_strict=False`` an
        event no property declares is dropped silently.  In thread mode the
        call blocks while every destination shard queue is full
        (backpressure); processing is asynchronous — use :meth:`drain` for
        a happens-before edge to the verdict log and statistics.
        """
        self.emit_batch([(event, params)], _strict=_strict)

    def emit_batch(
        self,
        events: Iterable[tuple[str, Mapping[str, Any]]],
        _strict: bool = True,
    ) -> int:
        """Route a batch of ``(event, params)`` pairs; returns how many were
        delivered to at least one shard.

        Routing happens up front and deliveries are grouped per shard, so
        the queue locks are taken once per (shard, batch) rather than once
        per event.
        """
        if self._closed:
            raise ServiceError("emit on a closed MonitorService")
        self._check_failure()
        per_shard: list[list[_Delivery]] = [[] for _ in range(self.shards)]
        route = self.router.route
        accepted = 0
        # Route and enqueue under one lock: per-shard delivery order must
        # equal routing order (the sticky state assumes it), so concurrent
        # emitters may not interleave between routing and enqueueing.
        with self._emit_lock:
            for event, params in events:
                if not self.router.declared(event):
                    if _strict:
                        raise UnknownEventError(
                            f"no monitored specification declares event {event!r}"
                        )
                    continue
                accepted += 1
                for shard, delivery in route(event, params):
                    per_shard[shard].append((event, params, delivery))
            if self.mode == "inline":
                for shard, deliveries in enumerate(per_shard):
                    engine = self.engines[shard]
                    for event, params, (props, recording, pretouched, count_only) in deliveries:
                        engine.emit_selected(
                            event, params, props, recording, pretouched, count_only
                        )
            else:
                for shard, deliveries in enumerate(per_shard):
                    if deliveries:
                        self._queues[shard].put_many(deliveries)
        if self.mode == "thread":
            self._check_failure()
        return accepted

    # -- lifecycle -----------------------------------------------------------

    def drain(self) -> None:
        """Block until every enqueued event has been fully processed."""
        if self.mode == "thread":
            for queue in self._queues:
                queue.wait_idle()
        self._check_failure()

    def close(self) -> None:
        """Drain, stop the workers, and run end-of-run GC accounting.

        Idempotent.  After closing, :meth:`emit` raises
        :class:`~repro.core.errors.ServiceError`; statistics and the
        verdict log remain readable.
        """
        if self._closed:
            return
        failure_seen = None
        try:
            self.drain()
        except ServiceError as exc:
            failure_seen = exc
        self._closed = True
        for queue in self._queues:
            queue.close()
        for worker in self._workers:
            worker.join(timeout=10.0)
        for engine in self.engines:
            engine.flush_gc()
        if failure_seen is not None:
            raise failure_seen

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- aggregate results ---------------------------------------------------

    def stats(self) -> dict[StatsKey, MonitorStats]:
        """Merged per-property statistics across every shard."""
        return merge_stats(engine.stats() for engine in self.engines)

    def per_shard_stats(self) -> list[dict[StatsKey, MonitorStats]]:
        return [engine.stats() for engine in self.engines]

    def stats_for(self, spec_name: str, formalism: str | None = None) -> MonitorStats:
        for (name, form), stats in self.stats().items():
            if name == spec_name and (formalism is None or form == formalism):
                return stats
        raise KeyError(f"no property {spec_name}/{formalism}")

    def verdicts(self) -> list[VerdictRecord]:
        """Chronological snapshot of the merged verdict stream."""
        return self.verdict_log.snapshot()

    def verdict_multiset(self) -> Counter:
        """Order/shard-independent verdict multiset (determinism checks)."""
        return self.verdict_log.multiset()

    def describe_routing(self) -> list[dict[str, Any]]:
        """The router's anchor/pinning table for every property."""
        return self.router.describe()

    def total_live_monitors(self) -> int:
        return sum(engine.total_live_monitors() for engine in self.engines)


def ingest_symbolic(
    target: Any,
    entries: Sequence[tuple[str, Mapping[str, str]]],
    retire_after_last_use: bool = False,
) -> dict[str, Any]:
    """Feed a symbolic event stream into a service or engine.

    ``entries`` is a sequence of ``(event, {param: symbol})`` pairs — the
    shape :func:`repro.bench.workloads.record_workload_events` produces and
    :mod:`repro.runtime.tracelog` records.  A thin alias for
    :func:`repro.runtime.tracelog.replay_entries`, re-exported here because
    it is the service benchmarks' ingestion path.
    """
    from ..runtime.tracelog import replay_entries

    return replay_entries(list(entries), target, retire_after_last_use)
